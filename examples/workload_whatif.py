"""Workload what-if analysis: how many tokens is the cluster wasting?

Reproduces the Figure 2 analysis on a synthetic workload: for each job,
AREPAS estimates the smallest allocation that keeps the run time within a
performance budget, and the resulting token-request reductions are
bucketed — at no performance loss, 5% loss, and 10% loss.

Also prints the Figure 1 policy comparison (default vs peak vs adaptive
peak allocation) for the most over-allocated job in the workload.

Run:
    python examples/workload_whatif.py
"""

from __future__ import annotations

from repro import WorkloadGenerator, run_workload
from repro.skyline import (
    AdaptivePeakAllocation,
    DefaultAllocation,
    PeakAllocation,
    evaluate_policy,
)
from repro.tasq import REDUCTION_BUCKETS, token_reduction_report


def main() -> None:
    generator = WorkloadGenerator(seed=21)
    jobs = generator.generate(300)
    print(f"Executing {len(jobs)} jobs ...")
    repository = run_workload(jobs, seed=1)

    # --- Figure 2: potential token-request reduction -------------------
    print("\nPotential token request reduction (Figure 2):")
    budgets = [(0.0, "default performance"),
               (0.05, "95% default performance"),
               (0.10, "90% default performance")]
    labels = [label for label, _, _ in REDUCTION_BUCKETS]
    print(f"{'scenario':<28}" + "".join(f"{label:>9}" for label in labels))
    for budget, name in budgets:
        report = token_reduction_report(repository, budget)
        row = "".join(
            f"{report.bucket_fractions[label]:>8.0%} " for label in labels
        )
        print(f"{name:<28}{row}")
    print(
        "\nReading: at a 10% slowdown budget, "
        f"{token_reduction_report(repository, 0.10).fraction_halvable():.0%} "
        "of jobs need less than half their requested tokens."
    )

    # --- Figure 1: allocation policies on one over-allocated job -------
    record = max(
        repository.records(),
        key=lambda r: r.requested_tokens - r.peak_tokens,
    )
    print(
        f"\nAllocation policies on {record.job_id} "
        f"(requested {record.requested_tokens}, peak use "
        f"{record.peak_tokens:.0f}, run time {record.runtime}s):"
    )
    policies = [
        DefaultAllocation(record.requested_tokens),
        PeakAllocation(),
        AdaptivePeakAllocation(),
    ]
    print(f"{'policy':<16} {'allocated':>12} {'used':>12} {'wasted':>12}")
    for policy in policies:
        report = evaluate_policy(policy, record.skyline)
        print(
            f"{report.policy:<16} {report.total_allocated:>11.0f} "
            f"{report.total_used:>11.0f} "
            f"{report.wasted:>9.0f} ({report.waste_fraction:.0%})"
        )


if __name__ == "__main__":
    main()
