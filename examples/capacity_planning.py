"""Capacity planning: cluster-level impact of TASQ allocations.

The paper's introduction argues that right-sizing token requests "reduces
job wait time and improves the overall resource availability for other
jobs in the cluster". This study quantifies that on a simulated
fixed-capacity cluster:

1. build a day of history and train TASQ,
2. compute recommendations for the next day's jobs (10% slowdown budget),
3. replay the same arrival stream through an FCFS admission queue twice —
   once with the user-requested allocations, once with TASQ's — and
   compare queueing statistics.

Run:
    python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import WorkloadGenerator, run_workload
from repro.arepas import AREPAS
from repro.models import TrainConfig
from repro.scope.cluster import ClusterQueue, QueuedJob
from repro.tasq import ScoringPipeline, TasqConfig, TrainingPipeline


def main() -> None:
    generator = WorkloadGenerator(seed=13)
    print("Building history and training TASQ ...")
    history = run_workload(generator.generate(250), seed=0)
    config = TasqConfig(train_gnn=False,
                        nn_train_config=TrainConfig(epochs=60))
    trained = TrainingPipeline(config).run(history)

    print("Executing tomorrow's jobs ...")
    tomorrow = run_workload(generator.generate(120, start_day=1), seed=1)
    # Keep the study to the virtual cluster's job class: huge-request
    # jobs run on dedicated capacity and would dwarf the shared queue.
    records = [
        r for r in tomorrow.records() if 2 <= r.requested_tokens <= 600
    ]

    # TASQ recommendations: cheapest allocation within a 10% predicted
    # slowdown budget.
    scorer = ScoringPipeline(
        trained.get("nn"), improvement_threshold=10.0, max_slowdown=0.10
    )
    recommendations = scorer.score_batch(
        [r.plan for r in records], [r.requested_tokens for r in records]
    )

    # Arrival stream: a burst of submissions (one every 20 seconds).
    rng = np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(20.0, size=len(records)))
    simulator = AREPAS()

    default_stream = []
    tasq_stream = []
    for record, recommendation, arrival in zip(records, recommendations,
                                               arrivals):
        default_stream.append(
            QueuedJob(
                job_id=record.job_id,
                arrival_time=float(arrival),
                tokens=record.requested_tokens,
                runtime=float(record.runtime),
            )
        )
        tokens = recommendation.optimal_tokens
        tasq_stream.append(
            QueuedJob(
                job_id=record.job_id,
                arrival_time=float(arrival),
                tokens=tokens,
                runtime=float(simulator.runtime(record.skyline, tokens)),
            )
        )

    # The pool must fit the largest request; size it tightly at that.
    capacity = max(r.requested_tokens for r in records)
    queue = ClusterQueue(capacity=capacity)
    default_report = queue.run(default_stream)
    tasq_report = queue.run(tasq_stream)

    total_default = sum(j.tokens for j in default_stream)
    total_tasq = sum(j.tokens for j in tasq_stream)
    print(f"\nCluster capacity: {capacity} tokens; "
          f"{len(records)} jobs over ~{arrivals[-1] / 60:.0f} minutes")
    print(f"Token requests: {total_default:,} (default) -> "
          f"{total_tasq:,} (TASQ, {1 - total_tasq / total_default:.0%} saved)")
    print(f"\n{'metric':<22} {'default':>12} {'TASQ':>12}")
    print("-" * 48)
    rows = [
        ("mean wait (s)", default_report.mean_wait, tasq_report.mean_wait),
        ("median wait (s)", default_report.median_wait,
         tasq_report.median_wait),
        ("p95 wait (s)", default_report.p95_wait, tasq_report.p95_wait),
        ("mean turnaround (s)", default_report.mean_turnaround,
         tasq_report.mean_turnaround),
        ("makespan (s)", default_report.makespan, tasq_report.makespan),
    ]
    for name, before, after in rows:
        print(f"{name:<22} {before:>12,.0f} {after:>12,.0f}")
    print(
        "\nSmaller requests queue less: TASQ trades a bounded per-job "
        "slowdown for\nmuch shorter waits — the paper's cluster-level "
        "motivation (Section 1)."
    )


if __name__ == "__main__":
    main()
