"""SLO budgeting: deadlines, money, and explainable recommendations.

Demonstrates the decision-making layer built on predicted PCCs
(Sections 2.1-2.3):

* pick the cheapest allocation meeting a per-job *deadline*,
* inspect the full price-performance Pareto frontier of a job,
* print TASQ's explainable recommendation (the Section 2.2 user display).

Run:
    python examples/slo_budgeting.py
"""

from __future__ import annotations

from repro import WorkloadGenerator, run_workload
from repro.models import TrainConfig
from repro.tasq import (
    ScoringPipeline,
    TasqConfig,
    TrainingPipeline,
    cheapest_within_deadline,
    explain_recommendation,
    job_cost,
    pareto_frontier,
)


def main() -> None:
    generator = WorkloadGenerator(seed=99)
    print("Training TASQ on 200 historical jobs ...")
    history = run_workload(generator.generate(200), seed=0)
    config = TasqConfig(train_gnn=False,
                        nn_train_config=TrainConfig(epochs=60))
    trained = TrainingPipeline(config).run(history)
    scorer = ScoringPipeline(trained.get("nn"), max_slowdown=0.05)

    job = generator.generate(1, start_day=1)[0]
    recommendation = scorer.score(job.plan, job.requested_tokens)
    pcc = recommendation.pcc

    # --- 1. the user-facing explanation (Section 2.2) -------------------
    print()
    print(explain_recommendation(recommendation))

    # --- 2. deadline-driven allocation -----------------------------------
    print("\nDeadline-driven allocation:")
    base_runtime = pcc.runtime(job.requested_tokens)
    for factor in (2.0, 1.2, 1.0, 0.8):
        deadline = base_runtime * factor
        tokens = cheapest_within_deadline(
            pcc, deadline, max_tokens=4 * job.requested_tokens
        )
        if tokens is None:
            print(f"  deadline {deadline:7.0f}s: infeasible under the PCC")
        else:
            print(
                f"  deadline {deadline:7.0f}s -> {tokens:>5} tokens "
                f"(predicted {pcc.runtime(tokens):6.0f}s, "
                f"cost {job_cost(pcc, tokens):,.0f} token-seconds)"
            )

    # --- 3. the price-performance frontier (Section 2.3 companion) ------
    print("\nPrice-performance Pareto frontier:")
    frontier = pareto_frontier(
        pcc, min_tokens=2, max_tokens=2 * job.requested_tokens, num_points=8
    )
    print(f"{'tokens':>8} {'runtime (s)':>12} {'cost (token-s)':>15}")
    for point in frontier:
        print(f"{point.tokens:>8} {point.runtime:>12,.0f} {point.cost:>15,.0f}")
    print(
        "\nWith imperfect scaling (a > -1), speed costs money: every extra"
        "\ntoken buys less run time than it charges for — the frontier"
        "\nmakes the trade explicit, per the price-performance follow-up"
        "\nwork the paper cites (Section 2.3)."
    )


if __name__ == "__main__":
    main()
