"""Quickstart: the full TASQ loop in ~60 lines.

Generates a synthetic SCOPE-like workload, builds the historical telemetry
repository, trains the PCC prediction models, and scores an unseen job —
printing its predicted performance characteristic curve and the
recommended token allocation.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ScoringPipeline,
    TrainingPipeline,
    WorkloadGenerator,
    run_workload,
)
from repro.models import TrainConfig
from repro.tasq import TasqConfig


def main() -> None:
    # 1. A day of "production" history: generate jobs and execute them at
    #    the tokens their users requested.
    generator = WorkloadGenerator(seed=7)
    history = generator.generate(250)
    print(f"Executing {len(history)} historical jobs ...")
    repository = run_workload(history, seed=0)
    stats = repository.runtime_statistics()
    print(
        f"  run time median {stats['runtime_median']:.0f}s "
        f"(max {stats['runtime_max']:.0f}s), "
        f"peak tokens median {stats['peak_tokens_median']:.0f}"
    )

    # 2. Train TASQ: AREPAS augmentation -> featurization -> models.
    print("Training TASQ models (XGBoost + NN) ...")
    config = TasqConfig(train_gnn=False, nn_train_config=TrainConfig(epochs=60))
    trained = TrainingPipeline(config).run(repository)

    # 3. Score an unseen job at compile time.
    tomorrow = generator.generate(5, start_day=1)
    scorer = ScoringPipeline(
        trained.get("nn"), improvement_threshold=0.005, max_slowdown=0.05
    )
    print("\nRecommendations for unseen jobs (5% slowdown budget):")
    header = f"{'job':<18} {'requested':>9} {'optimal':>8} {'savings':>8} {'slowdown':>9}"
    print(header)
    print("-" * len(header))
    for job in tomorrow:
        rec = scorer.score(job.plan, job.requested_tokens)
        print(
            f"{rec.job_id:<18} {rec.requested_tokens:>9} "
            f"{rec.optimal_tokens:>8} {rec.token_savings:>7.0%} "
            f"{rec.predicted_slowdown:>8.1%}"
        )

    # 4. Inspect one predicted PCC over a token range.
    rec = scorer.score(tomorrow[0].plan, tomorrow[0].requested_tokens)
    print(f"\nPredicted PCC for {rec.job_id}: "
          f"runtime = {rec.pcc.b:.1f} * tokens^{rec.pcc.a:.3f}")
    for tokens in np.geomspace(5, rec.requested_tokens, 6):
        print(f"  {tokens:7.1f} tokens -> {rec.pcc.runtime(tokens):8.1f} s")


if __name__ == "__main__":
    main()
