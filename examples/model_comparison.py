"""Model comparison: XGBoost SS/PL vs NN vs GNN (Tables 4-6 style).

Trains all four TASQ models on one day of history and evaluates them on
the *next* day's jobs — point prediction, trend prediction, and the
monotonicity pattern — using AREPAS-derived proxy ground truth, exactly
like the paper's historical-dataset evaluation.

Run:
    python examples/model_comparison.py        # ~2-3 minutes
"""

from __future__ import annotations

import time

from repro import WorkloadGenerator, run_workload
from repro.ml.losses import LF1, LF2
from repro.models import (
    GNNPCCModel,
    NNPCCModel,
    TrainConfig,
    XGBoostPL,
    XGBoostSS,
    build_dataset,
    evaluate_model,
    evaluation_table,
)


def main() -> None:
    generator = WorkloadGenerator(seed=5)
    print("Building train (day 0) and test (day 1) workloads ...")
    train_repo = run_workload(generator.generate(400), seed=0)
    test_repo = run_workload(generator.generate(150, start_day=1), seed=1)
    train = build_dataset(train_repo)
    test = build_dataset(test_repo)
    print(f"  {len(train)} training jobs, {len(test)} test jobs")

    models = [
        XGBoostSS(seed=0),
        XGBoostPL(seed=0),
        NNPCCModel(loss=LF2(), train_config=TrainConfig(epochs=60), seed=0),
        GNNPCCModel(
            loss=LF2(),
            train_config=TrainConfig(epochs=15, batch_size=32,
                                     learning_rate=2e-3),
            seed=0,
        ),
    ]

    evaluations = []
    for model in models:
        start = time.time()
        model.fit(train)
        train_seconds = time.time() - start
        start = time.time()
        evaluation = evaluate_model(model, test)
        score_seconds = time.time() - start
        evaluations.append(evaluation)
        print(
            f"  {model.name:<12} fit {train_seconds:6.1f}s, "
            f"eval {score_seconds:5.1f}s, "
            f"{model.num_parameters() or '-':>6} parameters"
        )

    print("\nNext-day evaluation (Table 5 shape, LF2 for NN/GNN):")
    print(evaluation_table(evaluations))
    print(
        "\nExpected shape (paper): XGBoost wins point prediction but cannot\n"
        "guarantee a non-increasing PCC; NN/GNN are 100% monotonic with\n"
        "somewhat larger point errors."
    )

    # LF1 ablation: dropping the run-time penalisation hurts point error.
    nn_lf1 = NNPCCModel(loss=LF1(), train_config=TrainConfig(epochs=60),
                        seed=0).fit(train)
    lf1_eval = evaluate_model(nn_lf1, test)
    lf2_eval = next(e for e in evaluations if e.model == "NN")
    print(
        f"\nLoss ablation (NN): LF1 median AE "
        f"{lf1_eval.runtime_median_ape:.0f}% vs LF2 "
        f"{lf2_eval.runtime_median_ape:.0f}% "
        "(paper: 31% vs 22%)"
    )


if __name__ == "__main__":
    main()
