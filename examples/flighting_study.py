"""Flighting study: validate AREPAS against re-executed jobs.

The Section 5.1-5.2 methodology end to end:

1. select a representative job subset with stratified under-sampling,
2. re-execute ("flight") each job at 100/80/60/20% of its tokens, three
   replicas each, with the anomaly filters applied,
3. check the area-preservation assumption across executions (Figure 12),
4. measure AREPAS's run-time estimation error (Table 3 / Figure 13).

Run:
    python examples/flighting_study.py
"""

from __future__ import annotations

import numpy as np

from repro import WorkloadGenerator, run_workload
from repro.arepas import error_summary, match_fraction_curve, simulation_errors
from repro.flighting import FlightHarness, build_flighted_dataset
from repro.selection import select_flighting_jobs


def main() -> None:
    generator = WorkloadGenerator(seed=33)
    jobs = generator.generate(250)
    print(f"Executing {len(jobs)} jobs to build the population ...")
    repository = run_workload(jobs, seed=2)
    records = repository.records()

    # --- 1. representative subset selection ----------------------------
    pool = [r for r in records if 10 <= r.requested_tokens <= 600]
    selection = select_flighting_jobs(
        records, pool, sample_size=40, n_clusters=6, seed=0
    )
    selected = [pool[i] for i in selection.selected_indices]
    print(
        f"Selected {len(selected)} of {len(pool)} pool jobs "
        f"(KS statistic {selection.ks_before:.3f} -> {selection.ks_after:.3f})"
    )

    # --- 2. flight them -------------------------------------------------
    print("Flighting at 100/80/60/20% tokens x 3 replicas ...")
    harness = FlightHarness(seed=9)
    flighted = build_flighted_dataset(selected, harness)
    print(
        f"  {len(flighted)} jobs survived the filters "
        f"({flighted.num_flights} flights; dropped: "
        f"{flighted.num_dropped_errant} errant, "
        f"{flighted.num_dropped_non_monotonic} non-monotonic, "
        f"{flighted.num_dropped_isolated} isolated)"
    )

    # --- 3. area conservation (Figure 12) -------------------------------
    tolerances = np.array([10.0, 30.0, 80.0])
    curve = match_fraction_curve(flighted.per_job_skylines(), tolerances)
    print("\nArea-conservation check (Figure 12):")
    for tolerance, fraction in zip(tolerances, curve):
        print(f"  within {tolerance:3.0f}% tolerance: {fraction:5.0%} of "
              "execution pairs match")

    # --- 4. AREPAS accuracy (Table 3 / Figure 13) -----------------------
    errors = simulation_errors(flighted.arepas_inputs())
    summary = error_summary(errors)
    matched = flighted.fully_matched(tolerance=30.0)
    matched_summary = error_summary(simulation_errors(matched.arepas_inputs()))
    print("\nAREPAS run-time estimation error (Table 3):")
    print(f"{'job group':<24} {'N jobs':>7} {'MedianAPE':>10} {'MeanAPE':>9}")
    print(
        f"{'non-anomalous':<24} {summary['jobs']:>7.0f} "
        f"{summary['median_ape']:>9.1f}% {summary['mean_ape']:>8.1f}%"
    )
    print(
        f"{'fully-matched':<24} {matched_summary['jobs']:>7.0f} "
        f"{matched_summary['median_ape']:>9.1f}% "
        f"{matched_summary['mean_ape']:>8.1f}%"
    )
    print(f"\nWorst per-job median error: {summary['worst']:.0f}% "
          "(paper: under 50%)")


if __name__ == "__main__":
    main()
