#!/usr/bin/env python3
"""Documentation link checker (run by the ``docs-links`` CI job).

Two rules, both over the repository's markdown:

1. **Reachability** — every ``docs/*.md`` page must be referenced (by
   its ``docs/<name>.md`` path) from ``README.md`` or
   ``docs/architecture.md``, so no documentation page is orphaned.
2. **No dead links** — every ``*.md`` path mentioned in ``README.md``
   or ``docs/*.md`` (markdown links and inline-code mentions alike)
   must resolve to an existing file, relative to the repository root or
   to the mentioning file's directory.

Exits non-zero with one line per violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Files whose mentions anchor rule 1.
ENTRY_POINTS = ("README.md", "docs/architecture.md")

#: Any relative markdown-file path: ``docs/fleet.md``, ``DESIGN.md``,
#: ``../README.md`` — but not URLs (no scheme separator matches).
_MD_PATH = re.compile(r"(?<![\w/])((?:[\w.-]+/)*[\w.-]+\.md)(?:#[\w-]*)?\b")


def _mentions(path: Path) -> set[str]:
    return set(_MD_PATH.findall(path.read_text(encoding="utf-8")))


def main() -> int:
    errors: list[str] = []

    entry_mentions: set[str] = set()
    for name in ENTRY_POINTS:
        entry = REPO_ROOT / name
        if not entry.is_file():
            errors.append(f"missing entry point: {name}")
            continue
        entry_mentions |= _mentions(entry)

    for page in sorted(DOCS_DIR.glob("*.md")):
        rel = page.relative_to(REPO_ROOT).as_posix()
        if rel in ENTRY_POINTS:
            continue
        if rel not in entry_mentions:
            errors.append(
                f"orphaned page: {rel} is referenced by neither "
                + " nor ".join(ENTRY_POINTS)
            )

    checked = [REPO_ROOT / "README.md", *sorted(DOCS_DIR.glob("*.md"))]
    for source in checked:
        if not source.is_file():
            continue
        for target in sorted(_mentions(source)):
            candidates = (REPO_ROOT / target, source.parent / target)
            if not any(c.is_file() for c in candidates):
                rel = source.relative_to(REPO_ROOT).as_posix()
                errors.append(f"dead link: {rel} mentions {target}")

    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation link problem(s)",
              file=sys.stderr)
        return 1
    count = len(list(DOCS_DIR.glob('*.md')))
    print(f"docs links OK ({count} pages, {len(checked)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
