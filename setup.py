"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (legacy editable installs) on machines
where PEP 517 builds fail for lack of ``wheel``.
"""

from setuptools import setup

setup()
