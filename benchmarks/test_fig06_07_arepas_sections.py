"""Figures 6-7: AREPAS section handling on the paper's toy skylines.

Figure 6 shows sections under the new allocation copied unchanged;
Figure 7 shows an over-allocation section redistributed — at a bit less
than half the tokens the burst takes a bit more than twice as long, with
its area preserved exactly.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import AREPAS
from repro.skyline import Skyline


def test_fig06_07_section_semantics(benchmark, report):
    # The paper's toy: ~20s job, low shoulders around a 7-token burst.
    skyline = Skyline.from_segments([(4, 2), (6, 7), (10, 2)])
    simulator = AREPAS()

    result = benchmark.pedantic(
        simulator.simulate, args=(skyline, 3.0), rounds=1, iterations=1
    )

    # Figure 6: under-threshold sections are unchanged.
    assert list(result.skyline.usage[:4]) == [2.0] * 4
    assert list(result.skyline.usage[-10:]) == [2.0] * 10
    assert result.sections_copied == 2

    # Figure 7: the burst (area 42) is flattened to 3 tokens over 14s —
    # "a little less than half the tokens, more than twice as long".
    middle = result.skyline.usage[4:-10]
    assert middle.size == 14
    assert np.all(middle == 3.0)
    assert result.sections_redistributed == 1

    # Area preservation, the design's core invariant.
    assert result.skyline.area == skyline.area
    assert result.simulated_runtime == 28  # 4 + 14 + 10

    lines = [
        "toy skyline: 4s @2 tokens | 6s @7 tokens | 10s @2 tokens",
        "simulated at max 3 tokens:",
        f"  copied sections:        {result.sections_copied} (Figure 6)",
        f"  redistributed sections: {result.sections_redistributed} (Figure 7)",
        f"  burst: 6s @7 tokens -> {middle.size}s @3 tokens "
        f"(area {middle.sum():.0f}, preserved)",
        f"  run time: {skyline.duration}s -> {result.simulated_runtime}s",
        "paper: the reallocated portion takes more than twice as long at a",
        "little less than half the tokens, with total area unchanged.",
    ]
    report.add("Figures 6-7 AREPAS sections", "\n".join(lines))
