"""Ablation: training-data augmentation (Section 3 / 4.4 design choice).

Without AREPAS augmentation, historical data contains exactly one
(token count, run time) pair per job, so a point model cannot learn how
run time responds to tokens. We train XGBoost PL with and without the
augmented observations and compare trend quality against the AREPAS-swept
targets on the next-day test set.
"""

from __future__ import annotations

import numpy as np

from repro.models import XGBoostPL, evaluate_model
from repro.models.dataset import PCCDataset, PCCExample


def _strip_augmentation(dataset: PCCDataset) -> PCCDataset:
    """Keep only the actually observed sample of each job."""
    stripped = PCCDataset()
    for example in dataset:
        observed = tuple(
            o for o in example.point_observations if o.source == "observed"
        )
        stripped.examples.append(
            PCCExample(
                job_id=example.job_id,
                observed_tokens=example.observed_tokens,
                observed_runtime=example.observed_runtime,
                target_pcc=example.target_pcc,
                job_features=example.job_features,
                graph=example.graph,
                point_observations=observed,
            )
        )
    return stripped


def test_ablation_arepas_augmentation(
    benchmark, train_dataset, test_dataset, report
):
    def train_both():
        augmented = XGBoostPL(seed=0).fit(train_dataset)
        unaugmented = XGBoostPL(seed=0).fit(_strip_augmentation(train_dataset))
        return augmented, unaugmented

    augmented, unaugmented = benchmark.pedantic(
        train_both, rounds=1, iterations=1
    )

    with_aug = evaluate_model(augmented, test_dataset)
    without_aug = evaluate_model(unaugmented, test_dataset)

    # Without augmentation the booster never saw two token counts for one
    # job; its fitted PCC exponents carry ~no signal, so the augmented
    # model must match its targets better.
    assert with_aug.curve_param_mae < without_aug.curve_param_mae

    # Point prediction at the reference stays comparable (one sample per
    # job is enough for that), showing the gain is specifically in trends.
    assert (
        with_aug.runtime_median_ape
        <= without_aug.runtime_median_ape + 10.0
    )

    lines = [
        f"{'variant':<22} {'pattern':>8} {'MAE(prm)':>9} {'MedAE(rt)':>10}",
        "-" * 52,
        f"{'with AREPAS aug':<22} "
        f"{with_aug.pattern_non_increasing:>7.0%} "
        f"{with_aug.curve_param_mae:>9.3f} "
        f"{with_aug.runtime_median_ape:>9.0f}%",
        f"{'without augmentation':<22} "
        f"{without_aug.pattern_non_increasing:>7.0%} "
        f"{without_aug.curve_param_mae:>9.3f} "
        f"{without_aug.runtime_median_ape:>9.0f}%",
        "",
        "paper (Section 3, qualitative): one observation per job cannot",
        "teach the run-time-vs-tokens relationship; AREPAS augmentation is",
        "what makes trend learning possible at all.",
    ]
    report.add("Ablation augmentation", "\n".join(lines))
