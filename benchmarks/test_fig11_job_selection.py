"""Figure 11: stratified job selection matches population proportions.

The paper's pre-selection pool is heavily biased (79.9% of jobs in one
cluster, the smallest at 0.6%); after stratified under-sampling, the
subset's cluster proportions match the population. We reproduce the
pipeline with a deliberately biased pool and compare proportion errors
before and after selection.
"""

from __future__ import annotations

import numpy as np

from repro.selection import cluster_proportions, select_flighting_jobs


def test_fig11_selection_restores_proportions(benchmark, train_repo, report):
    records = train_repo.records()
    # Biased pool: mostly the cheapest jobs (one region of feature space),
    # mimicking the paper's 79.9%-in-one-group pre-selection pool.
    by_cost = sorted(records, key=lambda r: r.plan.total_cost)
    pool = by_cost[: int(0.45 * len(by_cost))] + by_cost[-15:]
    n_clusters = 8

    result = benchmark.pedantic(
        select_flighting_jobs,
        args=(records, pool),
        kwargs={"sample_size": 60, "n_clusters": n_clusters, "seed": 1},
        rounds=1, iterations=1,
    )

    population = cluster_proportions(result.population_labels, n_clusters)
    pre = cluster_proportions(result.pool_labels, n_clusters)
    post = cluster_proportions(result.selected_labels, n_clusters)

    error_pre = float(np.abs(pre - population).sum())
    error_post = float(np.abs(post - population).sum())

    # Selection must bring cluster proportions closer to the population.
    assert error_post < error_pre
    # And the KS quality check should not get materially worse.
    assert result.ks_after <= result.ks_before + 0.05

    lines = [
        f"{'cluster':>7} {'population':>11} {'pre-select':>11} {'post-select':>12}",
        "-" * 45,
    ]
    for k in range(n_clusters):
        lines.append(
            f"{k:>7} {population[k]:>10.1%} {pre[k]:>10.1%} {post[k]:>11.1%}"
        )
    lines.append("")
    lines.append(
        f"L1 proportion error: pre {error_pre:.2f} -> post {error_post:.2f}"
    )
    lines.append(
        f"KS statistic: pre {result.ks_before:.3f} -> post {result.ks_after:.3f}"
    )
    lines.append(
        "paper (Figure 11): post-selection proportions match the population."
    )
    report.add("Figure 11 job selection", "\n".join(lines))
