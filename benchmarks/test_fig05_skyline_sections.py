"""Figure 5: utilization bands of peaky versus flat skylines.

The paper colour-codes skyline regions by utilization and observes that
peaky jobs spend most of their run time in the low-utilization (red/pink)
bands while flat jobs sit in the green band. We classify the benchmark
workload's most/least peaky jobs and check the same split.
"""

from __future__ import annotations

import numpy as np

from repro.skyline import UtilizationBand, band_time_fractions


def test_fig05_utilization_bands(benchmark, train_repo, report):
    records = [r for r in train_repo.records() if r.peak_tokens >= 8]
    by_peakiness = sorted(records, key=lambda r: r.skyline.peakiness())
    flat_jobs = by_peakiness[: len(by_peakiness) // 5]
    peaky_jobs = by_peakiness[-len(by_peakiness) // 5:]

    def classify(jobs):
        fractions = [band_time_fractions(r.skyline) for r in jobs]
        return {
            band: float(np.mean([f[band] for f in fractions]))
            for band in UtilizationBand
        }

    peaky = benchmark.pedantic(classify, args=(peaky_jobs,),
                               rounds=1, iterations=1)
    flat = classify(flat_jobs)

    low_peaky = peaky[UtilizationBand.MINIMUM] + peaky[UtilizationBand.LOW]
    low_flat = flat[UtilizationBand.MINIMUM] + flat[UtilizationBand.LOW]

    # Paper: peaky jobs live in red/pink; flat jobs in green.
    assert low_peaky > low_flat
    assert flat[UtilizationBand.HIGH] > peaky[UtilizationBand.HIGH]
    assert flat[UtilizationBand.HIGH] > 0.5

    lines = [
        f"{'band':<12} {'peaky jobs':>11} {'flat jobs':>10}",
        "-" * 35,
    ]
    for band in UtilizationBand:
        lines.append(
            f"{band.value:<12} {peaky[band]:>10.0%} {flat[band]:>9.0%}"
        )
    lines.append("")
    lines.append(
        "paper (Figure 5, qualitative): peaky skylines spend most time in"
    )
    lines.append("minimum/low bands; flat skylines in the high band.")
    report.add("Figure 5 skyline sections", "\n".join(lines))
