"""Ablation (Section 6.2): AutoToken (peak allocation) versus TASQ.

AutoToken predicts only the *peak* allocation, only for recurring jobs.
TASQ's advantages, both measured here on next-day jobs:

1. **coverage** — the global TASQ model answers for every job, AutoToken
   only for previously seen signatures (the paper reports 40-60% of SCOPE
   jobs are new);
2. **aggressiveness** — allocating below the peak with a small slowdown
   budget saves tokens a peak policy cannot touch.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import AREPAS
from repro.baselines import AutoToken
from repro.tasq import ScoringPipeline


def test_ablation_autotoken_vs_tasq(
    benchmark, train_repo, test_repo, nn_by_loss, report
):
    autotoken = benchmark.pedantic(
        lambda: AutoToken().fit(train_repo.records()),
        rounds=1, iterations=1,
    )
    test_records = [
        r for r in test_repo.records() if r.requested_tokens >= 2
    ]
    plans = [r.plan for r in test_records]

    # --- claim 1: coverage ----------------------------------------------
    autotoken_coverage = autotoken.coverage(plans)
    assert autotoken_coverage < 1.0  # ad-hoc jobs exist and are uncovered
    adhoc = [r.plan for r in test_records if not r.recurring]
    if adhoc:
        assert autotoken.coverage(adhoc) < 0.5

    # --- claim 2: sub-peak savings on covered jobs -----------------------
    # Aggressive TASQ policy: the cheapest allocation within a 10%
    # predicted slowdown budget (a huge improvement threshold makes the
    # marginal-gain optimum trivial, so the SLO floor decides).
    scorer = ScoringPipeline(
        nn_by_loss["LF2"], improvement_threshold=10.0, max_slowdown=0.10
    )
    simulator = AREPAS()
    requested_total = 0.0
    peak_tokens_total = 0.0
    tasq_tokens_total = 0.0
    tasq_slowdowns = []
    evaluated = 0
    for record in test_records:
        prediction = autotoken.predict(record.plan)
        if prediction is None:
            continue
        recommendation = scorer.score(record.plan, record.requested_tokens)
        requested_total += record.requested_tokens
        peak_tokens_total += prediction.peak_tokens
        tasq_tokens_total += recommendation.optimal_tokens
        # True impact of the TASQ allocation, via AREPAS on the real run.
        estimated = simulator.runtime(
            record.skyline, recommendation.optimal_tokens
        )
        tasq_slowdowns.append(estimated / record.runtime - 1.0)
        evaluated += 1

    assert evaluated > 5
    savings_vs_requested = 1.0 - tasq_tokens_total / requested_total
    autotoken_savings = 1.0 - peak_tokens_total / requested_total
    median_slowdown = float(np.median(tasq_slowdowns))
    # Both systems allocate below the user-requested default; TASQ does
    # so with a bounded, *predicted and budgeted* slowdown (AutoToken's
    # guarantee comes from allocating the full peak instead).
    assert savings_vs_requested > 0.0
    assert median_slowdown < 0.5

    lines = [
        f"{'system':<12} {'coverage':>9} {'savings vs requested':>21}",
        "-" * 46,
        f"{'AutoToken':<12} {autotoken_coverage:>8.0%} "
        f"{autotoken_savings:>20.0%}",
        f"{'TASQ (NN)':<12} {'100%':>9} {savings_vs_requested:>20.0%}",
        "",
        f"({evaluated} AutoToken-covered jobs; TASQ at a 10% predicted",
        f" slowdown budget; median AREPAS-estimated actual slowdown "
        f"{median_slowdown:.0%})",
        "paper (Section 6.2): AutoToken cannot predict for ad-hoc jobs",
        "(40-60% of the workload are new) and cannot answer what-if",
        "questions about sub-peak allocations; TASQ covers both.",
    ]
    report.add("Ablation AutoToken", "\n".join(lines))
