"""Tables 4-6: model accuracy on the historical (next-day) dataset.

For each loss function LF1/LF2/LF3 the paper compares XGBoost SS,
XGBoost PL, NN, and GNN on three metrics: the monotonicity pattern, the
curve-parameter MAE, and the run-time median absolute error at the
reference allocation. Key paper findings we verify:

* XGBoost cannot guarantee a non-increasing PCC (SS 41%, PL 73%),
* NN/GNN are 100% non-increasing by construction under every loss,
* XGBoost has the best point prediction (13% vs 20-31%),
* LF2 substantially improves NN/GNN run-time error over LF1 without
  hurting the curve parameters, and LF3 adds nothing over LF2,
* XGBoost PL's curve-parameter MAE is ~3x that of NN/GNN.
"""

from __future__ import annotations

import pytest

from repro.models import evaluate_model, evaluation_table

PAPER = {
    "LF1": {"XGBoost SS": (0.41, None, 13), "XGBoost PL": (0.73, 0.232, 13),
            "NN": (1.0, 0.086, 31), "GNN": (1.0, 0.071, 31)},
    "LF2": {"XGBoost SS": (0.41, None, 13), "XGBoost PL": (0.73, 0.232, 13),
            "NN": (1.0, 0.090, 22), "GNN": (1.0, 0.071, 20)},
    "LF3": {"XGBoost SS": (0.41, None, 13), "XGBoost PL": (0.73, 0.232, 13),
            "NN": (1.0, 0.083, 22), "GNN": (1.0, 0.077, 21)},
}


@pytest.fixture(scope="module")
def all_evaluations(test_dataset, xgb_ss, xgb_pl, nn_by_loss, gnn_by_loss):
    """Evaluate every model under every loss on the next-day test set."""
    xgb_ss_eval = evaluate_model(xgb_ss, test_dataset)
    xgb_pl_eval = evaluate_model(xgb_pl, test_dataset)
    evaluations = {}
    for loss_name in ("LF1", "LF2", "LF3"):
        evaluations[loss_name] = [
            xgb_ss_eval,
            xgb_pl_eval,
            evaluate_model(nn_by_loss[loss_name], test_dataset),
            evaluate_model(gnn_by_loss[loss_name], test_dataset),
        ]
    return evaluations


def _render(loss_name, rows):
    lines = [evaluation_table(rows), "", "paper:"]
    for model, (pattern, mae, median_ae) in PAPER[loss_name].items():
        mae_text = "NA" if mae is None else f"{mae:.3f}"
        lines.append(
            f"  {model:<12} {pattern * 100:5.0f}% {mae_text:>8} "
            f"{median_ae:>7}%"
        )
    return "\n".join(lines)


@pytest.mark.parametrize("loss_name", ["LF1", "LF2", "LF3"])
def test_tables_4_5_6(benchmark, loss_name, all_evaluations, report):
    rows = benchmark.pedantic(
        lambda: all_evaluations[loss_name], rounds=1, iterations=1
    )
    by_model = {row.model: row for row in rows}

    # --- paper claim 1: only NN/GNN guarantee the non-increasing pattern.
    assert by_model["NN"].pattern_non_increasing == 1.0
    assert by_model["GNN"].pattern_non_increasing == 1.0
    assert by_model["XGBoost SS"].pattern_non_increasing < 1.0
    assert by_model["XGBoost PL"].pattern_non_increasing < 1.0

    # --- paper claim 2: XGBoost wins point prediction at the reference.
    xgb_ape = by_model["XGBoost SS"].runtime_median_ape
    assert xgb_ape <= by_model["NN"].runtime_median_ape + 2.0
    assert xgb_ape <= by_model["GNN"].runtime_median_ape + 2.0

    # --- paper claim 3: XGBoost PL's parameter MAE exceeds NN's and GNN's.
    assert (
        by_model["XGBoost PL"].curve_param_mae
        > by_model["NN"].curve_param_mae
    )
    assert (
        by_model["XGBoost PL"].curve_param_mae
        > by_model["GNN"].curve_param_mae
    )

    report.add(
        f"Table {dict(LF1=4, LF2=5, LF3=6)[loss_name]} "
        f"model accuracy ({loss_name})",
        _render(loss_name, rows),
    )


def test_lf2_improves_runtime_over_lf1(benchmark, all_evaluations, report):
    """The paper's loss-function finding, checked across losses."""
    rows_by_loss = benchmark.pedantic(
        lambda: all_evaluations, rounds=1, iterations=1
    )
    nn = {name: rows[2] for name, rows in rows_by_loss.items()}
    gnn = {name: rows[3] for name, rows in rows_by_loss.items()}

    # LF2 must improve (or match) run-time error vs LF1 for both models.
    assert nn["LF2"].runtime_median_ape <= nn["LF1"].runtime_median_ape + 1.0
    assert gnn["LF2"].runtime_median_ape <= gnn["LF1"].runtime_median_ape + 1.0
    # LF3 should not be a material improvement over LF2 ("redundant").
    assert abs(
        nn["LF3"].runtime_median_ape - nn["LF2"].runtime_median_ape
    ) < max(10.0, 0.5 * nn["LF2"].runtime_median_ape)

    lines = ["run-time Median AE by loss (NN / GNN):"]
    for name in ("LF1", "LF2", "LF3"):
        lines.append(
            f"  {name}: NN {nn[name].runtime_median_ape:5.1f}%   "
            f"GNN {gnn[name].runtime_median_ape:5.1f}%"
        )
    lines.append("paper: LF1 31%/31%, LF2 22%/20%, LF3 22%/21%")
    report.add("Loss function ablation", "\n".join(lines))
