"""Table 3 and Figure 13: AREPAS accuracy against re-executed ground truth.

Paper numbers: MedianAPE 9% / MeanAPE 14% on the non-anomalous subset,
22% / 25% on the fully-matched subset, with worst-case per-job error under
50% (non-anomalous) — and the error histogram concentrated at low values.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import error_summary, simulation_errors


def test_table3_fig13_arepas_error(benchmark, flighted, report):
    inputs = flighted.arepas_inputs()
    errors = benchmark.pedantic(
        simulation_errors, args=(inputs,), rounds=1, iterations=1
    )
    summary = error_summary(errors)

    matched = flighted.fully_matched(tolerance=30.0)
    matched_errors = simulation_errors(matched.arepas_inputs())
    matched_summary = error_summary(matched_errors)

    # Shape claims: the simulator is usably accurate — low median error,
    # bounded worst case (paper: < 50%).
    assert summary["median_ape"] < 25.0
    assert summary["worst"] < 80.0
    # Figure 13: the error mass concentrates at low values.
    per_job = np.array([e.median_error for e in errors])
    assert np.mean(per_job <= 20.0) > 0.6

    lines = [
        f"{'job group':<22} {'N jobs':>7} {'MedianAPE':>10} {'MeanAPE':>9}",
        "-" * 52,
        f"{'non-anomalous':<22} {summary['jobs']:>7.0f} "
        f"{summary['median_ape']:>9.1f}% {summary['mean_ape']:>8.1f}%",
        f"{'  (paper)':<22} {296:>7} {9.0:>9.1f}% {14.0:>8.1f}%",
        f"{'fully-matched':<22} {matched_summary['jobs']:>7.0f} "
        f"{matched_summary['median_ape']:>9.1f}% "
        f"{matched_summary['mean_ape']:>8.1f}%",
        f"{'  (paper)':<22} {97:>7} {22.0:>9.1f}% {25.0:>8.1f}%",
        "",
        f"worst per-job median error: {summary['worst']:.0f}% "
        "(paper: < 50% non-anomalous)",
        "Figure 13 CDF points (fraction of jobs with median error <= x):",
    ]
    for threshold in (5, 10, 20, 30, 50):
        fraction = float(np.mean(per_job <= threshold))
        lines.append(f"  <= {threshold:>2}%: {fraction:>5.0%}")
    report.add("Table 3 Figure 13 AREPAS error", "\n".join(lines))
