"""Figure 12: validating the constant token-seconds assumption.

Paper numbers: ~50% of execution pairs match within 10% area tolerance,
65% within 30%, 90% within 80%; and 83% of jobs have at most one outlier
execution at 30% tolerance. We rerun both analyses on the flighted
benchmark set.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import count_outlier_executions, match_fraction_curve

PAPER_CDF = {10.0: 0.50, 30.0: 0.65, 80.0: 0.90}


def test_fig12_area_conservation(benchmark, flighted, report):
    per_job = flighted.per_job_skylines()
    tolerances = np.array([10.0, 30.0, 80.0])

    curve = benchmark.pedantic(
        match_fraction_curve, args=(per_job, tolerances),
        rounds=1, iterations=1,
    )

    # CDF is monotone and matches the paper's coarse shape: roughly half
    # the pairs match at 10%, the large majority by 80%.
    assert np.all(np.diff(curve) >= 0)
    assert 0.25 <= curve[0] <= 0.85
    assert curve[2] >= 0.85

    # Outliers per job at 30% tolerance (Figure 12 bottom).
    outliers = [count_outlier_executions(skylines, 30.0)
                for skylines in per_job]
    at_most_one = float(np.mean(np.array(outliers) <= 1))
    assert at_most_one >= 0.7  # paper: 83%

    lines = [
        f"{'tolerance':>10} {'pairs matching':>15} {'paper':>7}",
        "-" * 35,
    ]
    for tolerance, fraction in zip(tolerances, curve):
        lines.append(
            f"{tolerance:>9.0f}% {fraction:>14.0%} {PAPER_CDF[tolerance]:>6.0%}"
        )
    lines.append("")
    lines.append(
        f"jobs with <=1 outlier execution @30% tolerance: "
        f"{at_most_one:.0%} (paper: 83%)"
    )
    report.add("Figure 12 area conservation", "\n".join(lines))
