"""Section 5.4: workload-level token savings versus slowdown (W1/W2).

Paper numbers: W1 saves 23% of tokens for an 18% slowdown; W2 saves 20%
for an 8% slowdown; the GNN predicts 8% and 5% slowdowns respectively —
under- but usefully estimating the actual impact. The claims we check:

* both workloads save tokens and pay a slowdown (a real trade-off),
* W1 (which includes the deep 20% cuts) pays a larger slowdown than W2,
* the model-predicted slowdown has the right sign and orders W1 > W2.
"""

from __future__ import annotations

from repro.flighting import workload_savings


def test_sec54_w1_w2_tradeoff(benchmark, flighted, gnn_by_loss, report):
    gnn = gnn_by_loss["LF2"]

    w1, w2 = benchmark.pedantic(
        workload_savings, args=(flighted, gnn), rounds=1, iterations=1
    )

    # A real trade-off on both workloads.
    assert 0.05 < w1.token_savings < 0.8
    assert 0.0 < w2.token_savings < 0.8
    assert w1.slowdown > 0
    # W1 includes the 20%-token runs, so it slows down more than W2.
    assert w1.slowdown > w2.slowdown
    # The model's predictions are positive and correctly ordered.
    assert w1.predicted_slowdown > 0
    assert w1.predicted_slowdown > w2.predicted_slowdown

    lines = [
        f"{'workload':<9} {'token savings':>13} {'slowdown':>9} "
        f"{'predicted (GNN)':>16}",
        "-" * 52,
    ]
    for w in (w1, w2):
        lines.append(
            f"{w.name:<9} {w.token_savings:>12.0%} {w.slowdown:>8.0%} "
            f"{w.predicted_slowdown:>15.0%}"
        )
    lines.append("")
    lines.append("paper: W1 23% savings / 18% slowdown (predicted 8%);")
    lines.append("       W2 20% savings /  8% slowdown (predicted 5%)")
    report.add("Section 5.4 workload savings", "\n".join(lines))
