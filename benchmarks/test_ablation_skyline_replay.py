"""Ablation (Section 1): skyline replay versus learned PCC prediction.

The paper rejects "use the job's most recent skyline" for two reasons:
input drift changes the skyline between instances, and new/ad-hoc jobs
have no history. We fit the replay baseline on day-0 history and compare
it against the learned NN on next-day jobs:

* replay covers only the recurring share of the workload,
* on covered jobs its error tracks the day-to-day input drift, while the
  compile-time-featured model sees each instance's actual inputs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SkylineReplay
from repro.ml.metrics import median_absolute_percentage_error
from repro.models import build_dataset
from repro.models.dataset import PCCDataset


def test_ablation_skyline_replay(
    benchmark, train_repo, test_repo, nn_by_loss, report
):
    replay = benchmark.pedantic(
        lambda: SkylineReplay().fit(train_repo.records()),
        rounds=1, iterations=1,
    )
    test_records = [
        r for r in test_repo.records() if r.requested_tokens >= 2
    ]
    plans = [r.plan for r in test_records]

    # --- coverage gap -----------------------------------------------------
    coverage = replay.coverage(plans)
    assert coverage < 1.0  # ad-hoc jobs have no historical skyline

    # --- accuracy on the covered subset ------------------------------------
    covered_records = [
        r for r in test_records if replay.covers(r.plan)
    ]
    assert covered_records
    replay_predictions = np.array(
        [
            replay.predict_runtime(r.plan, float(r.requested_tokens))
            for r in covered_records
        ]
    )
    true_runtimes = np.array([float(r.runtime) for r in covered_records])
    replay_ape = median_absolute_percentage_error(
        true_runtimes, replay_predictions
    )

    covered_dataset = PCCDataset(
        examples=[
            e
            for e in build_dataset(covered_records).examples
        ]
    )
    nn = nn_by_loss["LF2"]
    nn_predictions = nn.predict_runtime_at(
        covered_dataset, covered_dataset.observed_tokens()
    )
    nn_ape = median_absolute_percentage_error(
        covered_dataset.observed_runtimes(), nn_predictions
    )

    # The learned model must be competitive on replay's home turf while
    # also covering the whole workload.
    assert nn_ape <= replay_ape + 15.0

    lines = [
        f"{'approach':<16} {'coverage':>9} {'MedAE (covered jobs)':>21}",
        "-" * 50,
        f"{'skyline replay':<16} {coverage:>8.0%} {replay_ape:>20.0f}%",
        f"{'TASQ NN':<16} {'100%':>9} {nn_ape:>20.0f}%",
        "",
        "paper (Section 1): the most-recent-skyline estimate breaks under",
        "day-to-day input drift and does not exist for new/ad-hoc jobs;",
        "the learned model reads each instance's compile-time features.",
    ]
    report.add("Ablation skyline replay", "\n".join(lines))
