"""Serving throughput benchmarks: single-process vs sharded front end.

Measures the allocation endpoint the way a capacity planner would:

* **scoring-heavy** — every request carries a fresh token count, so the
  recommendation cache never hits and every request crosses the full
  route -> featurize -> (shm) -> score path;
* **cache-hot** — a replayed schedule, the production shape where
  recurring signatures dominate and answers come from the per-shard
  LRU (this is the regime the ~100k rec/s headline number lives in).

Both phases run at 1/2/4/8 shard processes (``procs=1`` is the plain
single-process :class:`AllocationServer` baseline) and land in
``benchmarks/results/BENCH_serving.json`` for CI to archive. The
scaling assertion (>= 2x scoring throughput at 4 shards vs 1) only
fires on machines with >= 4 CPUs — on smaller runners the numbers are
still recorded, but shards would just time-slice one core.

Marked ``slow``: the tier-1 job (``-m "not slow"``) skips this module;
the perf-kernels CI job runs it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ServingError
from repro.serving import (
    LoadGenerator,
    LoadgenConfig,
    ServerConfig,
    ShardConfig,
    build_server,
)
from repro.tasq import ScoringPipeline

_RESULTS_DIR = Path(__file__).parent / "results"
_SERVING: dict[str, float | int] = {}

_PROC_SWEEP = (1, 2, 4, 8)
_SERVER_CONFIG = ServerConfig(workers=2, max_batch_size=16, max_queue=4096)


def _shard_config(procs: int) -> ShardConfig:
    return ShardConfig(
        procs=procs,
        flush_batch_size=16,
        flush_interval_s=0.001,
        shm_slots=8,
        metrics_interval_s=1.0,
    )


@pytest.fixture(scope="module", autouse=True)
def _write_serving_json():
    """Flush collected serving numbers to BENCH_serving.json."""
    yield
    if _SERVING:
        _RESULTS_DIR.mkdir(exist_ok=True)
        out = _RESULTS_DIR / "BENCH_serving.json"
        out.write_text(json.dumps(_SERVING, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def serving_jobs(generator, train_repo):
    """Fresh jobs from the shared population (order pinned by train_repo)."""
    del train_repo  # pins the shared generator's stream order
    return generator.generate(60, start_day=2)


@pytest.fixture(scope="module")
def serving_pipeline(xgb_pl):
    return ScoringPipeline(xgb_pl)


def _build(pipeline, procs: int):
    server = build_server(
        pipeline,
        _SERVER_CONFIG,
        procs=procs,
        shard_config=_shard_config(procs) if procs > 1 else None,
    )
    try:
        return server.start()
    except ServingError as error:
        if "could not start shard processes" in str(error):
            pytest.skip(str(error))
        raise


def _closed_drive(server, plans, requests: int, clients: int, token_of):
    """Closed-loop drive with a caller-controlled token schedule.

    ``token_of(i)`` decides request ``i``'s token ask — unique counts
    defeat the recommendation cache (scoring-heavy), a constant count
    replays it (cache-hot).
    """
    latencies = [0.0] * requests
    statuses = [None] * requests

    def client(worker: int) -> None:
        for i in range(worker, requests, clients):
            response = server.request(
                plans[i % len(plans)], token_of(i), timeout=120.0
            )
            latencies[i] = response.latency_s
            statuses[i] = response.status

    threads = [
        threading.Thread(target=client, args=(w,), daemon=True)
        for w in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = max(time.perf_counter() - started, 1e-9)
    ranked = sorted(latencies)

    def pct(q: float) -> float:
        return ranked[min(len(ranked) - 1, int(round(q * (len(ranked) - 1))))]

    return {
        "rps": requests / duration,
        "p50_ms": pct(0.50) * 1e3,
        "p95_ms": pct(0.95) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
        "statuses": statuses,
    }


@pytest.mark.slow
def test_perf_serving_throughput_scaling(serving_pipeline, serving_jobs):
    """Throughput/latency across 1/2/4/8 shard processes, both phases."""
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    scoring_requests = int(300 * multiplier)
    cachehot_requests = int(3000 * multiplier)
    plans = [job.plan for job in serving_jobs]
    cpus = os.cpu_count() or 1
    _SERVING["cpu_count"] = cpus

    for procs in _PROC_SWEEP:
        server = _build(serving_pipeline, procs)
        try:
            scoring = _closed_drive(
                server,
                plans,
                scoring_requests,
                clients=max(4, 2 * procs),
                token_of=lambda i: 50 + i,  # unique ask -> cache miss
            )
            # Seed the caches once, then replay the exact schedule.
            _closed_drive(
                server, plans, len(plans), clients=4, token_of=lambda i: 100
            )
            cachehot = _closed_drive(
                server,
                plans,
                cachehot_requests,
                clients=max(4, 2 * procs),
                token_of=lambda i: 100,
            )
        finally:
            server.stop()
        assert all(s is not None for s in scoring["statuses"])
        prefix = f"serving_procs{procs}"
        _SERVING[f"{prefix}_scoring_rps"] = scoring["rps"]
        _SERVING[f"{prefix}_scoring_p50_ms"] = scoring["p50_ms"]
        _SERVING[f"{prefix}_scoring_p99_ms"] = scoring["p99_ms"]
        _SERVING[f"{prefix}_cachehot_rps"] = cachehot["rps"]
        _SERVING[f"{prefix}_cachehot_p50_ms"] = cachehot["p50_ms"]
        _SERVING[f"{prefix}_cachehot_p99_ms"] = cachehot["p99_ms"]

    speedup = (
        _SERVING["serving_procs4_scoring_rps"]
        / _SERVING["serving_procs1_scoring_rps"]
    )
    _SERVING["serving_scaling_4proc_vs_1proc"] = speedup
    if cpus >= 4:
        # The whole point of sharding: scoring throughput scales with
        # processes. 2x at 4 shards is deliberately conservative (the
        # parent itself burns a core on routing + featurization).
        assert speedup >= 2.0, (
            f"4-shard scoring throughput only {speedup:.2f}x the "
            f"single-process baseline"
        )


@pytest.mark.slow
def test_perf_serving_open_loop_slo(serving_pipeline, serving_jobs):
    """Open-loop arrivals against the sharded server must hold the SLO.

    Latencies are coordinated-omission corrected (measured from the
    intended send time), so a stalling generator cannot flatter p99.
    """
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    config = LoadgenConfig(
        requests=int(200 * multiplier),
        arrival_rate=200.0,
        seed=5,
        slo_p95_s=1.0,
        slo_p99_s=2.0,
    )
    server = _build(serving_pipeline, procs=2)
    try:
        # Warm pass first: open-loop SLOs target steady state, not the
        # one-off cost of a cold cache.
        LoadGenerator(serving_jobs, config).run(server)
        report = LoadGenerator(serving_jobs, config).run(server)
    finally:
        server.stop()
    _SERVING["serving_openloop_p95_ms"] = (report.latency_p95_s or 0) * 1e3
    _SERVING["serving_openloop_p99_ms"] = (report.latency_p99_s or 0) * 1e3
    _SERVING["serving_openloop_max_send_lag_ms"] = report.max_send_lag_s * 1e3
    report.assert_slo()
    assert report.rejected == 0
