"""Table 8: model accuracy against flighted (re-executed) ground truth.

Paper numbers (LF2 models, 31 jobs / 97 runs / 67 unique token counts):
XGBoost SS 32% pattern & 53% Median AE; XGBoost PL 93% & 52%;
NN 100% / 0.163 / 39%; GNN 100% / 0.168 / 33%. The key claims:

* every model's error grows versus the AREPAS-proxy evaluation
  (flighted truth is harsher),
* XGBoost degrades the most (the simulator taught it points near the
  reference only), NN/GNN hold up better,
* NN/GNN remain 100% monotonically non-increasing.
"""

from __future__ import annotations

import pytest

from repro.flighting import evaluate_on_flighted
from repro.models import evaluate_model, evaluation_table

PAPER_ROWS = [
    ("XGBoost SS", 0.32, None, 53),
    ("XGBoost PL", 0.93, 0.202, 52),
    ("NN", 1.00, 0.163, 39),
    ("GNN", 1.00, 0.168, 33),
]


@pytest.fixture(scope="module")
def lf2_models(xgb_ss, xgb_pl, nn_by_loss, gnn_by_loss):
    return [xgb_ss, xgb_pl, nn_by_loss["LF2"], gnn_by_loss["LF2"]]


def test_table8_flighted_accuracy(
    benchmark, lf2_models, flighted, test_dataset, report
):
    def evaluate_all():
        return [evaluate_on_flighted(m, flighted) for m in lf2_models]

    rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    by_model = {row.model: row for row in rows}

    # NN/GNN keep the guaranteed pattern on flighted data too.
    assert by_model["NN"].pattern_non_increasing == 1.0
    assert by_model["GNN"].pattern_non_increasing == 1.0

    # Errors grow versus the proxy (historical) evaluation for XGBoost —
    # the paper's 13% -> 53% degradation, reproduced directionally.
    proxy = {
        m.name: evaluate_model(m, test_dataset).runtime_median_ape
        for m in lf2_models[:1]
    }
    assert (
        by_model["XGBoost SS"].runtime_median_ape
        > proxy["XGBoost SS"]
    )

    # Trend models stay competitive with (or beat) XGBoost at multi-token
    # point prediction — the paper's central Table 8 result.
    best_trend = min(
        by_model["NN"].runtime_median_ape,
        by_model["GNN"].runtime_median_ape,
    )
    assert best_trend <= by_model["XGBoost SS"].runtime_median_ape + 10.0

    lines = [
        f"flighted set: {len(flighted)} jobs, {flighted.num_flights} runs, "
        f"{flighted.num_unique_token_counts} unique (job, token) levels",
        "",
        evaluation_table(rows),
        "",
        "paper:",
    ]
    for model, pattern, mae, median_ae in PAPER_ROWS:
        mae_text = "NA" if mae is None else f"{mae:.3f}"
        lines.append(
            f"  {model:<12} {pattern * 100:5.0f}% {mae_text:>8} "
            f"{median_ae:>7}%"
        )
    report.add("Table 8 flighted accuracy", "\n".join(lines))
