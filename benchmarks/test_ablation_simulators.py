"""Ablation (Section 6.3): AREPAS versus prior simulators.

The paper argues AREPAS's skyline-level, shape-preserving simulation beats
the stage-level Jockey/Amdahl's-law approaches for training-data
augmentation. We measure each simulator's run-time estimation error
against re-executed ground truth on the flighted benchmark set:

* AREPAS (skyline + area preservation),
* the Amdahl skyline fit (``S + P/N`` calibrated from one run),
* the stage-level wave simulator (Jockey analogue — needs the plan).
"""

from __future__ import annotations

import numpy as np

from repro.arepas import AREPAS
from repro.baselines import AmdahlSkylineSimulator, StageLevelSimulator
from repro.scope import decompose_stages


def _errors(flighted):
    arepas = AREPAS()
    amdahl = AmdahlSkylineSimulator()
    stage_level = StageLevelSimulator()

    results = {"AREPAS": [], "Amdahl": [], "Stage-level": []}
    for job in flighted.jobs:
        reference = job.reference_skyline()
        graph = decompose_stages(job.record.plan)
        by_tokens = job.runtime_by_tokens()
        for tokens in job.token_levels:
            if tokens == job.reference_tokens:
                continue
            true = by_tokens[tokens]
            estimates = {
                "AREPAS": arepas.runtime(reference, tokens),
                "Amdahl": amdahl.runtime(reference, tokens),
                "Stage-level": stage_level.runtime(graph, tokens),
            }
            for name, estimate in estimates.items():
                results[name].append(abs(estimate - true) / true * 100.0)
    return {name: np.array(vals) for name, vals in results.items()}


def test_ablation_simulator_accuracy(benchmark, flighted, report):
    errors = benchmark.pedantic(_errors, args=(flighted,),
                                rounds=1, iterations=1)

    medians = {name: float(np.median(vals)) for name, vals in errors.items()}

    # AREPAS must beat the naive Amdahl skyline fit.
    assert medians["AREPAS"] < medians["Amdahl"]
    # And be at least competitive with the plan-requiring stage simulator,
    # despite using only the observed skyline.
    assert medians["AREPAS"] <= medians["Stage-level"] + 5.0

    lines = [
        f"{'simulator':<14} {'median APE':>11} {'mean APE':>9} {'p90 APE':>9}",
        "-" * 48,
    ]
    for name, vals in errors.items():
        lines.append(
            f"{name:<14} {np.median(vals):>10.1f}% "
            f"{vals.mean():>8.1f}% {np.percentile(vals, 90):>8.1f}%"
        )
    lines.append("")
    lines.append(
        "paper (Section 6.3, qualitative): stage-level simulators are slow"
    )
    lines.append(
        "online and cannot extend to fresh jobs; AREPAS estimates from one"
    )
    lines.append("skyline with accuracy sufficient for augmentation.")
    report.add("Ablation simulators", "\n".join(lines))
