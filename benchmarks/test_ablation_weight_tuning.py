"""Ablation (Section 4.5): tuning LF2's run-time penalisation weight.

The paper: "We tuned the penalization weights, so that the MAE of the
curve parameters in LF2 is close to that of LF1. Adding the penalization
terms substantially improves the run time prediction ... without
sacrificing the accuracy of curve parameters prediction." We rerun the
tuning procedure and verify the selected weight achieves exactly that.
"""

from __future__ import annotations

from repro.models import NNPCCModel, TrainConfig, tune_runtime_weight
from repro.models.dataset import PCCDataset


def test_ablation_lf2_weight_tuning(benchmark, train_dataset, report):
    half = len(train_dataset) // 2
    train = PCCDataset(examples=train_dataset.examples[:half])
    validation = PCCDataset(examples=train_dataset.examples[half:])

    def factory(loss):
        return NNPCCModel(
            loss=loss, train_config=TrainConfig(epochs=40), seed=0
        )

    result = benchmark.pedantic(
        tune_runtime_weight,
        args=(factory, train, validation),
        kwargs={"weights": (0.1, 0.5, 1.0, 2.0)},
        rounds=1, iterations=1,
    )

    best = result.best_trial()
    # The selected weight keeps the curve-parameter MAE near LF1's...
    assert best[1] <= 1.6 * result.lf1_param_mae
    # ...and some positive weight must have been worth selecting.
    assert result.best_weight > 0

    lines = [
        f"LF1 reference curve-param MAE: {result.lf1_param_mae:.3f}",
        f"{'weight':>7} {'param MAE':>10} {'runtime MedAE':>14}",
        "-" * 34,
    ]
    for weight, mae, ape in result.trials:
        marker = "  <- selected" if weight == result.best_weight else ""
        lines.append(f"{weight:>7.2f} {mae:>10.3f} {ape:>13.1f}%{marker}")
    lines.append("")
    lines.append(
        "paper (Section 4.5): weights tuned so LF2's parameter MAE stays"
    )
    lines.append(
        "close to LF1's while the run-time penalty improves point error."
    )
    report.add("Ablation LF2 weight tuning", "\n".join(lines))
