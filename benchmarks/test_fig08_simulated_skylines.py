"""Figure 8: simulated skylines at several allocations; peaky vs flat.

The paper observes that flat jobs lose performance as soon as tokens are
reduced, while peaky jobs tolerate significant reductions because work
shifts into their valleys. We pick the flattest and peakiest benchmark
jobs and sweep both.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import AREPAS


def _slowdown_curve(simulator, skyline, fractions):
    peak = skyline.peak
    return np.array(
        [
            simulator.simulate(skyline, max(1.0, f * peak)).slowdown
            for f in fractions
        ]
    )


def test_fig08_peaky_tolerates_reduction(benchmark, train_repo, report):
    records = [
        r for r in train_repo.records()
        if r.peak_tokens >= 8 and r.runtime >= 60
    ]
    by_peakiness = sorted(records, key=lambda r: r.skyline.peakiness())
    flat_record = by_peakiness[0]
    peaky_record = by_peakiness[-1]
    fractions = np.array([0.9, 0.7, 0.5, 0.3])
    simulator = AREPAS()

    peaky_curve = benchmark.pedantic(
        _slowdown_curve,
        args=(simulator, peaky_record.skyline, fractions),
        rounds=1, iterations=1,
    )
    flat_curve = _slowdown_curve(simulator, flat_record.skyline, fractions)

    # Slowdowns grow as the allocation shrinks, for both shapes.
    assert np.all(np.diff(peaky_curve) >= 0)
    assert np.all(np.diff(flat_curve) >= 0)
    # Paper: the flat job suffers more at every reduction level.
    assert np.all(flat_curve >= peaky_curve - 1e-9)
    # And the gap is substantial at deep cuts.
    assert flat_curve[-1] > peaky_curve[-1] + 0.2

    lines = [
        f"{'alloc (x peak)':>14} {'peaky slowdown':>15} {'flat slowdown':>14}",
        "-" * 47,
    ]
    for fraction, p, f in zip(fractions, peaky_curve, flat_curve):
        lines.append(f"{fraction:>14.0%} {p:>14.0%} {f:>13.0%}")
    lines.append("")
    lines.append(
        "paper (Figure 8): flat jobs lose performance as soon as the"
    )
    lines.append(
        "allocation decreases; peaky jobs tolerate significant reductions."
    )
    report.add("Figure 8 simulated skylines", "\n".join(lines))
