"""Ablation (Section 4.2): global model versus fine-grained models.

The paper chooses a single global model because fine-grained
(per-signature) models cannot cover ad-hoc jobs — 40-60% of the SCOPE
workload. We train both on the benchmark history and measure coverage and
accuracy on next-day jobs: the fine-grained approach may win slightly on
the jobs it covers, but it answers for only a fraction of the workload.
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import median_absolute_percentage_error
from repro.models import (
    FineGrainedPCCModel,
    NNPCCModel,
    TrainConfig,
    build_dataset,
)
from repro.models.dataset import PCCDataset


def test_ablation_global_vs_fine_grained(
    benchmark, train_repo, test_repo, nn_by_loss, report
):
    train_records = [
        r for r in train_repo.records() if r.requested_tokens >= 2
    ]
    test_records = [
        r for r in test_repo.records() if r.requested_tokens >= 2
    ]
    train_dataset = build_dataset(train_records)
    train_plans = [r.plan for r in train_records]
    test_dataset = build_dataset(test_records)
    test_plans = [r.plan for r in test_records]

    def fit_fine_grained():
        model = FineGrainedPCCModel(
            model_factory=lambda: NNPCCModel(
                train_config=TrainConfig(epochs=30), seed=0
            ),
            min_group_size=5,
        )
        return model.fit(train_dataset, plans=train_plans)

    fine_grained = benchmark.pedantic(fit_fine_grained, rounds=1, iterations=1)
    global_model = nn_by_loss["LF2"]

    coverage = fine_grained.coverage(test_plans)
    # The paper's central §4.2 argument: fine-grained coverage is partial.
    assert 0.0 < coverage < 0.95

    covered = fine_grained.covered_mask(test_plans)
    covered_dataset = PCCDataset(
        examples=[e for e, c in zip(test_dataset.examples, covered) if c]
    )
    covered_plans = [p for p, c in zip(test_plans, covered) if c]
    tokens = covered_dataset.observed_tokens()
    true = covered_dataset.observed_runtimes()

    fine_pred = fine_grained.predict_runtime_at_routed(
        covered_dataset, tokens, covered_plans
    )
    global_pred = global_model.predict_runtime_at(covered_dataset, tokens)
    fine_ape = median_absolute_percentage_error(true, fine_pred)
    global_ape = median_absolute_percentage_error(true, global_pred)

    # The global model must be in the same accuracy class on covered jobs
    # (the paper accepts a small specialisation loss for full coverage).
    assert global_ape < max(3 * fine_ape, fine_ape + 30.0)

    lines = [
        f"{'approach':<14} {'coverage':>9} {'MedAE on covered jobs':>22}",
        "-" * 48,
        f"{'global (NN)':<14} {'100%':>9} {global_ape:>21.0f}%",
        f"{'fine-grained':<14} {coverage:>8.0%} {fine_ape:>21.0f}%",
        "",
        f"fine-grained groups: {fine_grained.num_groups}; uncovered "
        f"training jobs: {fine_grained.num_uncovered_training_jobs_}",
        "paper (Section 4.2): fine-grained models may specialise better",
        "but only cover recurring jobs; TASQ needs predictions for all",
        "incoming jobs, so it uses the global model.",
    ]
    report.add("Ablation model granularity", "\n".join(lines))
