"""Replay benchmark: closed-loop multi-tenant replay across policies.

One seeded three-tenant arrival stream is replayed through the live
serving stack — every arrival is scored by the :class:`AllocationServer`,
admitted by the :class:`FleetScheduler` under a shared cap, executed on
the simulated cluster, and its outcome fed back to the drift monitor —
once per allocation regime. The study compares tail wait (p95) across
user defaults, clairvoyant peak, per-job TASQ, and the global fleet
policies.

The tenants all draw from the ``tpch`` family the bootstrap model was
trained on, so the comparison isolates *allocation policy* rather than
out-of-distribution prediction error (drift and retraining have their
own tests). Like the fleet benchmark, the study shape is fixed —
independent of ``REPRO_BENCH_SCALE`` — so its acceptance assertions are
stable across CI scales. Results land in
``benchmarks/results/BENCH_replay.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fleet import POLICY_NAMES
from repro.replay import ReplayConfig, TenantSpec, run_replay

_RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed study shape — deliberately NOT scaled by REPRO_BENCH_SCALE.
_SEED = 3
_DURATION_S = 300.0
_BOOTSTRAP_JOBS = 40
_TENANTS = tuple(
    TenantSpec(name=f"tenant-{i}", family="tpch") for i in range(3)
)
_POLICIES = ("default", "peak", "tasq") + POLICY_NAMES


def _replay(policy: str):
    return run_replay(
        ReplayConfig(
            duration_s=_DURATION_S,
            bootstrap_jobs=_BOOTSTRAP_JOBS,
            seed=_SEED,
            policy=policy,
        ),
        _TENANTS,
    )


def test_replay_fleet_policies_beat_baselines(benchmark, report):
    reports = benchmark.pedantic(
        lambda: {policy: _replay(policy) for policy in _POLICIES},
        rounds=1,
        iterations=1,
    )

    _RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "study": {
            "seed": _SEED,
            "duration_s": _DURATION_S,
            "bootstrap_jobs": _BOOTSTRAP_JOBS,
            "tenants": [
                {"name": t.name, "family": t.family} for t in _TENANTS
            ],
        },
        "policies": {
            policy: r.to_json() for policy, r in reports.items()
        },
    }
    out = _RESULTS_DIR / "BENCH_replay.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [
        f"{'policy':<16}{'p95 wait':>10}{'p50 wait':>10}"
        f"{'p95 slow':>10}{'completed':>11}{'rejected':>10}"
    ]
    for policy, r in reports.items():
        lines.append(
            f"{policy:<16}{r.p95_wait:>10.1f}{r.p50_wait:>10.1f}"
            f"{r.p95_slowdown:>10.2f}{r.completed:>11d}{r.rejected:>10d}"
        )
    report.add(
        "Replay policy comparison",
        f"3 tpch tenants, {_DURATION_S:.0f}s window, seed {_SEED}\n"
        + "\n".join(lines),
    )

    for r in reports.values():
        assert r.arrived == r.completed + r.rejected
        assert r.peak_committed_tokens <= r.capacity

    default = reports["default"]
    peak = reports["peak"]
    # Acceptance: at least one global fleet policy beats BOTH the
    # Default and clairvoyant Peak baselines on tail (p95) wait.
    winners = [
        policy
        for policy in POLICY_NAMES
        if reports[policy].p95_wait < min(default.p95_wait, peak.p95_wait)
    ]
    assert winners, "no fleet policy beat Default and Peak on p95 wait"
