"""Figure 9: the power-law PCC fit in absolute and log-log space.

The paper fits ``runtime = b * A^a`` to AREPAS sweeps via linear
regression in log-log space. We fit every benchmark job's sweep and check
that the power law is an excellent description (high R^2, low median APE)
— the premise behind using ``(a, log b)`` as model targets.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import default_token_grid, sweep_token_grid
from repro.pcc import fit_observations, fit_quality


def _fit_all(records):
    qualities = []
    for record in records:
        if record.requested_tokens < 4:
            continue
        grid = default_token_grid(record.requested_tokens, num_points=8)
        observations = sweep_token_grid(
            record.skyline, grid, observed_tokens=record.requested_tokens
        )
        pcc = fit_observations(observations)
        tokens = np.array([o.tokens for o in observations])
        runtimes = np.array([o.runtime for o in observations])
        qualities.append(fit_quality(pcc, tokens, runtimes))
    return qualities


def test_fig09_powerlaw_fits_sweeps(benchmark, train_repo, report):
    records = train_repo.records()[:150]
    qualities = benchmark.pedantic(_fit_all, args=(records,),
                                   rounds=1, iterations=1)

    r_squared = np.array([q["r_squared"] for q in qualities])
    median_ape = np.array([q["median_ape"] for q in qualities])

    # The power law should describe the large majority of sweeps well.
    assert np.median(r_squared) > 0.9
    assert np.mean(r_squared > 0.8) > 0.75
    assert np.median(median_ape) < 15.0

    lines = [
        f"power-law fit over {len(qualities)} AREPAS sweeps:",
        f"  median R^2 (log-log):        {np.median(r_squared):.3f}",
        f"  jobs with R^2 > 0.8:         {np.mean(r_squared > 0.8):.0%}",
        f"  median per-job median APE:   {np.median(median_ape):.1f}%",
        "",
        "paper (Figure 9, qualitative): the simulated curve is a straight",
        "line in log-log space, so two parameters capture the whole PCC.",
    ]
    report.add("Figure 9 power-law fit", "\n".join(lines))
