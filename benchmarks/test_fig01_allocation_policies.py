"""Figure 1: over-allocation under Default / Peak / Adaptive-Peak policies.

The paper's motivating figure shows a job using fewer than 80 tokens while
125 are allocated by default, with the peak and adaptive-peak policies
recovering part — but not all — of the waste. We regenerate the policy
comparison over the benchmark workload and check the ordering
``default waste > peak waste > adaptive-peak waste > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.skyline import (
    AdaptivePeakAllocation,
    DefaultAllocation,
    PeakAllocation,
    evaluate_policy,
)


def _policy_waste(records):
    """Mean waste fraction per policy over the workload."""
    totals = {"default": [], "peak": [], "adaptive-peak": []}
    for record in records:
        policies = [
            DefaultAllocation(record.requested_tokens),
            PeakAllocation(),
            AdaptivePeakAllocation(),
        ]
        for policy in policies:
            outcome = evaluate_policy(policy, record.skyline)
            totals[outcome.policy].append(outcome.waste_fraction)
    return {name: float(np.mean(values)) for name, values in totals.items()}


def test_fig01_policy_over_allocation(benchmark, train_repo, report):
    records = train_repo.records()
    waste = benchmark.pedantic(
        _policy_waste, args=(records,), rounds=1, iterations=1
    )

    # The paper's qualitative ordering must hold.
    assert waste["default"] > waste["peak"] > waste["adaptive-peak"]
    assert waste["adaptive-peak"] > 0  # valleys still waste (Figure 1)

    lines = [
        f"{'policy':<16} {'mean waste fraction':>20}",
        "-" * 38,
    ]
    for name in ("default", "peak", "adaptive-peak"):
        lines.append(f"{name:<16} {waste[name]:>19.1%}")
    lines.append("")
    lines.append(
        "paper (Figure 1, qualitative): default >> peak > adaptive peak,"
    )
    lines.append("with non-zero waste remaining even under adaptive peak.")
    report.add("Figure 1 allocation policies", "\n".join(lines))
