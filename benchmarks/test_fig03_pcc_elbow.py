"""Figure 3: run time vs tokens trade-off with a diminishing-returns elbow.

The paper's example PCC falls steeply at small allocations, flattens out,
and has a visible elbow below the midpoint of the token range. We sweep a
real benchmark job with AREPAS and locate the elbow.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import AREPAS
from repro.pcc import find_elbow


def _pick_job(records):
    """A job with enough parallelism for an interesting curve."""
    return max(records, key=lambda r: r.peak_tokens * min(r.runtime, 3600))


def test_fig03_pcc_and_elbow(benchmark, train_repo, report):
    record = _pick_job(train_repo.records())
    simulator = AREPAS()
    grid = np.unique(
        np.maximum(1, np.geomspace(2, record.peak_tokens, 24).astype(int))
    ).astype(float)

    def sweep():
        return np.array(
            [simulator.runtime(record.skyline, tokens) for tokens in grid]
        )

    runtimes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Monotone non-increasing trade-off curve (the PCC premise).
    assert np.all(np.diff(runtimes) <= 0)
    # Strong diminishing returns: most of the total improvement happens in
    # the first half of the token range.
    half = len(grid) // 2
    gain_first_half = runtimes[0] - runtimes[half]
    gain_total = runtimes[0] - runtimes[-1]
    assert gain_first_half > 0.8 * gain_total

    elbow_tokens, elbow_runtime = find_elbow(grid, runtimes)
    assert grid[0] < elbow_tokens < grid[-1] * 0.6  # elbow sits low-left

    lines = [
        f"job {record.job_id}: peak {record.peak_tokens:.0f} tokens, "
        f"observed run time {record.runtime}s",
        f"{'tokens':>8} {'runtime(s)':>11}",
    ]
    for tokens, runtime in zip(grid[::4], runtimes[::4]):
        lines.append(f"{tokens:>8.0f} {runtime:>11.0f}")
    lines.append(
        f"elbow at ~{elbow_tokens:.0f} tokens ({elbow_runtime:.0f}s) — "
        "paper Figure 3 marks the same low-token knee."
    )
    report.add("Figure 3 PCC elbow", "\n".join(lines))
