"""Table 7: parameter counts, training time, and inference time.

Paper numbers: NN 2,216 parameters, 2 s/epoch, 0.09 s per 10K-job
inference; GNN 19,210 parameters, 913 s/epoch, 78 s per 10K jobs. The
absolute times depend on hardware and scale; the claims we verify are the
parameter counts (we match the architectures) and the relative cost — the
GNN is roughly an order of magnitude (or more) heavier in both training
and inference.
"""

from __future__ import annotations

import time

from repro.ml.losses import LF2
from repro.models import GNNPCCModel, NNPCCModel, TrainConfig


def _time_one_epoch(model_cls, dataset, **kwargs):
    model = model_cls(train_config=TrainConfig(epochs=1), **kwargs)
    start = time.perf_counter()
    model.fit(dataset)
    return model, time.perf_counter() - start


def test_table7_parameters_and_times(benchmark, train_dataset, report):
    nn, nn_epoch = _time_one_epoch(NNPCCModel, train_dataset, loss=LF2(),
                                   seed=0)
    gnn, gnn_epoch = _time_one_epoch(GNNPCCModel, train_dataset, loss=LF2(),
                                     seed=0)

    # Inference timing: predict parameters for the whole dataset, scaled
    # to a per-10K-jobs figure. The benchmark fixture times the NN path.
    def nn_inference():
        return nn.predict_parameters(train_dataset)

    benchmark.pedantic(nn_inference, rounds=3, iterations=1)

    start = time.perf_counter()
    nn.predict_parameters(train_dataset)
    nn_infer = time.perf_counter() - start
    start = time.perf_counter()
    gnn.predict_parameters(train_dataset)
    gnn_infer = time.perf_counter() - start
    per_10k = 10_000 / len(train_dataset)

    # Architecture fidelity: parameter counts match the paper's Table 7.
    assert abs(nn.num_parameters() - 2216) < 500
    assert abs(gnn.num_parameters() - 19210) < 3000
    # Relative cost: the GNN is much heavier in both phases.
    assert gnn_epoch > 3 * nn_epoch
    assert gnn_infer > 3 * nn_infer

    lines = [
        f"{'model':<6} {'params':>8} {'s/epoch':>9} {'s per 10K jobs':>15}",
        "-" * 42,
        f"{'NN':<6} {nn.num_parameters():>8} {nn_epoch:>9.2f} "
        f"{nn_infer * per_10k:>15.2f}",
        f"{'GNN':<6} {gnn.num_parameters():>8} {gnn_epoch:>9.2f} "
        f"{gnn_infer * per_10k:>15.2f}",
        "",
        "paper: NN 2,216 params / 2 s/epoch / 0.09 s per 10K;",
        "       GNN 19,210 params / 913 s/epoch / 78 s per 10K",
        "(absolute paper times are for 85K jobs on Azure ML; the claims",
        " reproduced are the parameter counts and the NN<<GNN cost gap)",
    ]
    report.add("Table 7 model cost", "\n".join(lines))
