"""Uncertainty benchmark: risk-adjusted deadlines and drift-aware serving.

Two seeded studies (see ``docs/uncertainty.md`` §6):

1. **Risk-adjusted deadlines** — a downsizing study. Each held-out
   job's deadline is the model's q90 run time at the *requested*
   allocation ("finish as reliably as your original request would
   have"), and each arm picks the cheapest allocation in
   ``[0.25 x requested, requested]`` meeting it: the point arm on the
   median curve, the risk arm on the q90 curve
   (``cheapest_within_deadline(..., risk=0.9)``). Acceptance: the risk
   arm attains its deadline on >= 90% of jobs while the point arm —
   which happily downsizes to the floor on the median's say-so —
   attains < 90%.

2. **Drift-aware serving** — a closed-loop replay where one tenant's
   workload shifts family mid-stream (``tpch`` -> ``ml_training``).
   Acceptance: drift-triggered retraining with immediate hot-swap beats
   the frozen model on the shifted tenant's post-shift p95 slowdown;
   the shadow-gated arm is never *worse* than frozen (the promotion
   gate may withhold promotion on thin evidence, in which case serving
   is bit-identical to the frozen arm — challengers cannot degrade
   serving).

Like the fleet/replay benchmarks the study shape is fixed —
deliberately independent of ``REPRO_BENCH_SCALE`` — so the acceptance
assertions are stable across CI scales. Results land in
``benchmarks/results/BENCH_uncertainty.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import FittingError
from repro.models import XGBoostPL, build_dataset
from repro.replay import ReplayConfig, ReplayEngine, TenantSpec
from repro.replay.arrivals import ArrivalSpec
from repro.scope import WorkloadGenerator, run_workload
from repro.scope.execution import ClusterExecutor
from repro.scope.stages import decompose_stages
from repro.tasq.pipeline import ScoringPipeline
from repro.tasq.price_performance import cheapest_within_deadline

_RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed study shape — deliberately NOT scaled by REPRO_BENCH_SCALE.
_RISK = 0.9
#: Downsizing guardrail: neither arm may go below this fraction of the
#: request (production systems bound downsizing; a near-flat fitted
#: curve would otherwise send both arms to 1 token).
_FLOOR_FRACTION = 0.25

_DEADLINE_TRAIN_JOBS = 400
_DEADLINE_HELDOUT_JOBS = 80
_DEADLINE_GEN_SEED = 71
_DEADLINE_RUN_SEED = 72
_DEADLINE_HELDOUT_SEED = 81
_DEADLINE_EXEC_SEED = 99

_REPLAY_DURATION_S = 6_000.0
_REPLAY_SHIFT_AT_S = 1_500.0
_REPLAY_GAP_S = 150.0
_REPLAY_CAPACITY = 600
_REPLAY_SEED = 3
_REPLAY_BOOTSTRAP_JOBS = 40


def _executor() -> ClusterExecutor:
    return ClusterExecutor(
        noise_scale=0.08, straggler_rate=0.02, work_noise=0.10
    )


def _risk_deadline_study() -> dict:
    """Study 1: point vs risk=0.9 deadline attainment when downsizing."""
    executor = _executor()
    train_jobs = WorkloadGenerator(seed=_DEADLINE_GEN_SEED).generate(
        _DEADLINE_TRAIN_JOBS
    )
    repository = run_workload(
        train_jobs, executor=executor, seed=_DEADLINE_RUN_SEED
    )
    model = XGBoostPL(seed=0, quantile_heads=True).fit(
        build_dataset(repository)
    )

    held_out = WorkloadGenerator(seed=_DEADLINE_HELDOUT_SEED).generate(
        _DEADLINE_HELDOUT_JOBS
    )
    scorer = ScoringPipeline(model, risk=_RISK)
    scored = []
    for job in held_out:
        try:
            scored.append((job, scorer.score(job.plan, job.requested_tokens)))
        except FittingError:
            # ~27% of XGBoost PL curves increase; those jobs carry no
            # usable PCC for either arm.
            continue

    rng = np.random.default_rng(_DEADLINE_EXEC_SEED)
    n = point_met = risk_met = 0
    point_savings: list[float] = []
    risk_savings: list[float] = []
    for job, rec in scored:
        requested = int(job.requested_tokens)
        # Deadline: the model's own q90 at the requested allocation —
        # "downsize, but finish as reliably as the original request".
        deadline = float(rec.runtime_interval_at(requested)[2])
        floor = max(1, int(_FLOOR_FRACTION * requested))
        point_tokens = cheapest_within_deadline(
            rec.pcc, deadline, min_tokens=floor, max_tokens=requested
        )
        risk_tokens = cheapest_within_deadline(
            rec.pcc, deadline, min_tokens=floor, max_tokens=requested,
            interval=rec.pcc_interval, risk=_RISK,
        )
        seed = int(rng.integers(0, 2**63))
        graph = decompose_stages(job.plan)
        actual_point = executor.execute(
            graph, point_tokens, rng=np.random.default_rng(seed)
        ).runtime
        actual_risk = executor.execute(
            graph, risk_tokens, rng=np.random.default_rng(seed)
        ).runtime
        n += 1
        point_met += actual_point <= deadline
        risk_met += actual_risk <= deadline
        point_savings.append(1.0 - point_tokens / requested)
        risk_savings.append(1.0 - risk_tokens / requested)

    return {
        "jobs_scored": n,
        "jobs_held_out": len(held_out),
        "point_attainment": point_met / n,
        "risk_attainment": risk_met / n,
        "point_mean_token_savings": float(np.mean(point_savings)),
        "risk_mean_token_savings": float(np.mean(risk_savings)),
        "risk": _RISK,
        "floor_fraction": _FLOOR_FRACTION,
    }


def _drift_tenants() -> tuple[TenantSpec, ...]:
    arrival = ArrivalSpec(mean_gap_s=_REPLAY_GAP_S)
    return (
        TenantSpec(name="tenant-0", family="tpch", arrival=arrival),
        TenantSpec(name="tenant-1", family="tpch", arrival=arrival),
        TenantSpec(
            name="shifting", family="tpch", arrival=arrival,
            shift_family="ml_training", shift_at_s=_REPLAY_SHIFT_AT_S,
        ),
    )


def _drift_arm(retrain: bool, promotion: str) -> dict:
    config = ReplayConfig(
        duration_s=_REPLAY_DURATION_S,
        bootstrap_jobs=_REPLAY_BOOTSTRAP_JOBS,
        seed=_REPLAY_SEED,
        capacity=_REPLAY_CAPACITY,
        policy="water_filling",
        retrain=retrain,
        promotion=promotion,
        # Short drift fuse: the replay completes tens of jobs, not the
        # serving default's hundreds.
        drift_window=10,
        drift_min_observations=5,
        drift_patience=2,
    )
    engine = ReplayEngine(config, _drift_tenants())
    replay_report = engine.run()
    post_shift = [
        outcome.slowdown
        for outcome in engine.outcomes_by_tenant_["shifting"]
        if outcome.arrival_time >= _REPLAY_SHIFT_AT_S
    ]
    return {
        "retrain_events": replay_report.retrain_events,
        "post_shift_jobs": len(post_shift),
        "post_shift_p95_slowdown": float(np.percentile(post_shift, 95)),
        "post_shift_p50_slowdown": float(np.percentile(post_shift, 50)),
    }


def _drift_study() -> dict:
    return {
        "frozen": _drift_arm(retrain=False, promotion="immediate"),
        "retrain_immediate": _drift_arm(retrain=True, promotion="immediate"),
        "retrain_shadow": _drift_arm(retrain=True, promotion="shadow"),
    }


def test_uncertainty_risk_and_drift(benchmark, report):
    results = benchmark.pedantic(
        lambda: {
            "risk_deadlines": _risk_deadline_study(),
            "drift_serving": _drift_study(),
        },
        rounds=1,
        iterations=1,
    )

    _RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "study": {
            "risk_deadlines": {
                "train_jobs": _DEADLINE_TRAIN_JOBS,
                "held_out_jobs": _DEADLINE_HELDOUT_JOBS,
                "seeds": [
                    _DEADLINE_GEN_SEED, _DEADLINE_RUN_SEED,
                    _DEADLINE_HELDOUT_SEED, _DEADLINE_EXEC_SEED,
                ],
                "risk": _RISK,
                "floor_fraction": _FLOOR_FRACTION,
            },
            "drift_serving": {
                "duration_s": _REPLAY_DURATION_S,
                "shift_at_s": _REPLAY_SHIFT_AT_S,
                "mean_gap_s": _REPLAY_GAP_S,
                "capacity": _REPLAY_CAPACITY,
                "seed": _REPLAY_SEED,
                "bootstrap_jobs": _REPLAY_BOOTSTRAP_JOBS,
                "shift": "tpch -> ml_training",
            },
        },
        "results": results,
    }
    out = _RESULTS_DIR / "BENCH_uncertainty.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    deadlines = results["risk_deadlines"]
    drift = results["drift_serving"]
    lines = [
        "Risk-adjusted deadlines (downsize within q90-of-request deadline)",
        f"  jobs scored            {deadlines['jobs_scored']}"
        f" / {deadlines['jobs_held_out']} held out",
        f"  point arm              attainment"
        f" {deadlines['point_attainment']:.3f},"
        f" mean savings {deadlines['point_mean_token_savings']:.0%}",
        f"  risk=0.9 arm           attainment"
        f" {deadlines['risk_attainment']:.3f},"
        f" mean savings {deadlines['risk_mean_token_savings']:.0%}",
        "",
        "Drift-aware serving (post-shift p95 slowdown, shifting tenant)",
    ]
    for arm in ("frozen", "retrain_immediate", "retrain_shadow"):
        stats = drift[arm]
        lines.append(
            f"  {arm:<22} p95 {stats['post_shift_p95_slowdown']:>8.2f}"
            f"  p50 {stats['post_shift_p50_slowdown']:>8.2f}"
            f"  retrains {stats['retrain_events']}"
        )
    report.add("Uncertainty risk and drift", "\n".join(lines))

    # Acceptance (thresholds stated in docs/uncertainty.md §6): the
    # risk=0.9 arm holds its deadlines on >= 90% of jobs on a workload
    # where the point arm holds < 90%.
    assert deadlines["risk_attainment"] >= 0.9
    assert deadlines["point_attainment"] < 0.9

    # Acceptance: drift-triggered retraining (immediate hot-swap) beats
    # the frozen model on post-shift tail slowdown; the shadow-gated arm
    # never does worse than frozen.
    frozen = drift["frozen"]["post_shift_p95_slowdown"]
    immediate = drift["retrain_immediate"]["post_shift_p95_slowdown"]
    shadow = drift["retrain_shadow"]["post_shift_p95_slowdown"]
    assert immediate < frozen
    assert shadow <= frozen
    assert drift["retrain_immediate"]["retrain_events"] > 0
    assert drift["frozen"]["retrain_events"] == 0
