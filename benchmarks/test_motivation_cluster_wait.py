"""Section 1 motivation: fewer tokens reduce cluster wait times.

"Utilizing fewer tokens reduces job wait time and improves the overall
resource availability for other jobs in the cluster [34]." We replay the
benchmark's next-day arrival stream through a fixed-capacity FCFS queue
under (a) the user-requested default allocations and (b) TASQ's
budgeted recommendations, and compare queueing statistics.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import AREPAS
from repro.scope.cluster import ClusterQueue, QueuedJob
from repro.tasq import ScoringPipeline


def test_motivation_tasq_reduces_wait(
    benchmark, test_repo, nn_by_loss, report
):
    records = [
        r for r in test_repo.records() if 2 <= r.requested_tokens <= 600
    ]
    scorer = ScoringPipeline(
        nn_by_loss["LF2"], improvement_threshold=10.0, max_slowdown=0.10
    )
    recommendations = scorer.score_batch(
        [r.plan for r in records], [r.requested_tokens for r in records]
    )

    rng = np.random.default_rng(7)
    arrivals = np.cumsum(rng.exponential(15.0, size=len(records)))
    simulator = AREPAS()

    default_stream = [
        QueuedJob(
            job_id=r.job_id,
            arrival_time=float(t),
            tokens=r.requested_tokens,
            runtime=float(r.runtime),
        )
        for r, t in zip(records, arrivals)
    ]
    tasq_stream = [
        QueuedJob(
            job_id=r.job_id,
            arrival_time=float(t),
            tokens=rec.optimal_tokens,
            runtime=float(simulator.runtime(r.skyline, rec.optimal_tokens)),
        )
        for r, rec, t in zip(records, recommendations, arrivals)
    ]

    capacity = max(r.requested_tokens for r in records)
    queue = ClusterQueue(capacity=capacity)

    def run_both():
        return queue.run(default_stream), queue.run(tasq_stream)

    default_report, tasq_report = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # The motivating claim: right-sizing reduces waiting and turnaround.
    assert tasq_report.mean_wait < default_report.mean_wait
    assert tasq_report.mean_turnaround < default_report.mean_turnaround

    savings = 1.0 - (
        sum(j.tokens for j in tasq_stream)
        / sum(j.tokens for j in default_stream)
    )
    lines = [
        f"{len(records)} jobs, capacity {capacity} tokens, "
        f"token requests cut by {savings:.0%}",
        f"{'metric':<20} {'default':>10} {'TASQ':>10}",
        "-" * 42,
        f"{'mean wait (s)':<20} {default_report.mean_wait:>10,.0f} "
        f"{tasq_report.mean_wait:>10,.0f}",
        f"{'p95 wait (s)':<20} {default_report.p95_wait:>10,.0f} "
        f"{tasq_report.p95_wait:>10,.0f}",
        f"{'mean turnaround (s)':<20} "
        f"{default_report.mean_turnaround:>10,.0f} "
        f"{tasq_report.mean_turnaround:>10,.0f}",
        "",
        "paper (Section 1, qualitative): utilizing fewer tokens reduces",
        "job wait time and improves availability for other jobs.",
    ]
    report.add("Motivation cluster wait times", "\n".join(lines))
