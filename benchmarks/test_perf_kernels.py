"""Performance micro-benchmarks of the core computational kernels.

Unlike the reproduction benchmarks (which regenerate paper tables), these
measure raw throughput of the hot paths with repeated timed rounds —
useful for catching performance regressions:

* AREPAS skyline simulation,
* the discrete-event cluster executor,
* featurization (job vectors + graph samples),
* one boosting round and one NN training epoch,
* GNN forward pass over a padded batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arepas import AREPAS
from repro.features import job_vector, plan_to_graph_sample
from repro.ml.gbm import BoosterParams, GradientBoostingRegressor
from repro.ml.gnn import pad_graph_batch
from repro.models import NNPCCModel, TrainConfig
from repro.scope import ClusterExecutor, decompose_stages
from repro.skyline import Skyline


@pytest.fixture(scope="module")
def big_skyline(rng):
    """An hour-long ragged skyline (3600 seconds, peak ~200)."""
    base = 60 + 50 * np.sin(np.linspace(0, 40, 3600))
    noise = rng.gamma(2.0, 20.0, 3600)
    return Skyline(np.clip(base + noise, 0, None))


def test_perf_arepas_simulate(benchmark, big_skyline):
    simulator = AREPAS()
    result = benchmark(simulator.simulate, big_skyline, 80.0)
    assert result.skyline.area == pytest.approx(big_skyline.area)


def test_perf_cluster_executor(benchmark, train_repo):
    record = max(train_repo.records(), key=lambda r: r.plan.num_operators)
    graph = decompose_stages(record.plan)
    executor = ClusterExecutor()
    result = benchmark(executor.execute, graph, 64)
    assert result.runtime > 0


def test_perf_job_featurization(benchmark, train_repo):
    plans = [r.plan for r in train_repo.records()[:50]]

    def featurize():
        return [job_vector(plan) for plan in plans]

    vectors = benchmark(featurize)
    assert len(vectors) == 50


def test_perf_graph_featurization(benchmark, train_repo):
    plans = [r.plan for r in train_repo.records()[:50]]

    def featurize():
        return [plan_to_graph_sample(plan) for plan in plans]

    samples = benchmark(featurize)
    assert len(samples) == 50


def test_perf_gbm_fit(benchmark, rng):
    features = rng.uniform(0, 10, size=(2000, 52))
    targets = np.exp(rng.normal(4, 1, 2000))
    params = BoosterParams(n_estimators=10, max_depth=6)

    def fit():
        return GradientBoostingRegressor(params, seed=0).fit(
            features, targets
        )

    model = benchmark(fit)
    assert model.num_trees == 10


def test_perf_nn_epoch(benchmark, train_dataset):
    def one_epoch():
        return NNPCCModel(
            train_config=TrainConfig(epochs=1), seed=0
        ).fit(train_dataset)

    model = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert model.num_parameters() > 0


def test_perf_gnn_forward(benchmark, train_dataset):
    from repro.ml.gnn import GNNEncoder

    samples = train_dataset.graph_samples()[:64]
    batch = pad_graph_batch(samples)
    encoder = GNNEncoder(
        batch.node_features.shape[2], (80, 80), np.random.default_rng(0)
    )
    out = benchmark(encoder.encode, batch)
    assert out.shape == (len(samples), 80)
