"""Performance micro-benchmarks of the core computational kernels.

Unlike the reproduction benchmarks (which regenerate paper tables), these
measure raw throughput of the hot paths with repeated timed rounds —
useful for catching performance regressions:

* AREPAS skyline simulation,
* the discrete-event cluster executor,
* featurization (job vectors + graph samples),
* one boosting round and one NN training epoch,
* GNN forward pass over a padded batch,
* the offline pipeline hot paths: ``build_dataset`` end-to-end, the
  vectorized allocation-sweep kernel, and warm-versus-cold cached builds,
* fleet candidate-grid construction over the sweep kernel,
* the compiled inference kernels (``repro.ml.compiled``): flattened-GBM
  and fused-MLP throughput versus the reference paths at batch sizes
  1/64/1024, plus the routed XGBoost-PL scoring path end to end. These
  are marked ``slow`` so the tier-1 job (``-m "not slow"``) skips them;
  the perf-kernels CI job runs them and archives the JSON.

The pipeline benchmarks additionally write their median round times to
``benchmarks/results/BENCH_pipeline.json`` so CI can archive them.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.arepas import AREPAS
from repro.cache import ArtifactCache
from repro.features import job_vector, plan_to_graph_sample
from repro.ml.gbm import BoosterParams, GradientBoostingRegressor
from repro.ml.gnn import pad_graph_batch
from repro.models import NNPCCModel, TrainConfig, build_dataset
from repro.scope import ClusterExecutor, decompose_stages
from repro.scope.repository import JobRepository
from repro.skyline import Skyline

_RESULTS_DIR = Path(__file__).parent / "results"
_PIPELINE: dict[str, float | int] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_pipeline_json():
    """Flush collected pipeline medians to BENCH_pipeline.json."""
    yield
    if _PIPELINE:
        _RESULTS_DIR.mkdir(exist_ok=True)
        out = _RESULTS_DIR / "BENCH_pipeline.json"
        out.write_text(json.dumps(_PIPELINE, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def pipeline_repo(train_repo):
    """A ~120-job slice of the training workload for end-to-end rounds."""
    subset = JobRepository()
    for record in train_repo.records()[:120]:
        subset.add(record)
    return subset


@pytest.fixture(scope="module")
def big_skyline(rng):
    """An hour-long ragged skyline (3600 seconds, peak ~200)."""
    base = 60 + 50 * np.sin(np.linspace(0, 40, 3600))
    noise = rng.gamma(2.0, 20.0, 3600)
    return Skyline(np.clip(base + noise, 0, None))


def test_perf_arepas_simulate(benchmark, big_skyline):
    simulator = AREPAS()
    result = benchmark(simulator.simulate, big_skyline, 80.0)
    assert result.skyline.area == pytest.approx(big_skyline.area)


def test_perf_cluster_executor(benchmark, train_repo):
    record = max(train_repo.records(), key=lambda r: r.plan.num_operators)
    graph = decompose_stages(record.plan)
    executor = ClusterExecutor()
    result = benchmark(executor.execute, graph, 64)
    assert result.runtime > 0


def test_perf_job_featurization(benchmark, train_repo):
    plans = [r.plan for r in train_repo.records()[:50]]

    def featurize():
        return [job_vector(plan) for plan in plans]

    vectors = benchmark(featurize)
    assert len(vectors) == 50


def test_perf_graph_featurization(benchmark, train_repo):
    plans = [r.plan for r in train_repo.records()[:50]]

    def featurize():
        return [plan_to_graph_sample(plan) for plan in plans]

    samples = benchmark(featurize)
    assert len(samples) == 50


def test_perf_gbm_fit(benchmark, rng):
    features = rng.uniform(0, 10, size=(2000, 52))
    targets = np.exp(rng.normal(4, 1, 2000))
    params = BoosterParams(n_estimators=10, max_depth=6)

    def fit():
        return GradientBoostingRegressor(params, seed=0).fit(
            features, targets
        )

    model = benchmark(fit)
    assert model.num_trees == 10


def test_perf_nn_epoch(benchmark, train_dataset):
    def one_epoch():
        return NNPCCModel(
            train_config=TrainConfig(epochs=1), seed=0
        ).fit(train_dataset)

    model = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert model.num_parameters() > 0


def test_perf_gnn_forward(benchmark, train_dataset):
    from repro.ml.gnn import GNNEncoder

    samples = train_dataset.graph_samples()[:64]
    batch = pad_graph_batch(samples)
    encoder = GNNEncoder(
        batch.node_features.shape[2], (80, 80), np.random.default_rng(0)
    )
    out = benchmark(encoder.encode, batch)
    assert out.shape == (len(samples), 80)


# ----------------------------------------------------------------------
# offline pipeline benchmarks (results land in BENCH_pipeline.json)
# ----------------------------------------------------------------------
def test_perf_build_dataset_e2e(benchmark, pipeline_repo):
    """Uncached featurize-and-fit over the whole slice."""
    dataset = benchmark.pedantic(
        build_dataset, args=(pipeline_repo,), rounds=5, iterations=1
    )
    assert len(dataset) > 0
    _PIPELINE["build_dataset_e2e_s"] = benchmark.stats.stats.median
    _PIPELINE["build_dataset_jobs"] = len(pipeline_repo)


def test_perf_vectorized_sweep(benchmark, big_skyline):
    """One kernel pass over a 64-point grid vs. the per-allocation loop."""
    sim = AREPAS()
    grid = np.geomspace(0.05, 1.0, 64) * big_skyline.peak

    fast = benchmark(sim.sweep_runtimes, big_skyline, grid)

    start = time.perf_counter()
    slow = [sim.simulate(big_skyline, float(a)).simulated_runtime for a in grid]
    loop_s = time.perf_counter() - start

    assert fast.tolist() == slow
    kernel_s = benchmark.stats.stats.median
    _PIPELINE["sweep_kernel_s"] = kernel_s
    _PIPELINE["sweep_loop_s"] = loop_s
    _PIPELINE["sweep_speedup"] = loop_s / kernel_s
    assert loop_s > kernel_s


def test_perf_fleet_candidate_grid(benchmark, big_skyline):
    """Skyline-backed candidate grids ride the sweep kernel: one
    prefix-sum pass over the whole grid must beat simulating each
    allocation separately."""
    from repro.fleet import skyline_grid

    lo, hi = 4, int(big_skyline.peak)
    grid = benchmark(skyline_grid, big_skyline, lo, hi, num_points=64)

    sim = AREPAS()
    start = time.perf_counter()
    slow = [
        sim.simulate(big_skyline, float(tokens)).simulated_runtime
        for tokens in grid.tokens
    ]
    loop_s = time.perf_counter() - start

    assert len(slow) == len(grid.tokens)
    assert np.all(np.diff(grid.runtimes) <= 1e-12)  # monotone envelope
    kernel_s = benchmark.stats.stats.median
    _PIPELINE["fleet_grid_kernel_s"] = kernel_s
    _PIPELINE["fleet_grid_loop_s"] = loop_s
    _PIPELINE["fleet_grid_speedup"] = loop_s / kernel_s
    assert loop_s > kernel_s


# ----------------------------------------------------------------------
# compiled inference kernels (repro.ml.compiled)
# ----------------------------------------------------------------------
_SCORING_BATCHES = (1, 64, 1024)


def _median_seconds(fn, rounds: int) -> float:
    fn()  # warm-up: lazy kernel compile + buffer allocation
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


@pytest.fixture(scope="module")
def scoring_booster(rng):
    features = rng.uniform(0, 10, size=(2000, 52))
    targets = np.exp(rng.normal(4, 1, 2000))
    params = BoosterParams(n_estimators=150, max_depth=6)
    model = GradientBoostingRegressor(params, seed=0).fit(features, targets)
    return model, features


@pytest.mark.slow
def test_perf_gbm_compiled_vs_reference(scoring_booster):
    """Flattened-forest traversal vs the per-tree python loop."""
    model, features = scoring_booster
    for batch_size in _SCORING_BATCHES:
        batch = features[:batch_size]
        compiled_s = _median_seconds(lambda: model.predict(batch), rounds=9)
        reference_s = _median_seconds(
            lambda: model.predict_reference(batch), rounds=9
        )
        _PIPELINE[f"gbm_forest_compiled_b{batch_size}_s"] = compiled_s
        _PIPELINE[f"gbm_forest_reference_b{batch_size}_s"] = reference_s
        _PIPELINE[f"gbm_forest_speedup_b{batch_size}"] = (
            reference_s / compiled_s
        )
        assert np.array_equal(
            model.predict(batch), model.predict_reference(batch)
        )
        if batch_size >= 64:
            assert compiled_s < reference_s


@pytest.mark.slow
def test_perf_nn_fused_vs_reference(rng):
    """Fused float32 forward pass vs the autograd tensor stack."""
    from repro.ml.autograd import Tensor
    from repro.ml.compiled import compile_network
    from repro.ml.nn import Activation, Dense, PCCParameterHead, Sequential

    network = Sequential(
        Dense(52, 32, rng),
        Activation("relu"),
        Dense(32, 16, rng),
        Activation("relu"),
        PCCParameterHead(16, rng),
    )
    fused = compile_network(network)
    features = rng.normal(0, 1, size=(max(_SCORING_BATCHES), 52))
    for batch_size in _SCORING_BATCHES:
        batch = features[:batch_size]
        fused_s = _median_seconds(lambda: fused.predict(batch), rounds=9)
        reference_s = _median_seconds(
            lambda: network(Tensor(batch)).numpy(), rounds=9
        )
        _PIPELINE[f"nn_fused_b{batch_size}_s"] = fused_s
        _PIPELINE[f"nn_reference_b{batch_size}_s"] = reference_s
        _PIPELINE[f"nn_speedup_b{batch_size}"] = reference_s / fused_s
        if batch_size >= 64:
            assert fused_s < reference_s


@pytest.mark.slow
def test_perf_scoring_path_compiled_vs_reference(train_dataset):
    """The routed scoring path end to end at batch 1024.

    ``XGBoostRuntimeModel.predict_curves`` is what every XGBoost-PL
    scoring call fans out to. Reference = the pre-kernel semantics (one
    booster call per example, per-tree python traversal); compiled = one
    batched booster call through the flattened forest. Bit-identical by
    construction, and required to be at least 5x faster.
    """
    from itertools import cycle, islice

    from repro.ml import compiled as compiled_kernels
    from repro.models import XGBoostRuntimeModel
    from repro.models.dataset import PCCDataset
    from repro.models.xgboost_models import reference_window

    model = XGBoostRuntimeModel(
        BoosterParams(n_estimators=150, max_depth=6)
    ).fit(train_dataset)

    batch_size = 1024
    scoring = PCCDataset()
    scoring.examples = list(
        islice(cycle(train_dataset.examples), batch_size)
    )
    grids = [
        reference_window(example.observed_tokens)
        for example in scoring.examples
    ]

    compiled_s = _median_seconds(
        lambda: model.predict_curves(scoring, grids), rounds=5
    )

    def reference() -> list[np.ndarray]:
        with compiled_kernels.override(False):
            return model.predict_curves(scoring, grids)

    reference_s = _median_seconds(reference, rounds=3)

    fast = model.predict_curves(scoring, grids)
    slow = reference()
    assert all(np.array_equal(f, s) for f, s in zip(fast, slow))

    speedup = reference_s / compiled_s
    _PIPELINE["scoring_compiled_s"] = compiled_s
    _PIPELINE["scoring_reference_s"] = reference_s
    _PIPELINE["scoring_batch"] = batch_size
    _PIPELINE["scoring_speedup"] = speedup
    assert speedup >= 5.0


def test_perf_cache_hit_build(pipeline_repo, tmp_path):
    """Warm content-addressed rebuilds must be >=5x faster than cold."""
    start = time.perf_counter()
    cold_dataset = build_dataset(pipeline_repo, cache=ArtifactCache(tmp_path))
    cold_s = time.perf_counter() - start

    warm_times = []
    for _ in range(5):
        cache = ArtifactCache(tmp_path)
        start = time.perf_counter()
        warm_dataset = build_dataset(pipeline_repo, cache=cache)
        warm_times.append(time.perf_counter() - start)
    warm_s = statistics.median(warm_times)

    assert cache.misses == 0 and cache.hits > 0
    assert len(warm_dataset) == len(cold_dataset)
    speedup = cold_s / warm_s
    _PIPELINE["cache_cold_build_s"] = cold_s
    _PIPELINE["cache_warm_build_s"] = warm_s
    _PIPELINE["cache_warm_speedup"] = speedup
    assert speedup >= 5.0
