"""Figure 2: potential token-request reduction in SCOPE jobs.

Paper numbers (production workload): at no performance loss, 49% of jobs
cannot reduce at all and 20% can drop more than half their tokens; at a
5-10% budget, 92-96% of jobs can reduce, with 24-29% halvable. We check
the same qualitative structure on the synthetic workload.
"""

from __future__ import annotations

from repro.tasq import REDUCTION_BUCKETS, token_reduction_report

PAPER = {
    0.0: {"0%": 0.49, "0-25%": 0.18, "25-50%": 0.13, ">50%": 0.20},
    0.05: {"0%": 0.08, "0-25%": 0.38, "25-50%": 0.30, ">50%": 0.24},
    0.10: {"0%": 0.04, "0-25%": 0.29, "25-50%": 0.38, ">50%": 0.29},
}


def test_fig02_token_request_reduction(benchmark, train_repo, report):
    budgets = (0.0, 0.05, 0.10)

    def compute():
        return {b: token_reduction_report(train_repo, b) for b in budgets}

    reports = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Shape checks mirroring the paper's claims:
    # 1. a sizeable share of jobs is reducible even at zero budget,
    strict = reports[0.0]
    assert strict.fraction_reducible() > 0.2
    # 2. allowing 5-10% slowdown makes the large majority reducible,
    assert reports[0.05].fraction_reducible() > 0.8
    assert reports[0.10].fraction_reducible() >= reports[0.05].fraction_reducible()
    # 3. the >50% bucket grows with the budget.
    assert (
        reports[0.10].fraction_halvable()
        >= reports[0.05].fraction_halvable()
        >= strict.fraction_halvable()
    )

    labels = [label for label, _, _ in REDUCTION_BUCKETS]
    lines = [
        f"{'scenario':<26}" + "".join(f"{label:>9}" for label in labels),
        "-" * 62,
    ]
    names = {0.0: "default perf", 0.05: "95% default perf",
             0.10: "90% default perf"}
    for budget in budgets:
        measured = reports[budget].bucket_fractions
        lines.append(
            f"{names[budget]:<26}"
            + "".join(f"{measured[label]:>8.0%} " for label in labels)
        )
        lines.append(
            f"{'  (paper)':<26}"
            + "".join(f"{PAPER[budget][label]:>8.0%} " for label in labels)
        )
    report.add("Figure 2 token reduction", "\n".join(lines))
