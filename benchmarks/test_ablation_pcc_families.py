"""Ablation (Section 2.3 / 4.1): the choice of PCC function family.

The paper models the PCC as a pure power law. We fit three candidate
families to AREPAS sweeps of the benchmark jobs — power law, Amdahl's law
(serial + parallel/A), and a shifted power law with a floor — and compare
fit quality. The result contextualises the paper's choice: two parameters
(power law) already fit sweeps well, the Amdahl form is competitive where
jobs have hard serial floors, and the three-parameter shifted form only
buys a small additional margin.
"""

from __future__ import annotations

import numpy as np

from repro.arepas import default_token_grid, sweep_token_grid
from repro.pcc import fit_family

FAMILIES = ("power_law", "amdahl", "shifted")


def _fit_errors(records):
    errors = {family: [] for family in FAMILIES}
    for record in records:
        if record.requested_tokens < 4:
            continue
        grid = default_token_grid(record.requested_tokens, num_points=8)
        observations = sweep_token_grid(
            record.skyline, grid, observed_tokens=record.requested_tokens
        )
        tokens = np.array([o.tokens for o in observations])
        runtimes = np.array([o.runtime for o in observations])
        for family in FAMILIES:
            fitted = fit_family(family, tokens, runtimes)
            predicted = np.asarray(fitted.runtime(tokens), dtype=float)
            ape = np.abs(predicted - runtimes) / runtimes * 100.0
            errors[family].append(float(np.median(ape)))
    return {family: np.array(values) for family, values in errors.items()}


def test_ablation_pcc_family_choice(benchmark, train_repo, report):
    records = train_repo.records()[:120]
    errors = benchmark.pedantic(
        _fit_errors, args=(records,), rounds=1, iterations=1
    )

    medians = {f: float(np.median(v)) for f, v in errors.items()}

    # The paper's two-parameter power law must already fit sweeps well...
    assert medians["power_law"] < 15.0
    # ...and the richer three-parameter family can only do better.
    assert medians["shifted"] <= medians["power_law"] + 1e-9

    lines = [
        f"{'family':<12} {'params':>7} {'median fit APE':>15} {'p90':>7}",
        "-" * 45,
    ]
    parameter_counts = {"power_law": 2, "amdahl": 2, "shifted": 3}
    for family in FAMILIES:
        values = errors[family]
        lines.append(
            f"{family:<12} {parameter_counts[family]:>7} "
            f"{np.median(values):>14.1f}% "
            f"{np.percentile(values, 90):>6.1f}%"
        )
    lines.append("")
    lines.append(
        "paper (Sections 2.3/4.1): the PCC's functional form is a"
    )
    lines.append(
        "platform-specific choice; two power-law parameters suffice for"
    )
    lines.append("SCOPE-like sweeps, which is what TASQ's models predict.")
    report.add("Ablation PCC families", "\n".join(lines))
