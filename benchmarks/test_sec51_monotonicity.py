"""Section 5.1: validating the monotonicity assumption on flighted jobs.

Paper: with a 10% tolerance for environmental noise, 96% of uniquely
flighted jobs satisfy run-time-non-increasing-in-tokens; the violators'
average slowdown was 14%. We re-derive the statistic from raw (unfiltered)
flights of the benchmark set.
"""

from __future__ import annotations

import numpy as np

from repro.flighting import FlightHarness
from repro.selection import FlightObservation, violates_monotonicity


def test_sec51_monotonicity_validation(benchmark, test_repo, report):
    records = [
        r for r in test_repo.records() if 10 <= r.requested_tokens <= 600
    ][:30]
    harness = FlightHarness(seed=11)

    def flight_all():
        return harness.flight_workload(records)

    flights_by_job = benchmark.pedantic(flight_all, rounds=1, iterations=1)

    violations = 0
    slowdowns = []
    for job_id, flights in flights_by_job.items():
        observations = []
        by_tokens: dict[int, list[float]] = {}
        for flight in flights:
            by_tokens.setdefault(flight.tokens, []).append(flight.runtime)
        for tokens, runtimes in by_tokens.items():
            observations.append(
                FlightObservation(
                    job_id=job_id, tokens=float(tokens),
                    runtime=float(np.mean(runtimes)),
                    peak_usage=1.0,
                )
            )
        if violates_monotonicity(observations, tolerance=0.10):
            violations += 1
            means = sorted(
                (o.tokens, o.runtime) for o in observations
            )
            runtimes = np.array([r for _, r in means])
            slowdowns.append(runtimes.max() / runtimes.min() - 1.0)

    fraction_monotone = 1.0 - violations / len(flights_by_job)
    # Paper: 96% monotone at 10% tolerance. With only 30 sampled jobs and
    # injected anomalies, allow a few extra violations beyond the paper's
    # rate — the claim is "the large majority is monotone".
    assert fraction_monotone >= 0.7

    lines = [
        f"jobs flighted: {len(flights_by_job)}",
        f"monotone (10% tolerance): {fraction_monotone:.0%} (paper: 96%)",
    ]
    if slowdowns:
        lines.append(
            f"violators' mean max-over-min slowdown: "
            f"{np.mean(slowdowns):.0%} (paper: 14%)"
        )
    report.add("Section 5.1 monotonicity", "\n".join(lines))
