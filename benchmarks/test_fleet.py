"""Fleet benchmark: global allocation vs. per-job TASQ and defaults.

The cluster-level extension of the Section 1 motivation study: instead
of right-sizing each job in isolation, a :class:`GlobalAllocator`
divides the shared token pool across concurrent jobs from their
predicted PCCs. One seeded arrival stream is replayed under every
regime — user defaults, clairvoyant peak, per-job TASQ, and each
fleet policy — and the cluster-wide makespan / wait / token-hours are
compared.

Unlike the reproduction benchmarks, this study runs on its own
fixed-size workload (independent of ``REPRO_BENCH_SCALE``) so its
acceptance assertions are stable across CI scales. Results land in
``benchmarks/results/BENCH_fleet.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fleet import POLICY_NAMES, compare_policies, score_usable
from repro.models import XGBoostPL, build_dataset
from repro.scope import WorkloadGenerator, run_workload
from repro.tasq import ScoringPipeline

_RESULTS_DIR = Path(__file__).parent / "results"

#: Fixed study shape — deliberately NOT scaled by REPRO_BENCH_SCALE.
_JOBS = 150
_SEED = 7
_ARRIVAL_MEAN_S = 15.0


@pytest.fixture(scope="module")
def fleet_records():
    """A self-contained 150-job workload plus usable recommendations."""
    generator = WorkloadGenerator(seed=2022)
    repository = run_workload(generator.generate(_JOBS), seed=0)
    model = XGBoostPL(seed=0).fit(build_dataset(repository))
    scorer = ScoringPipeline(
        model, improvement_threshold=10.0, max_slowdown=0.10
    )
    records = [
        r
        for r in repository.records()
        if 2 <= r.requested_tokens <= 600
    ]
    return score_usable(scorer, records)


def test_fleet_policies_beat_baselines(benchmark, fleet_records, report):
    records, recommendations = fleet_records
    assert len(records) >= 100  # the study must not silently shrink

    comparison = benchmark.pedantic(
        compare_policies,
        args=(records, recommendations),
        kwargs={
            "policies": POLICY_NAMES,
            "arrival_mean_s": _ARRIVAL_MEAN_S,
            "seed": _SEED,
        },
        rounds=1,
        iterations=1,
    )

    _RESULTS_DIR.mkdir(exist_ok=True)
    out = _RESULTS_DIR / "BENCH_fleet.json"
    out.write_text(
        json.dumps(comparison.to_json(), indent=2, sort_keys=True) + "\n"
    )

    report.add(
        "Fleet global allocation",
        f"{comparison.jobs} jobs, cluster cap {comparison.capacity} "
        f"tokens, seed {comparison.seed}\n" + comparison.render(),
    )

    default = comparison.get("default")
    peak = comparison.get("peak")
    tasq = comparison.get("tasq")
    fleet = [comparison.get(f"fleet/{p}") for p in POLICY_NAMES]

    # Acceptance: at least one global policy beats BOTH the Default and
    # Peak baselines on makespan AND mean wait ...
    winners = [
        o
        for o in fleet
        if o.makespan < min(default.makespan, peak.makespan)
        and o.mean_wait < min(default.mean_wait, peak.mean_wait)
    ]
    assert winners, "no fleet policy beat Default and Peak"

    # ... and beats per-job TASQ on at least one of the two.
    assert any(
        o.makespan < tasq.makespan or o.mean_wait < tasq.mean_wait
        for o in winners
    ), "no winning fleet policy improved on per-job TASQ"

    # Sanity: the pool is never over-committed in any regime.
    for outcome in comparison.outcomes:
        assert outcome.utilization <= 1.0 + 1e-9
