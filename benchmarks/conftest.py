"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down synthetic workload (see DESIGN.md section 4). Expensive
artifacts — the executed workloads, featurized datasets, fitted models,
and the flighted validation set — are built once per session.

Each benchmark renders a paper-vs-measured table through the ``report``
fixture; the tables are printed in the pytest terminal summary and written
to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.flighting import FlightHarness, build_flighted_dataset
from repro.ml.losses import LF1, LF2, LF3
from repro.models import (
    GNNPCCModel,
    NNPCCModel,
    TrainConfig,
    XGBoostPL,
    XGBoostSS,
    build_dataset,
)
from repro.scope import WorkloadGenerator, run_workload
from repro.selection import select_flighting_jobs

RESULTS_DIR = Path(__file__).parent / "results"
_REPORTS: list[tuple[str, str]] = []


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes used by the benchmarks (env-overridable).

    The paper uses 85K training and 78K test jobs; pure-numpy training at
    that scale is infeasible here, so the defaults reproduce the *shape*
    of every result at roughly 1/150th scale. Set ``REPRO_BENCH_SCALE``
    to a multiplier (e.g. ``2``) to scale up.
    """

    train_jobs: int = 500
    test_jobs: int = 200
    flight_jobs: int = 40
    nn_epochs: int = 60
    gnn_epochs: int = 12


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    base = BenchScale()
    return BenchScale(
        train_jobs=int(base.train_jobs * multiplier),
        test_jobs=int(base.test_jobs * multiplier),
        flight_jobs=int(base.flight_jobs * multiplier),
        nn_epochs=base.nn_epochs,
        gnn_epochs=base.gnn_epochs,
    )


# ----------------------------------------------------------------------
# workloads and datasets
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def generator() -> WorkloadGenerator:
    return WorkloadGenerator(seed=2022)


@pytest.fixture(scope="session")
def train_repo(generator, scale):
    return run_workload(generator.generate(scale.train_jobs), seed=0)


@pytest.fixture(scope="session")
def test_repo(generator, train_repo, scale):
    """Next-day jobs from the same population (the 78K-job analogue).

    Depends on ``train_repo`` so the shared generator's random stream is
    always consumed in the same order regardless of which benchmark runs
    first — otherwise workload contents would vary with collection order.
    """
    del train_repo  # dependency exists only to pin generation order
    return run_workload(
        generator.generate(scale.test_jobs, start_day=1), seed=1
    )


@pytest.fixture(scope="session")
def train_dataset(train_repo):
    return build_dataset(train_repo)


@pytest.fixture(scope="session")
def test_dataset(test_repo):
    return build_dataset(test_repo)


@pytest.fixture(scope="session")
def flighted(train_repo, test_repo, scale):
    """Flighted validation set built with the Section 5.1 methodology."""
    population = train_repo.records()
    pool = [
        r for r in test_repo.records() if 10 <= r.requested_tokens <= 600
    ]
    selection = select_flighting_jobs(
        population, pool, sample_size=min(scale.flight_jobs, len(pool)),
        n_clusters=8, seed=3,
    )
    selected = [pool[i] for i in selection.selected_indices]
    harness = FlightHarness(seed=4)
    return build_flighted_dataset(selected, harness)


# ----------------------------------------------------------------------
# fitted models
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def xgb_ss(train_dataset):
    return XGBoostSS(seed=0).fit(train_dataset)


@pytest.fixture(scope="session")
def xgb_pl(train_dataset):
    return XGBoostPL(seed=0).fit(train_dataset)


def _nn(train_dataset, loss, epochs, xgb=None, seed=0):
    return NNPCCModel(
        loss=loss,
        train_config=TrainConfig(epochs=epochs),
        xgb_model=xgb,
        seed=seed,
    ).fit(train_dataset)


def _gnn(train_dataset, loss, epochs, xgb=None, seed=0):
    return GNNPCCModel(
        loss=loss,
        train_config=TrainConfig(epochs=epochs, batch_size=32,
                                 learning_rate=2e-3),
        xgb_model=xgb,
        seed=seed,
    ).fit(train_dataset)


@pytest.fixture(scope="session")
def nn_by_loss(train_dataset, xgb_ss, scale):
    """NN trained under each of LF1/LF2/LF3 (Tables 4-6)."""
    return {
        "LF1": _nn(train_dataset, LF1(), scale.nn_epochs),
        "LF2": _nn(train_dataset, LF2(), scale.nn_epochs),
        "LF3": _nn(train_dataset, LF3(), scale.nn_epochs, xgb=xgb_ss),
    }


@pytest.fixture(scope="session")
def gnn_by_loss(train_dataset, xgb_ss, scale):
    """GNN trained under each of LF1/LF2/LF3 (Tables 4-6)."""
    return {
        "LF1": _gnn(train_dataset, LF1(), scale.gnn_epochs),
        "LF2": _gnn(train_dataset, LF2(), scale.gnn_epochs),
        "LF3": _gnn(train_dataset, LF3(), scale.gnn_epochs, xgb=xgb_ss),
    }


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
class Reporter:
    """Collects rendered paper-vs-measured tables."""

    def add(self, title: str, text: str) -> None:
        _REPORTS.append((title, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = (
            title.lower().replace(" ", "_").replace("/", "-")
            .replace("(", "").replace(")", "")
        )
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction tables")
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def fmt_pct(value: float) -> str:
    return f"{value * 100:.0f}%"


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
