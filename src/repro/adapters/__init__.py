"""Platform adaptations of the TASQ methodology (Section 2.3)."""

from repro.adapters.spark import (
    ExecutorConfig,
    ExecutorRecommendation,
    SparkScoringAdapter,
    to_executor_repository,
)

__all__ = [
    "ExecutorConfig",
    "to_executor_repository",
    "ExecutorRecommendation",
    "SparkScoringAdapter",
]
