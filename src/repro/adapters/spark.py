"""Spark SQL adaptation: executors instead of tokens (Section 2.3).

The paper's companion work (AutoExecutor, cited as [36]) applies the TASQ
methodology to Spark SQL, where the resource unit is the *executor* — a
coarse container bundling several cores — rather than SCOPE's fine-grained
token. Section 2.3 separates what is general (the PCC concept, simulation
for augmentation, learned parameter prediction) from what is
platform-specific (the resource unit, its granularity, the candidate
allocation set).

This module is that platform-specific layer:

* :class:`ExecutorConfig` — how many token-equivalents one executor
  carries and which executor counts the cluster manager will actually
  grant (Spark deployments typically allow a small discrete menu),
* :func:`to_executor_repository` — re-expresses token telemetry in
  executor units so the *unchanged* TASQ pipeline trains on it,
* :class:`SparkScoringAdapter` — wraps a fitted scoring pipeline and
  snaps its recommendation to the platform's allowed executor counts,
  reporting cost in executor-hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PipelineError
from repro.pcc.curve import PowerLawPCC
from repro.scope.plan import QueryPlan
from repro.scope.repository import JobRepository, TelemetryRecord
from repro.skyline.skyline import Skyline
from repro.tasq.pipeline import ScoringPipeline

__all__ = [
    "ExecutorConfig",
    "to_executor_repository",
    "ExecutorRecommendation",
    "SparkScoringAdapter",
]


@dataclass(frozen=True)
class ExecutorConfig:
    """Platform constants of the Spark-like deployment."""

    #: Token-equivalents (cores) bundled into one executor.
    tokens_per_executor: int = 4
    #: Executor counts the cluster manager will grant, ascending.
    allowed_executor_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64)

    def __post_init__(self) -> None:
        if self.tokens_per_executor < 1:
            raise PipelineError("tokens_per_executor must be positive")
        counts = self.allowed_executor_counts
        if not counts or any(c < 1 for c in counts):
            raise PipelineError("allowed executor counts must be positive")
        if list(counts) != sorted(set(counts)):
            raise PipelineError(
                "allowed executor counts must be strictly ascending"
            )

    def executors_for_tokens(self, tokens: float) -> int:
        """Smallest executor count covering a token amount."""
        return max(1, int(np.ceil(tokens / self.tokens_per_executor)))


def to_executor_repository(
    repository: JobRepository, config: ExecutorConfig | None = None
) -> JobRepository:
    """Re-express token telemetry in executor units.

    Skyline usage is divided by ``tokens_per_executor`` (an executor
    half-busy in token terms is half an executor of usage) and the
    requested allocation becomes the covering executor count. The
    resulting repository feeds the standard TASQ pipeline unchanged —
    the §2.3 point that only the unit, not the method, is
    platform-specific.
    """
    config = config or ExecutorConfig()
    converted = JobRepository()
    for record in repository:
        executors = config.executors_for_tokens(record.requested_tokens)
        converted.add(
            TelemetryRecord(
                job_id=record.job_id,
                plan=record.plan,
                requested_tokens=executors,
                skyline=Skyline(
                    record.skyline.usage / config.tokens_per_executor
                ),
                submit_day=record.submit_day,
                recurring=record.recurring,
            )
        )
    return converted


@dataclass(frozen=True)
class ExecutorRecommendation:
    """A Spark-flavoured recommendation for one query."""

    job_id: str
    pcc: PowerLawPCC
    requested_executors: int
    recommended_executors: int
    predicted_runtime: float
    executor_hours: float

    @property
    def executor_savings(self) -> float:
        return 1.0 - self.recommended_executors / self.requested_executors


@dataclass
class SparkScoringAdapter:
    """Snap TASQ recommendations onto the allowed executor menu.

    Wraps a :class:`~repro.tasq.pipeline.ScoringPipeline` whose model was
    trained on an executor-unit repository (see
    :func:`to_executor_repository`). The continuous optimal allocation is
    rounded *up* to the next allowed executor count (rounding down would
    violate the SLO the pipeline already enforced).
    """

    scorer: ScoringPipeline
    config: ExecutorConfig = field(default_factory=ExecutorConfig)

    def recommend(
        self, plan: QueryPlan, requested_executors: int
    ) -> ExecutorRecommendation:
        if requested_executors < 1:
            raise PipelineError("requested executor count must be positive")
        recommendation = self.scorer.score(plan, requested_executors)
        snapped = self._snap(recommendation.optimal_tokens,
                             requested_executors)
        runtime = float(recommendation.pcc.runtime(snapped))
        return ExecutorRecommendation(
            job_id=plan.job_id,
            pcc=recommendation.pcc,
            requested_executors=requested_executors,
            recommended_executors=snapped,
            predicted_runtime=runtime,
            executor_hours=snapped * runtime / 3600.0,
        )

    def _snap(self, optimal: int, requested: int) -> int:
        """Next allowed count at or above the optimum, capped at request."""
        menu = [c for c in self.config.allowed_executor_counts
                if c <= requested]
        if not menu:
            # Even the smallest menu entry exceeds the request: grant the
            # request itself (the manager always honours explicit asks).
            return requested
        for count in menu:
            if count >= optimal:
                return count
        return menu[-1]
