"""Flight re-execution harness (Sections 5.1-5.2).

A *flight* is one run of a job with a specific token allocation. The paper
re-executes selected production jobs at 100/80/60/20% of their original
token count, three replicas each, using SCOPE's job-flighting capability.
Here the cluster simulator plays that role; each flight gets a fresh rng
stream so replicas differ, and a small anomaly rate occasionally produces
errant runs (over-usage or an unexplained slowdown) so that the Section
5.1 filters have real work to do.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import FlightingError
from repro.parallel import pmap
from repro.scope.execution import ClusterExecutor
from repro.scope.repository import TelemetryRecord
from repro.scope.stages import decompose_stages
from repro.skyline.skyline import Skyline

__all__ = ["Flight", "FlightHarness"]


@dataclass(frozen=True)
class Flight:
    """One executed flight of a job."""

    job_id: str
    tokens: int
    replica: int
    skyline: Skyline

    @property
    def runtime(self) -> int:
        return self.skyline.duration

    @property
    def peak_usage(self) -> float:
        return self.skyline.peak

    @property
    def area(self) -> float:
        return self.skyline.area


class FlightHarness:
    """Re-executes telemetry records at alternative token counts."""

    def __init__(
        self,
        executor: ClusterExecutor | None = None,
        token_fractions: tuple[float, ...] = (1.0, 0.8, 0.6, 0.2),
        replicas: int = 3,
        anomaly_rate: float = 0.02,
        seed: int = 0,
    ) -> None:
        if replicas < 1:
            raise FlightingError("need at least one replica per flight")
        if not 0 <= anomaly_rate < 0.5:
            raise FlightingError("anomaly_rate must be in [0, 0.5)")
        if not token_fractions or any(f <= 0 or f > 1.0 for f in token_fractions):
            raise FlightingError("token fractions must be in (0, 1]")
        # Calibrated so the flighted population reproduces the paper's
        # Section 5.1/5.2 statistics: ~90-96% of jobs monotone within the
        # 10% tolerance, ~half of execution pairs conserving area within
        # 10%, and an AREPAS median error near 9%.
        self.executor = executor or ClusterExecutor(
            noise_scale=0.06,
            straggler_rate=0.01,
            straggler_factor=1.8,
            work_noise=0.08,
        )
        self.token_fractions = token_fractions
        self.replicas = replicas
        self.anomaly_rate = anomaly_rate
        self._seed = seed

    # ------------------------------------------------------------------
    def flight_job(self, record: TelemetryRecord) -> list[Flight]:
        """All flights (fractions x replicas) for one job."""
        graph = decompose_stages(record.plan)
        # crc32 rather than hash(): Python string hashing is randomized
        # per process, which would make flights irreproducible across
        # runs and across pool workers; crc32 is stable everywhere.
        root = np.random.default_rng(
            (self._seed, zlib.crc32(record.job_id.encode("utf-8")))
        )
        flights = []
        for fraction in self.token_fractions:
            tokens = max(1, int(round(fraction * record.requested_tokens)))
            for replica in range(self.replicas):
                rng = np.random.default_rng(root.integers(0, 2**63))
                result = self.executor.execute(graph, tokens, rng=rng)
                skyline = self._maybe_inject_anomaly(result.skyline, tokens, rng)
                flights.append(
                    Flight(
                        job_id=record.job_id,
                        tokens=tokens,
                        replica=replica,
                        skyline=skyline,
                    )
                )
        return flights

    def flight_workload(
        self, records: list[TelemetryRecord], workers: int = 1
    ) -> dict[str, list[Flight]]:
        """Flights for every record, grouped by job id.

        Each job's flights derive from its own rng root (seed + job-id
        hash), so ``workers > 1`` fans jobs out over a process pool with
        output identical to the serial sweep.
        """
        if not records:
            raise FlightingError("no records to flight")
        all_flights = pmap(self.flight_job, records, workers=workers)
        return {
            record.job_id: flights
            for record, flights in zip(records, all_flights)
        }

    # ------------------------------------------------------------------
    def _maybe_inject_anomaly(
        self, skyline: Skyline, tokens: int, rng: np.random.Generator
    ) -> Skyline:
        """Occasionally corrupt a flight the way real clusters do.

        Two anomaly flavours, each taking half of the anomaly budget:
        *errant usage* (the job transiently uses more tokens than
        allocated — a real SCOPE failure mode the filters must discard)
        and *unexplained slowdown* (a long straggler tail appended to the
        run, inflating both run time and area).
        """
        roll = rng.random()
        if roll >= self.anomaly_rate:
            return skyline
        if roll < self.anomaly_rate / 2:
            burst = skyline.usage.copy()
            start = rng.integers(0, max(1, len(burst) - 1))
            end = min(len(burst), start + max(1, len(burst) // 10))
            burst[start:end] = tokens * rng.uniform(1.1, 1.4)
            return Skyline(burst)
        tail_length = max(1, int(skyline.duration * rng.uniform(0.3, 0.8)))
        tail = np.full(tail_length, max(1.0, skyline.mean_usage * 0.5))
        return Skyline(np.concatenate([skyline.usage, tail]))
