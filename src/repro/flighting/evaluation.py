"""Model accuracy on flighted ground truth and workload-level savings.

Implements the Section 5.4 analyses:

* **Table 8** — the three model metrics evaluated against flighted ground
  truth at *multiple* token counts per job (not AREPAS proxies).
* **W1/W2 workloads** — token savings versus run-time slowdown trade-offs
  against always-use-the-largest-allocation baselines, plus the
  model-predicted slowdown for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FlightingError
from repro.flighting.dataset import FlightedDataset
from repro.ml.metrics import median_absolute_percentage_error
from repro.models.base import PCCPredictor
from repro.models.evaluation import ModelEvaluation
from repro.models.xgboost_models import reference_window
from repro.ml.metrics import fraction_non_increasing

__all__ = ["evaluate_on_flighted", "WorkloadSavings", "workload_savings"]


def evaluate_on_flighted(
    model: PCCPredictor, flighted: FlightedDataset
) -> ModelEvaluation:
    """Table 8 row: model metrics against flighted ground truth."""
    dataset = flighted.to_pcc_dataset()
    example_idx, tokens, true_runtimes = flighted.evaluation_pairs()

    # Point prediction at every flighted token count of every job.
    grids = [
        tokens[example_idx == i] for i in range(len(dataset))
    ]
    curves = model.predict_curves(dataset, grids)
    predicted = np.concatenate(curves)
    runtime_ape = median_absolute_percentage_error(true_runtimes, predicted)

    predicted_params = model.predict_parameters(dataset)
    if predicted_params is not None:
        pattern = float(np.mean(predicted_params[:, 0] <= 0))
        targets = dataset.target_matrix()
        scale = np.abs(targets).mean(axis=0)
        scale[scale == 0] = 1.0
        curve_mae = float(np.abs((predicted_params - targets) / scale).mean())
    else:
        windows = [reference_window(ref) for ref in dataset.observed_tokens()]
        window_curves = model.predict_curves(dataset, windows)
        pattern = fraction_non_increasing(window_curves)
        curve_mae = None

    return ModelEvaluation(
        model=model.name,
        pattern_non_increasing=pattern,
        curve_param_mae=curve_mae,
        runtime_median_ape=runtime_ape,
    )


@dataclass(frozen=True)
class WorkloadSavings:
    """Token savings vs slowdown of one workload against its baseline."""

    name: str
    workload_tokens: float
    baseline_tokens: float
    workload_runtime: float
    baseline_runtime: float
    predicted_slowdown: float | None = None

    @property
    def token_savings(self) -> float:
        """Fraction of baseline tokens saved."""
        return 1.0 - self.workload_tokens / self.baseline_tokens

    @property
    def slowdown(self) -> float:
        """``new_time / baseline_time - 1`` (the paper's definition)."""
        return self.workload_runtime / self.baseline_runtime - 1.0


def workload_savings(
    flighted: FlightedDataset, model: PCCPredictor | None = None
) -> tuple[WorkloadSavings, WorkloadSavings]:
    """Compute the W1 and W2 trade-offs of Section 5.4.

    * **W1** uses every run of every job at its flighted token count;
      baseline B1 charges each run at the job's largest flighted count.
    * **W2** uses one run per job at the second-largest flighted count;
      baseline B2 charges the largest.

    When ``model`` is given, its PCC predictions produce the predicted
    workload slowdown the paper compares against the actual one.
    """
    if len(flighted) == 0:
        raise FlightingError("flighted dataset is empty")

    predicted_ratio: dict[tuple[int, int], float] = {}
    if model is not None:
        dataset = flighted.to_pcc_dataset()
        example_idx, tokens, _ = flighted.evaluation_pairs()
        grids = [tokens[example_idx == i] for i in range(len(dataset))]
        curves = model.predict_curves(dataset, grids)
        for i, (grid, curve) in enumerate(zip(grids, curves)):
            reference = float(grid.max())
            ref_runtime = float(curve[np.argmax(grid)])
            for level, runtime in zip(grid, curve):
                predicted_ratio[(i, int(level))] = float(runtime) / ref_runtime

    w1_tokens = b1_tokens = w1_time = b1_time = 0.0
    w1_pred_time = b1_pred_time = 0.0
    w2_tokens = b2_tokens = w2_time = b2_time = 0.0
    w2_pred_time = b2_pred_time = 0.0

    for i, job in enumerate(flighted.jobs):
        by_tokens = job.runtime_by_tokens()
        largest = job.reference_tokens
        largest_runtime = by_tokens[largest]

        # --- W1: all flights at their flighted allocations --------------
        for flight in job.flights:
            w1_tokens += flight.tokens
            b1_tokens += largest
            w1_time += flight.runtime
            b1_time += largest_runtime
            if model is not None:
                w1_pred_time += largest_runtime * predicted_ratio[
                    (i, int(flight.tokens))
                ]
                b1_pred_time += largest_runtime

        # --- W2: one run per job at the second-largest allocation -------
        levels = job.token_levels
        second = levels[-2] if len(levels) >= 2 else levels[-1]
        w2_tokens += second
        b2_tokens += largest
        w2_time += by_tokens[second]
        b2_time += largest_runtime
        if model is not None:
            w2_pred_time += largest_runtime * predicted_ratio[(i, int(second))]
            b2_pred_time += largest_runtime

    w1 = WorkloadSavings(
        name="W1",
        workload_tokens=w1_tokens,
        baseline_tokens=b1_tokens,
        workload_runtime=w1_time,
        baseline_runtime=b1_time,
        predicted_slowdown=(
            w1_pred_time / b1_pred_time - 1.0 if model is not None else None
        ),
    )
    w2 = WorkloadSavings(
        name="W2",
        workload_tokens=w2_tokens,
        baseline_tokens=b2_tokens,
        workload_runtime=w2_time,
        baseline_runtime=b2_time,
        predicted_slowdown=(
            w2_pred_time / b2_pred_time - 1.0 if model is not None else None
        ),
    )
    return w1, w2
