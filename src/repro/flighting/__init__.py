"""Flighting: re-execution harness, flighted datasets, workload evaluation."""

from repro.flighting.dataset import (
    FlightedDataset,
    FlightedJob,
    build_flighted_dataset,
)
from repro.flighting.evaluation import (
    WorkloadSavings,
    evaluate_on_flighted,
    workload_savings,
)
from repro.flighting.flight import Flight, FlightHarness

__all__ = [
    "Flight",
    "FlightHarness",
    "FlightedJob",
    "FlightedDataset",
    "build_flighted_dataset",
    "evaluate_on_flighted",
    "WorkloadSavings",
    "workload_savings",
]
