"""Flighted dataset assembly (Sections 5.1, 5.2, 5.4).

Combines the flight harness with the Section 5.1 anomaly filters to build
the validation datasets of the paper:

* the **non-anomalous** set — jobs whose flights pass all three filters,
* the **fully-matched** subset — jobs whose executions all conserve area
  within a tolerance (zero outliers),
* per-job AREPAS validation inputs and model ground truth at multiple
  token counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arepas.validation import count_outlier_executions
from repro.exceptions import FlightingError
from repro.features.graph_features import plan_to_graph_sample
from repro.features.job_features import job_vector
from repro.flighting.flight import Flight, FlightHarness
from repro.models.dataset import PCCDataset, PCCExample
from repro.arepas.augmentation import AugmentedObservation
from repro.pcc.curve import PowerLawPCC
from repro.pcc.fitting import fit_power_law
from repro.scope.repository import TelemetryRecord
from repro.selection.filters import FlightObservation, apply_flight_filters
from repro.skyline.skyline import Skyline

__all__ = ["FlightedJob", "FlightedDataset", "build_flighted_dataset"]


@dataclass(frozen=True)
class FlightedJob:
    """One job's surviving flights plus its original telemetry."""

    record: TelemetryRecord
    flights: tuple[Flight, ...]

    def __post_init__(self) -> None:
        if len(self.flights) < 2:
            raise FlightingError("a flighted job needs at least two flights")

    # ------------------------------------------------------------------
    def runtime_by_tokens(self) -> dict[int, float]:
        """Mean run time per distinct token count, replicas averaged."""
        grouped: dict[int, list[int]] = {}
        for flight in self.flights:
            grouped.setdefault(flight.tokens, []).append(flight.runtime)
        return {tokens: float(np.mean(runs)) for tokens, runs in grouped.items()}

    @property
    def token_levels(self) -> list[int]:
        """Distinct flighted token counts, ascending."""
        return sorted({f.tokens for f in self.flights})

    @property
    def reference_tokens(self) -> int:
        """The largest flighted allocation (the 100% level)."""
        return self.token_levels[-1]

    def reference_runtime(self) -> float:
        return self.runtime_by_tokens()[self.reference_tokens]

    def reference_skyline(self) -> Skyline:
        """First replica's skyline at the reference allocation."""
        for flight in self.flights:
            if flight.tokens == self.reference_tokens:
                return flight.skyline
        raise FlightingError("no flight at the reference allocation")

    def skylines_per_level(self) -> list[Skyline]:
        """One skyline per token level (first replica of each)."""
        chosen: dict[int, Skyline] = {}
        for flight in self.flights:
            chosen.setdefault(flight.tokens, flight.skyline)
        return [chosen[tokens] for tokens in self.token_levels]

    def ground_truth_pcc(self) -> PowerLawPCC:
        """Power law fitted to the flighted (tokens, run time) means."""
        by_tokens = self.runtime_by_tokens()
        tokens = np.array(sorted(by_tokens))
        runtimes = np.array([by_tokens[t] for t in tokens])
        return fit_power_law(tokens.astype(float), runtimes)


@dataclass
class FlightedDataset:
    """The filtered flighted validation dataset."""

    jobs: list[FlightedJob]
    num_dropped_isolated: int = 0
    num_dropped_errant: int = 0
    num_dropped_non_monotonic: int = 0

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def num_flights(self) -> int:
        return sum(len(job.flights) for job in self.jobs)

    @property
    def num_unique_token_counts(self) -> int:
        return len(
            {(job.record.job_id, level) for job in self.jobs for level in job.token_levels}
        )

    # ------------------------------------------------------------------
    # AREPAS validation views (Section 5.2)
    # ------------------------------------------------------------------
    def per_job_skylines(self) -> list[list[Skyline]]:
        """One skyline per token level per job (area-conservation checks)."""
        return [job.skylines_per_level() for job in self.jobs]

    def arepas_inputs(
        self,
    ) -> list[tuple[str, Skyline, float, list[tuple[float, float]]]]:
        """Per-job inputs for :func:`repro.arepas.validation.simulation_errors`.

        The reference execution (largest token count) seeds the simulator;
        the other levels' mean run times are the ground truth.
        """
        inputs = []
        for job in self.jobs:
            reference = job.reference_skyline()
            by_tokens = job.runtime_by_tokens()
            targets = [
                (float(tokens), by_tokens[tokens])
                for tokens in job.token_levels
                if tokens != job.reference_tokens
            ]
            if targets:
                inputs.append(
                    (job.record.job_id, reference, float(job.reference_tokens), targets)
                )
        return inputs

    def fully_matched(self, tolerance: float = 30.0) -> "FlightedDataset":
        """Jobs whose executions all conserve area within ``tolerance``%."""
        jobs = [
            job
            for job in self.jobs
            if count_outlier_executions(job.skylines_per_level(), tolerance) == 0
        ]
        return FlightedDataset(jobs=jobs)

    # ------------------------------------------------------------------
    # model evaluation views (Section 5.4)
    # ------------------------------------------------------------------
    def to_pcc_dataset(self) -> PCCDataset:
        """A model-facing dataset with flight-derived ground truth.

        Targets are the PCCs fitted to the *flighted* run times (true
        ground truth rather than AREPAS proxies); the observed point is
        the reference (largest) flighted allocation.
        """
        dataset = PCCDataset()
        for job in self.jobs:
            record = job.record
            observations = tuple(
                AugmentedObservation(
                    tokens=float(tokens), runtime=runtime, source="observed"
                )
                for tokens, runtime in sorted(job.runtime_by_tokens().items())
            )
            dataset.examples.append(
                PCCExample(
                    job_id=record.job_id,
                    observed_tokens=float(job.reference_tokens),
                    observed_runtime=job.reference_runtime(),
                    target_pcc=job.ground_truth_pcc(),
                    job_features=job_vector(record.plan),
                    graph=plan_to_graph_sample(record.plan),
                    point_observations=observations,
                )
            )
        if not dataset.examples:
            raise FlightingError("flighted dataset is empty")
        return dataset

    def evaluation_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened (example index, tokens, true run time) triples.

        Used for the Table 8 point-prediction error over *all* flighted
        token counts, not only the reference one.
        """
        example_idx: list[int] = []
        tokens: list[float] = []
        runtimes: list[float] = []
        for i, job in enumerate(self.jobs):
            for level, runtime in sorted(job.runtime_by_tokens().items()):
                example_idx.append(i)
                tokens.append(float(level))
                runtimes.append(runtime)
        return (
            np.array(example_idx, dtype=int),
            np.array(tokens),
            np.array(runtimes),
        )


def build_flighted_dataset(
    records: list[TelemetryRecord],
    harness: FlightHarness | None = None,
    monotonicity_tolerance: float = 0.10,
    workers: int = 1,
) -> FlightedDataset:
    """Flight every record, filter anomalies, and assemble the dataset.

    Per the paper, filters run on the per-(job, token) *mean* flights;
    surviving jobs keep all their replicas. ``workers > 1`` runs the
    flight sweep across a process pool with identical results.
    """
    if not records:
        raise FlightingError("no records to flight")
    harness = harness or FlightHarness()
    flights_by_job = harness.flight_workload(records, workers=workers)

    observations: list[FlightObservation] = []
    for job_id, flights in flights_by_job.items():
        by_tokens: dict[int, list[Flight]] = {}
        for flight in flights:
            by_tokens.setdefault(flight.tokens, []).append(flight)
        for tokens, group in by_tokens.items():
            observations.append(
                FlightObservation(
                    job_id=job_id,
                    tokens=float(tokens),
                    runtime=float(np.mean([f.runtime for f in group])),
                    peak_usage=float(np.max([f.peak_usage for f in group])),
                )
            )

    report = apply_flight_filters(
        observations, monotonicity_tolerance=monotonicity_tolerance
    )
    surviving_levels: dict[str, set[float]] = {}
    for kept in report.kept:
        surviving_levels.setdefault(kept.job_id, set()).add(kept.tokens)

    record_by_id = {r.job_id: r for r in records}
    jobs = []
    for job_id, levels in sorted(surviving_levels.items()):
        if len(levels) < 2:
            continue
        flights = tuple(
            f for f in flights_by_job[job_id] if float(f.tokens) in levels
        )
        jobs.append(FlightedJob(record=record_by_id[job_id], flights=flights))

    return FlightedDataset(
        jobs=jobs,
        num_dropped_isolated=len(report.dropped_isolated),
        num_dropped_errant=len(report.dropped_errant),
        num_dropped_non_monotonic=len(report.dropped_non_monotonic),
    )
