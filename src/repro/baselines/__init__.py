"""Prior-art baselines: Jockey/Amdahl simulators and AutoToken.

Reproduces the related-work systems the paper compares against in §6:
§6.2's AutoToken (peak-allocation prediction for recurring jobs only —
no run-time/allocation trade-off curve) and §6.3's simulator lineage —
a Jockey-style stage-level event simulator and an Amdahl's-law skyline
scaler — plus §1's rejected "reuse the most recent skyline" alternative
(`skyline_replay`). Benchmarks `test_ablation_autotoken`,
`test_ablation_simulators`, and `test_ablation_skyline_replay` measure
each against AREPAS/TASQ on the same synthetic workload.
"""

from repro.baselines.autotoken import AutoToken, AutoTokenPrediction
from repro.baselines.simulators import AmdahlSkylineSimulator, StageLevelSimulator
from repro.baselines.skyline_replay import SkylineReplay

__all__ = [
    "StageLevelSimulator",
    "AmdahlSkylineSimulator",
    "AutoToken",
    "AutoTokenPrediction",
    "SkylineReplay",
]
