"""Prior-art baselines: Jockey/Amdahl simulators and AutoToken (§6.2-6.3)."""

from repro.baselines.autotoken import AutoToken, AutoTokenPrediction
from repro.baselines.simulators import AmdahlSkylineSimulator, StageLevelSimulator
from repro.baselines.skyline_replay import SkylineReplay

__all__ = [
    "StageLevelSimulator",
    "AmdahlSkylineSimulator",
    "AutoToken",
    "AutoTokenPrediction",
    "SkylineReplay",
]
