"""AutoToken: the peak-allocation baseline (Sen et al., discussed in §6.2).

AutoToken groups recurring jobs by signature and trains one small model
per group to predict the job's *peak* token usage from compile-time
characteristics; allocating the predicted peak avoids over-allocation
without risking slowdown. Its two limitations motivate TASQ:

1. **Coverage** — it only answers for signatures seen in training
   (40-60% of SCOPE jobs are new and get no prediction),
2. **No what-if ability** — it predicts a single peak number, not run
   time as a function of tokens, so sub-peak trade-offs are invisible.

Our implementation mirrors the published design at the fidelity this
substrate supports: per-signature regressors of ``log(peak)`` on
``log(total input cardinality)`` (falling back to the group's historical
peak quantile when inputs don't vary), with a configurable safety
quantile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.scope.plan import QueryPlan
from repro.scope.repository import TelemetryRecord
from repro.scope.signatures import plan_signature

__all__ = ["AutoTokenPrediction", "AutoToken"]


@dataclass(frozen=True)
class AutoTokenPrediction:
    """Predicted peak allocation for one job."""

    job_id: str
    signature: str
    peak_tokens: int


@dataclass
class _GroupModel:
    """Per-signature peak model: log-log regression with quantile floor."""

    slope: float
    intercept: float
    quantile_peak: float

    def predict(self, input_cardinality: float) -> float:
        if input_cardinality <= 0:
            return self.quantile_peak
        regressed = np.exp(
            self.intercept + self.slope * np.log(input_cardinality)
        )
        # Never go below the historical quantile: a safety floor against
        # under-allocation (AutoToken optimises for zero slowdown).
        return max(float(regressed), 0.5 * self.quantile_peak)


class AutoToken:
    """Signature-grouped peak-allocation predictor.

    Parameters
    ----------
    min_group_size:
        Signatures with fewer historical runs than this are not modelled
        (insufficient evidence — AutoToken's published behaviour).
    safety_quantile:
        Quantile of historical peaks used as the regression's floor and
        the fallback when inputs do not vary within a group.
    """

    def __init__(
        self, min_group_size: int = 3, safety_quantile: float = 0.9
    ) -> None:
        if min_group_size < 2:
            raise ModelError("min_group_size must be at least 2")
        if not 0.5 <= safety_quantile <= 1.0:
            raise ModelError("safety_quantile must be in [0.5, 1.0]")
        self.min_group_size = min_group_size
        self.safety_quantile = safety_quantile
        self._groups: dict[str, _GroupModel] | None = None

    # ------------------------------------------------------------------
    def fit(self, records: list[TelemetryRecord]) -> "AutoToken":
        """Group history by signature and fit per-group peak models."""
        if not records:
            raise ModelError("AutoToken needs historical records")
        by_signature: dict[str, list[TelemetryRecord]] = {}
        for record in records:
            by_signature.setdefault(
                plan_signature(record.plan), []
            ).append(record)

        groups: dict[str, _GroupModel] = {}
        for signature, group in by_signature.items():
            if len(group) < self.min_group_size:
                continue
            peaks = np.array([max(1.0, r.peak_tokens) for r in group])
            inputs = np.array(
                [max(1.0, r.plan.total_input_cardinality) for r in group]
            )
            quantile_peak = float(np.quantile(peaks, self.safety_quantile))
            log_inputs = np.log(inputs)
            if np.ptp(log_inputs) < 1e-9:
                slope, intercept = 0.0, float(np.log(quantile_peak))
            else:
                slope, intercept = np.polyfit(log_inputs, np.log(peaks), 1)
            groups[signature] = _GroupModel(
                slope=float(slope),
                intercept=float(intercept),
                quantile_peak=quantile_peak,
            )
        self._groups = groups
        return self

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        if self._groups is None:
            raise NotFittedError("AutoToken used before fit")
        return len(self._groups)

    def covers(self, plan: QueryPlan) -> bool:
        """True when the job's signature was modelled during training."""
        if self._groups is None:
            raise NotFittedError("AutoToken used before fit")
        return plan_signature(plan) in self._groups

    def predict(self, plan: QueryPlan) -> AutoTokenPrediction | None:
        """Peak-token prediction, or None for uncovered (ad-hoc) jobs."""
        if self._groups is None:
            raise NotFittedError("AutoToken used before fit")
        signature = plan_signature(plan)
        group = self._groups.get(signature)
        if group is None:
            return None
        peak = group.predict(plan.total_input_cardinality)
        return AutoTokenPrediction(
            job_id=plan.job_id,
            signature=signature,
            peak_tokens=max(1, int(np.ceil(peak))),
        )

    def coverage(self, plans: list[QueryPlan]) -> float:
        """Fraction of the given jobs AutoToken can answer for."""
        if not plans:
            raise ModelError("no plans given")
        return float(np.mean([self.covers(plan) for plan in plans]))
