"""Prior-art run-time simulators (Section 6.3): Jockey and Amdahl's law.

The paper positions AREPAS against two earlier SCOPE simulators:

* the **Jockey simulator** (Ferguson et al.), which replays a job *stage
  by stage* using statistics from prior runs of the same job, and
* the **Amdahl's-law simulator**, which models each stage's time as
  ``T = S + P / N`` (serial part plus parallel part divided by tokens),
  and which the paper notes performs identically to Jockey when used at
  compile time.

We implement both against our substrate so the paper's comparison can be
rerun:

* :class:`StageLevelSimulator` — the Jockey/Amdahl analogue. It needs the
  job's stage graph (the "Algebra" in Jockey's terms), walks stages in
  dependency order, and charges each stage ``ceil(tasks / N)`` waves of
  its task duration. Unlike AREPAS it cannot operate on the skyline alone
  and cannot exploit cross-stage overlap.
* :class:`AmdahlSkylineSimulator` — a skyline-only Amdahl fit: the serial
  part is the time the observed run spent effectively unparallelised and
  the rest is treated as perfectly divisible work. It exists to show why
  a naive two-parameter model underfits real skylines.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.scope.stages import CostModel, StageGraph
from repro.skyline.skyline import Skyline

__all__ = ["StageLevelSimulator", "AmdahlSkylineSimulator"]


class StageLevelSimulator:
    """Jockey/Amdahl-style stage-level run-time model.

    Each stage with ``n`` tasks of duration ``d`` takes
    ``ceil(n / tokens) * d`` (wave scheduling, no inter-stage overlap);
    the job's run time is the longest dependency chain of stage finish
    times. This is exactly the ``T = S + P/N`` decomposition with
    ``S = d`` (one wave is irreducible) and ``P = (n - 1) * d``.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or CostModel()

    def runtime(self, graph: StageGraph, tokens: int) -> float:
        """Predicted run time (seconds) of the job at ``tokens``."""
        if tokens < 1:
            raise SimulationError("token allocation must be at least 1")
        finish: dict[int, float] = {}
        for sid in graph.topological_order():
            stage = graph.stages[sid]
            duration = stage.task_duration(self.cost_model)
            waves = int(np.ceil(stage.num_tasks / tokens))
            start = max((finish[d] for d in stage.dependencies), default=0.0)
            finish[sid] = start + waves * duration
        return max(finish.values())

    def sweep(self, graph: StageGraph, allocations: np.ndarray) -> np.ndarray:
        """Run times for each allocation in ``allocations``."""
        return np.array(
            [self.runtime(graph, int(a)) for a in allocations]
        )


class AmdahlSkylineSimulator:
    """Skyline-only Amdahl's-law model: ``runtime(N) = S + P / N``.

    Calibrated from a single observed run: seconds whose usage is at or
    below ``serial_threshold`` tokens count toward the serial part ``S``;
    the remaining area is the perfectly parallel work ``P``. AREPAS's
    advantage over this model is that it keeps the skyline's *shape*
    (sections below the new allocation are unaffected), while Amdahl
    smears all parallel work uniformly.
    """

    def __init__(self, serial_threshold: float = 1.0) -> None:
        if serial_threshold < 0:
            raise SimulationError("serial threshold must be non-negative")
        self.serial_threshold = serial_threshold

    def calibrate(self, skyline: Skyline) -> tuple[float, float]:
        """Return ``(S, P)`` from one observed skyline."""
        serial_mask = skyline.usage <= self.serial_threshold
        serial_seconds = float(np.count_nonzero(serial_mask))
        parallel_work = float(skyline.usage[~serial_mask].sum())
        return serial_seconds, parallel_work

    def runtime(self, skyline: Skyline, tokens: float) -> float:
        """Predicted run time at ``tokens`` from the observed skyline."""
        if tokens <= 0:
            raise SimulationError("token allocation must be positive")
        serial, parallel = self.calibrate(skyline)
        return serial + parallel / tokens

    def sweep(self, skyline: Skyline, allocations: np.ndarray) -> np.ndarray:
        serial, parallel = self.calibrate(skyline)
        allocations = np.asarray(allocations, dtype=float)
        if np.any(allocations <= 0):
            raise SimulationError("token allocations must be positive")
        return serial + parallel / allocations
