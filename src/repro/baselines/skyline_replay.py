"""Skyline replay: the historical-skyline baseline (Section 1).

The paper considers and rejects an obvious alternative to learned PCC
prediction: "One option could be to use a job's most recent resource
allocation skyline to estimate the PCC, however, the skyline could change
significantly over time due to changes in workloads, such as changes in
the input sizes. Furthermore, newer and ad-hoc jobs with no historical
data do not have historical skylines."

This module implements that alternative faithfully so its two failure
modes can be measured: it keeps each signature's most recent skyline and
answers run-time queries by running AREPAS on it — ignoring whatever the
incoming instance's inputs actually look like.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arepas.simulator import AREPAS
from repro.exceptions import ModelError, NotFittedError
from repro.scope.plan import QueryPlan
from repro.scope.repository import TelemetryRecord
from repro.scope.signatures import plan_signature
from repro.skyline.skyline import Skyline

__all__ = ["SkylineReplay"]


@dataclass(frozen=True)
class _StoredSkyline:
    skyline: Skyline
    submit_day: int


class SkylineReplay:
    """Per-signature most-recent-skyline run-time estimator."""

    def __init__(self, simulator: AREPAS | None = None) -> None:
        self.simulator = simulator or AREPAS()
        self._latest: dict[str, _StoredSkyline] | None = None

    def fit(self, records: list[TelemetryRecord]) -> "SkylineReplay":
        """Remember the most recent skyline of every signature."""
        if not records:
            raise ModelError("skyline replay needs historical records")
        latest: dict[str, _StoredSkyline] = {}
        for record in records:
            signature = plan_signature(record.plan)
            stored = latest.get(signature)
            if stored is None or record.submit_day >= stored.submit_day:
                latest[signature] = _StoredSkyline(
                    skyline=record.skyline, submit_day=record.submit_day
                )
        self._latest = latest
        return self

    def covers(self, plan: QueryPlan) -> bool:
        if self._latest is None:
            raise NotFittedError("SkylineReplay used before fit")
        return plan_signature(plan) in self._latest

    def predict_runtime(self, plan: QueryPlan, tokens: float) -> float | None:
        """Estimated run time at ``tokens``, or None for uncovered jobs.

        Replays the *stored* skyline through AREPAS — which is exactly
        right if today's instance does the same work as the remembered
        one, and wrong by the input-growth factor otherwise.
        """
        if self._latest is None:
            raise NotFittedError("SkylineReplay used before fit")
        stored = self._latest.get(plan_signature(plan))
        if stored is None:
            return None
        if tokens >= stored.skyline.peak:
            return float(stored.skyline.duration)
        return float(self.simulator.runtime(stored.skyline, tokens))

    def coverage(self, plans: list[QueryPlan]) -> float:
        if not plans:
            raise ModelError("no plans given")
        covered = sum(1 for plan in plans if self.covers(plan))
        return covered / len(plans)
