"""ML substrate: autograd, neural layers, GBM, GNN, losses, metrics.

``repro.ml.compiled`` holds the flattened batch-inference kernels the
online layers score through (see ``docs/performance.md``).
"""

from repro.ml.autograd import Tensor, concat, maximum, tensor, where
from repro.ml.compiled import FlattenedForest, FusedMLP, compile_network
from repro.ml.gbm import BoosterParams, GradientBoostingRegressor
from repro.ml.gnn import (
    AttentionPooling,
    GNNEncoder,
    GraphBatch,
    GraphConvolution,
    pad_graph_batch,
)
from repro.ml.losses import LF1, LF2, LF3, CompositeLoss, LossInputs
from repro.ml.metrics import (
    fraction_non_increasing,
    mean_absolute_error,
    mean_absolute_percentage_error,
    median_absolute_percentage_error,
)
from repro.ml.nn import Activation, Dense, Module, PCCParameterHead, Sequential
from repro.ml.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "tensor",
    "concat",
    "maximum",
    "where",
    "Module",
    "Dense",
    "Activation",
    "Sequential",
    "PCCParameterHead",
    "Optimizer",
    "SGD",
    "Adam",
    "CompositeLoss",
    "LossInputs",
    "LF1",
    "LF2",
    "LF3",
    "mean_absolute_error",
    "median_absolute_percentage_error",
    "mean_absolute_percentage_error",
    "fraction_non_increasing",
    "BoosterParams",
    "GradientBoostingRegressor",
    "FlattenedForest",
    "FusedMLP",
    "compile_network",
    "GraphBatch",
    "pad_graph_batch",
    "GraphConvolution",
    "AttentionPooling",
    "GNNEncoder",
]
