"""Feed-forward neural network building blocks on the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.ml.autograd import Tensor

__all__ = ["Module", "Dense", "Activation", "Sequential", "PCCParameterHead"]


class Module:
    """Base class: anything with parameters and a forward pass."""

    def parameters(self) -> list[Tensor]:
        return []

    def __call__(self, inputs: Tensor) -> Tensor:
        return self.forward(inputs)

    def forward(self, inputs: Tensor) -> Tensor:
        raise NotImplementedError

    def num_parameters(self) -> int:
        """Total scalar parameter count (Table 7)."""
        return int(sum(p.data.size for p in self.parameters()))


class Dense(Module):
    """Fully connected layer ``y = x W + b`` with He/Xavier init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "he",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ModelError("layer dimensions must be positive")
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(1.0 / in_features)
        else:
            raise ModelError(f"unknown init scheme: {init!r}")
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def parameters(self) -> list[Tensor]:
        return [self.weight, self.bias]

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs @ self.weight + self.bias


class Activation(Module):
    """Parameterless activation wrapper."""

    _FUNCS = {"relu", "tanh", "sigmoid", "softplus"}

    def __init__(self, name: str) -> None:
        if name not in self._FUNCS:
            raise ModelError(f"unknown activation: {name!r}")
        self.name = name

    def forward(self, inputs: Tensor) -> Tensor:
        return getattr(inputs, self.name)()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        if not modules:
            raise ModelError("Sequential needs at least one module")
        self.modules = list(modules)

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for module in self.modules:
            out = module(out)
        return out


class PCCParameterHead(Module):
    """Output head producing sign-guaranteed PCC parameters.

    The head maps a hidden representation to two raw values and constrains
    them (Section 4.5, LF1: "the signs of the two predicted curve
    parameters are guaranteed to be different"):

    * exponent ``a = -softplus(raw_a)`` — always non-positive,
    * scale ``log b = raw_logb`` — so ``b = exp(log b)`` is always
      positive.

    Together these *structurally* guarantee a monotonically non-increasing
    PCC for every prediction, which is the paper's headline advantage of
    NN/GNN over XGBoost.

    The forward pass returns a column-stacked ``(batch, 2)`` tensor of
    ``[a, log_b]``.
    """

    def __init__(self, in_features: int, rng: np.random.Generator) -> None:
        self.linear = Dense(in_features, 2, rng, init="xavier")
        # Start near a = -0.5, log_b = 5 (a generic mildly parallel job)
        # so early training predictions are already plausible curves.
        self.linear.bias.data = np.array([0.0, 5.0])

    def parameters(self) -> list[Tensor]:
        return self.linear.parameters()

    def forward(self, inputs: Tensor) -> Tensor:
        raw = self.linear(inputs)
        raw_a = raw[:, 0:1]
        raw_logb = raw[:, 1:2]
        a = -raw_a.softplus()
        from repro.ml.autograd import concat

        return concat([a, raw_logb], axis=1)
