"""Graph neural network components (Figure 10).

The paper's GNN follows SimGNN: graph convolution layers produce
node-level embeddings, an attention layer compares each node to a learned
global context to pool them into a graph embedding, and a fully connected
head predicts the two PCC parameters.

Everything operates on *padded batches*: graphs in a batch are padded to
the largest node count and a node mask keeps padding out of the pooling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.features.graph_features import GraphSample
from repro.ml.autograd import Tensor
from repro.ml.nn import Dense, Module

__all__ = ["GraphBatch", "pad_graph_batch", "GraphConvolution",
           "AttentionPooling", "GNNEncoder"]


@dataclass(frozen=True)
class GraphBatch:
    """A padded batch of graphs.

    Attributes
    ----------
    node_features:
        ``(B, N_max, P)`` padded node feature array.
    adjacency:
        ``(B, N_max, N_max)`` padded normalised adjacency.
    node_mask:
        ``(B, N_max)`` 1.0 for real nodes, 0.0 for padding.
    """

    node_features: np.ndarray
    adjacency: np.ndarray
    node_mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def max_nodes(self) -> int:
        return int(self.node_features.shape[1])


def pad_graph_batch(samples: list[GraphSample]) -> GraphBatch:
    """Pad a list of graph samples into one :class:`GraphBatch`."""
    if not samples:
        raise ModelError("cannot batch zero graphs")
    max_nodes = max(s.num_nodes for s in samples)
    feature_dim = samples[0].node_features.shape[1]
    batch = len(samples)

    features = np.zeros((batch, max_nodes, feature_dim))
    adjacency = np.zeros((batch, max_nodes, max_nodes))
    mask = np.zeros((batch, max_nodes))
    for i, sample in enumerate(samples):
        if sample.node_features.shape[1] != feature_dim:
            raise ModelError("graphs in a batch must share the feature width")
        n = sample.num_nodes
        features[i, :n] = sample.node_features
        adjacency[i, :n, :n] = sample.adjacency
        mask[i, :n] = 1.0
    return GraphBatch(node_features=features, adjacency=adjacency, node_mask=mask)


class GraphConvolution(Module):
    """One GCN layer: ``H' = relu(A_hat H W + b)`` (Kipf & Welling).

    Operates on batched inputs: ``A_hat`` is ``(B, N, N)`` and ``H`` is
    ``(B, N, F_in)``.
    """

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        self.linear = Dense(in_features, out_features, rng, init="xavier")

    def parameters(self) -> list[Tensor]:
        return self.linear.parameters()

    def forward_graph(self, node_states: Tensor, adjacency: Tensor) -> Tensor:
        aggregated = adjacency @ node_states
        return self.linear(aggregated).relu()

    def forward(self, inputs: Tensor) -> Tensor:  # pragma: no cover
        raise ModelError("GraphConvolution requires forward_graph(H, A)")


class AttentionPooling(Module):
    """SimGNN-style attention pooling of node embeddings.

    The global context is ``c = tanh(mean_n(h_n) W_c)`` (the mean taken
    over real nodes only); each node's attention weight is
    ``sigmoid(h_n . c)``; the graph embedding is the attention-weighted
    sum of node embeddings.
    """

    def __init__(self, features: int, rng: np.random.Generator) -> None:
        self.context_weight = Tensor(
            rng.normal(0.0, np.sqrt(1.0 / features), size=(features, features)),
            requires_grad=True,
        )

    def parameters(self) -> list[Tensor]:
        return [self.context_weight]

    def forward_graph(self, node_states: Tensor, node_mask: np.ndarray) -> Tensor:
        batch, max_nodes, features = node_states.shape
        mask3 = node_mask[:, :, None]  # (B, N, 1) constant
        counts = node_mask.sum(axis=1, keepdims=True)  # (B, 1)
        if np.any(counts == 0):
            raise ModelError("a graph in the batch has no nodes")

        masked = node_states * Tensor(mask3)
        mean_nodes = masked.sum(axis=1) * Tensor(1.0 / counts)  # (B, F)
        context = (mean_nodes @ self.context_weight).tanh()  # (B, F)

        # Attention score per node: sigmoid(h_n . c).
        scores = (node_states * context.reshape(batch, 1, features)).sum(axis=2)
        attention = scores.sigmoid() * Tensor(node_mask)  # (B, N)

        weighted = node_states * attention.reshape(batch, max_nodes, 1)
        return weighted.sum(axis=1)  # (B, F)

    def forward(self, inputs: Tensor) -> Tensor:  # pragma: no cover
        raise ModelError("AttentionPooling requires forward_graph(H, mask)")


class GNNEncoder(Module):
    """Stacked GCN layers followed by attention pooling.

    Maps a :class:`GraphBatch` to a ``(B, hidden)`` graph embedding that a
    fully connected head can consume.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: tuple[int, ...],
        rng: np.random.Generator,
    ) -> None:
        if not hidden_sizes:
            raise ModelError("GNN encoder needs at least one hidden layer")
        self.layers: list[GraphConvolution] = []
        previous = in_features
        for size in hidden_sizes:
            self.layers.append(GraphConvolution(previous, size, rng))
            previous = size
        self.pooling = AttentionPooling(previous, rng)
        self.output_dim = previous

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        params.extend(self.pooling.parameters())
        return params

    def encode(self, batch: GraphBatch) -> Tensor:
        states = Tensor(batch.node_features)
        adjacency = Tensor(batch.adjacency)
        for layer in self.layers:
            states = layer.forward_graph(states, adjacency)
        return self.pooling.forward_graph(states, batch.node_mask)

    def forward(self, inputs: Tensor) -> Tensor:  # pragma: no cover
        raise ModelError("GNNEncoder requires encode(GraphBatch)")
