"""Gradient-descent optimizers for the autograd models."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.ml.autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, parameters: list[Tensor], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ModelError("learning rate must be positive")
        if not parameters:
            raise ModelError("optimizer needs at least one parameter")
        for p in parameters:
            if not p.requires_grad:
                raise ModelError("all optimized tensors must require grad")
        self.parameters = parameters
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[Tensor],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0 <= momentum < 1:
            raise ModelError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * p.grad
            p.data = p.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Tensor],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ModelError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            p.data = p.data - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
