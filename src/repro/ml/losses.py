"""The constrained loss functions LF1, LF2, LF3 (Section 4.5).

All three are built from mean absolute error (MAE) components:

* **LF1** — MAE of the (scaled) PCC curve parameters only.
* **LF2** — LF1 plus a penalisation term: MAE, in percent, of the run-time
  prediction at each job's observed token count. Only ground-truth run
  times feed this term, which is what keeps the simulator an inductive
  bias rather than the thing being learned.
* **LF3** — LF2 plus a transfer term: mean absolute percentage difference
  between the network's and XGBoost's run-time predictions at the
  observed token count.

The component weights are hyper-parameters; the paper tunes them so the
curve-parameter MAE under LF2 stays close to LF1's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.ml.autograd import Tensor

__all__ = ["LossInputs", "CompositeLoss", "LF1", "LF2", "LF3"]


@dataclass
class LossInputs:
    """Per-batch constants the loss needs besides the predictions.

    Attributes
    ----------
    target_params:
        ``(batch, 2)`` array of fitted ``(a, log b)`` targets (unscaled).
    param_scale:
        Length-2 positive array used to scale both predictions and
        targets so neither parameter dominates (Section 4.5).
    log_tokens:
        ``(batch,)`` log of each job's observed token count.
    true_runtime:
        ``(batch,)`` ground-truth run times at the observed tokens.
    xgb_runtime:
        ``(batch,)`` XGBoost run-time predictions (only needed for LF3).
    """

    target_params: np.ndarray
    param_scale: np.ndarray
    log_tokens: np.ndarray
    true_runtime: np.ndarray
    xgb_runtime: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.target_params = np.asarray(self.target_params, dtype=float)
        self.param_scale = np.asarray(self.param_scale, dtype=float)
        self.log_tokens = np.asarray(self.log_tokens, dtype=float)
        self.true_runtime = np.asarray(self.true_runtime, dtype=float)
        if self.target_params.ndim != 2 or self.target_params.shape[1] != 2:
            raise ModelError("target_params must be (batch, 2)")
        if self.param_scale.shape != (2,) or np.any(self.param_scale <= 0):
            raise ModelError("param_scale must be two positive values")
        if np.any(self.true_runtime <= 0):
            raise ModelError("true run times must be positive")
        if self.xgb_runtime is not None:
            self.xgb_runtime = np.asarray(self.xgb_runtime, dtype=float)
            if np.any(self.xgb_runtime <= 0):
                raise ModelError("xgb run times must be positive")

    def subset(self, indices: np.ndarray) -> "LossInputs":
        """The loss inputs restricted to a mini-batch."""
        return LossInputs(
            target_params=self.target_params[indices],
            param_scale=self.param_scale,
            log_tokens=self.log_tokens[indices],
            true_runtime=self.true_runtime[indices],
            xgb_runtime=(
                None if self.xgb_runtime is None else self.xgb_runtime[indices]
            ),
        )


class CompositeLoss:
    """Weighted combination of the three MAE components.

    ``weights = (w_params, w_runtime, w_transfer)``; LF1 is
    ``(1, 0, 0)``, LF2 ``(1, w, 0)``, LF3 ``(1, w, v)``.
    """

    def __init__(self, weights: tuple[float, float, float]) -> None:
        if len(weights) != 3 or any(w < 0 for w in weights):
            raise ModelError("loss weights must be three non-negative values")
        if weights[0] <= 0:
            raise ModelError("the curve-parameter component must be active")
        self.weights = weights

    @property
    def needs_xgb(self) -> bool:
        return self.weights[2] > 0

    def __call__(self, predicted_params: Tensor, inputs: LossInputs) -> Tensor:
        """Scalar loss for a ``(batch, 2)`` prediction of ``(a, log b)``."""
        w_params, w_runtime, w_transfer = self.weights

        inv_scale = 1.0 / inputs.param_scale
        scaled_pred = predicted_params * inv_scale
        scaled_target = inputs.target_params * inv_scale
        loss = (scaled_pred - Tensor(scaled_target)).abs().mean() * w_params

        if w_runtime > 0 or w_transfer > 0:
            a = predicted_params[:, 0]
            log_b = predicted_params[:, 1]
            log_runtime = log_b + a * Tensor(inputs.log_tokens)
            runtime = log_runtime.exp()

            if w_runtime > 0:
                true = Tensor(inputs.true_runtime)
                relative = ((runtime - true) * (1.0 / inputs.true_runtime)).abs()
                loss = loss + relative.mean() * w_runtime

            if w_transfer > 0:
                if inputs.xgb_runtime is None:
                    raise ModelError("LF3 requires XGBoost run-time predictions")
                xgb = Tensor(inputs.xgb_runtime)
                relative = ((runtime - xgb) * (1.0 / inputs.xgb_runtime)).abs()
                loss = loss + relative.mean() * w_transfer
        return loss


def LF1() -> CompositeLoss:
    """Single-component loss: scaled curve-parameter MAE."""
    return CompositeLoss((1.0, 0.0, 0.0))


def LF2(runtime_weight: float = 0.5) -> CompositeLoss:
    """Two components: parameter MAE + run-time percentage MAE."""
    return CompositeLoss((1.0, runtime_weight, 0.0))


def LF3(runtime_weight: float = 0.5, transfer_weight: float = 0.25) -> CompositeLoss:
    """Three components: LF2 + XGBoost transfer term."""
    return CompositeLoss((1.0, runtime_weight, transfer_weight))
