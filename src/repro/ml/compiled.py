"""Flattened batch-inference kernels for the numpy ML stack.

Scoring latency in the online layers (`AllocationServer` micro-batching,
fleet budgeting, the replay loop) bottoms out in model inference:
per-tree python recursion in ``ml.gbm`` and layer-by-layer autograd
tensors in ``ml.nn``. This module "compiles" fitted models into shapes
the CPU likes:

* :class:`FlattenedForest` — every tree of a fitted booster flattened
  into one set of contiguous parallel arrays (feature index / bin
  threshold / left child / right child / scaled leaf value) plus per-tree
  root offsets. Prediction walks *all trees over the whole batch at
  once*, advancing a ``(tree, row)`` node matrix branchlessly for a
  fixed ``depth`` iterations — leaves are rewritten as self-loops so no
  per-row termination test is needed. On top of that layout the
  constructor builds a gather-minimal encoding: nodes are renumbered by
  level-synchronous BFS so each split's children are adjacent
  (``right == left + 1``, making the step ``nodes = left + go_right``
  with no ``np.where``), and each node's ``(left, feature,
  threshold+1)`` is packed into one int64, so a traversal step costs a
  single node gather, one feature-value gather, and a handful of
  elementwise ops. Rows are processed in blocks of 128 to keep the
  gather working set cache-resident.

  The kernel is **bit-identical** to the reference python traversal:
  leaf values are pre-scaled by the learning rate (the same scalar
  multiply the reference applies elementwise), and per-tree
  contributions are accumulated in the reference's sequential order.

* :class:`FusedMLP` — a ``Sequential`` of ``Dense`` / ``Activation`` /
  ``PCCParameterHead`` modules fused into a float32 forward pass over
  preallocated, thread-local scratch buffers: one ``matmul`` with an
  ``out=`` target plus in-place activation per layer, no autograd graph,
  no per-layer allocations after warm-up. Float32 is a deliberate
  trade: differential tests pin the result to the float64 reference
  within round-off, and the sign structure of the PCC head (``a <= 0``)
  survives exactly because ``a = -softplus(raw)`` stays non-positive in
  any precision.

Compilation is **lazy** (first predict) and **invalidated on refit** —
``fit()`` drops the cached kernel, and a hot-swapped model carries its
own cache, so ``ModelStore.latest()`` / ``AllocationServer.
refresh_model()`` keep working unchanged.

Escape hatches, strongest first:

* ``REPRO_COMPILED=0`` in the environment disables the kernels
  process-wide;
* :func:`set_enabled` flips the process default at runtime;
* :func:`override` is a thread-local context manager (used by
  ``ScoringPipeline(use_compiled=False)`` and the differential tests);
* every routed model also takes ``use_compiled=False``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ModelError

__all__ = [
    "is_enabled",
    "set_enabled",
    "override",
    "FlattenedForest",
    "FusedMLP",
    "compile_network",
]


# ----------------------------------------------------------------------
# enable/disable plumbing
# ----------------------------------------------------------------------
_process_enabled = os.environ.get("REPRO_COMPILED", "1") != "0"
_local = threading.local()


def is_enabled() -> bool:
    """Are compiled kernels active on this thread right now?"""
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _process_enabled


def set_enabled(enabled: bool) -> None:
    """Flip the process-wide default (thread overrides still win)."""
    global _process_enabled
    _process_enabled = bool(enabled)


@contextmanager
def override(enabled: bool) -> Iterator[None]:
    """Thread-locally force compiled kernels on or off.

    The reference implementations stay in place behind this switch, so
    differential tests (and the ``use_compiled=False`` escape hatch on
    :class:`~repro.tasq.pipeline.ScoringPipeline`) can replay the exact
    pre-kernel semantics without rebuilding any model.
    """
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


# ----------------------------------------------------------------------
# flattened GBM forest
# ----------------------------------------------------------------------

#: Rows per traversal block: (trees x 128) int64 node/packed matrices
#: stay small enough that the per-step gathers hit L2.
_TRAVERSAL_BLOCK = 128

#: Leaf sentinel stored in the packed threshold field. ``BinMapper``
#: emits uint8 bins (<= 255), so ``bin > _LEAF_THRESHOLD - 1`` is never
#: true and a leaf's self-loop child is always taken.
_LEAF_THRESHOLD = 300


class FlattenedForest:
    """A fitted tree ensemble as contiguous node arrays.

    Canonical layout (one slot per node, all trees concatenated)::

        feature    int32    split feature, 0 for leaves (self-loop)
        threshold  int64    bin threshold, -1 for leaves
        left       int32    child if bin <= threshold; leaf -> itself
        right      int32    child otherwise;           leaf -> itself
        value      float64  learning_rate * leaf weight (0 internally)
        roots      int32    first node of each tree

    The constructor additionally derives a packed traversal encoding:
    nodes renumbered level-synchronous-BFS (children of each split are
    adjacent, so ``right`` is implicit) with one int64 word per node::

        packed = (left << 18) | (feature << 9) | (threshold + 1)

    Leaves store themselves as ``left`` and ``_LEAF_THRESHOLD`` in the
    threshold field, which no uint8 bin can exceed. A traversal step is
    then one node gather, one feature gather and four elementwise ops::

        p = packed[nodes]
        nodes = (p >> 18) + (bins[(p >> 9) & 511] > (p & 511) - 1)

    Ensembles whose fields overflow the 9-bit packing (features >= 512
    or thresholds > 298 — impossible for ``BinMapper``-binned trees)
    fall back to an unpacked ``np.where`` walk over the canonical
    arrays.

    ``predict_raw`` accumulates per-tree leaf values in the reference
    booster's sequential order, so results are bit-identical to
    ``GradientBoostingRegressor.predict_raw_reference``.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        depth: int,
    ) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.roots = roots
        self.depth = int(depth)
        self._packed: np.ndarray | None = None
        self._packed_value: np.ndarray | None = None
        self._packed_roots: np.ndarray | None = None
        self._pack()

    def _pack(self) -> None:
        """Build the BFS-renumbered packed encoding (or leave it off)."""
        n = self.feature.shape[0]
        left = self.left.astype(np.int64)
        right = self.right.astype(np.int64)
        feature = self.feature.astype(np.int64)
        threshold = self.threshold.astype(np.int64)
        is_leaf = left == np.arange(n, dtype=np.int64)
        split_features = feature[~is_leaf]
        split_thresholds = threshold[~is_leaf]
        if split_features.size and (
            split_features.max() >= 512
            or split_thresholds.min() < 0
            or split_thresholds.max() >= _LEAF_THRESHOLD - 1
        ):
            return  # does not fit the 9-bit fields; unpacked path only

        # Level-synchronous BFS over the whole forest. Emitting each
        # split's children consecutively makes siblings adjacent in the
        # new numbering, so the right child is left + 1.
        order = np.empty(n, dtype=np.int64)
        new_id = np.empty(n, dtype=np.int64)
        current = self.roots.astype(np.int64)
        pos = 0
        while current.size:
            order[pos : pos + current.size] = current
            new_id[current] = np.arange(pos, pos + current.size)
            pos += current.size
            splits = current[left[current] != current]
            nxt = np.empty(2 * splits.size, dtype=np.int64)
            nxt[0::2] = left[splits]
            nxt[1::2] = right[splits]
            current = nxt

        old_left = left[order]
        leaf = old_left == order
        child = np.where(leaf, np.arange(n, dtype=np.int64), new_id[old_left])
        packed_feature = np.where(leaf, 0, feature[order])
        packed_threshold = np.where(leaf, _LEAF_THRESHOLD, threshold[order] + 1)
        self._packed = (child << 18) | (packed_feature << 9) | packed_threshold
        self._packed_value = self.value[order]
        self._packed_roots = new_id[self.roots.astype(np.int64)]

    @classmethod
    def from_trees(
        cls,
        trees: Sequence[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ],
        learning_rate: float,
    ) -> "FlattenedForest":
        """Flatten ``(feature, bin_threshold, left, right, value)`` arrays.

        One tuple per fitted tree, exactly as
        :meth:`~repro.ml.gbm.tree.RegressionTree.flat_arrays` returns
        them. Leaf nodes (``feature < 0``) become self-loops so the
        traversal needs no termination mask.
        """
        if not trees:
            raise ModelError("cannot flatten an empty ensemble")
        features: list[np.ndarray] = []
        thresholds: list[np.ndarray] = []
        lefts: list[np.ndarray] = []
        rights: list[np.ndarray] = []
        values: list[np.ndarray] = []
        roots = np.empty(len(trees), dtype=np.int32)
        offset = 0
        max_depth = 0
        for t, (feature, threshold, left, right, value) in enumerate(trees):
            n = feature.shape[0]
            if n == 0:
                raise ModelError("cannot flatten an unfitted tree")
            leaf = feature < 0
            self_index = np.arange(n, dtype=np.int64)
            left = np.where(leaf, self_index, left)
            right = np.where(leaf, self_index, right)

            # Children are always appended after their parent, so one
            # forward pass yields every node's depth.
            node_depth = np.zeros(n, dtype=np.int64)
            for i in range(n):
                if not leaf[i]:
                    node_depth[left[i]] = node_depth[i] + 1
                    node_depth[right[i]] = node_depth[i] + 1
            max_depth = max(max_depth, int(node_depth.max()))

            roots[t] = offset
            features.append(np.where(leaf, 0, feature))
            thresholds.append(threshold)
            lefts.append(left + offset)
            rights.append(right + offset)
            # Pre-scale leaf values by the learning rate: the reference
            # computes the identical scalar product elementwise.
            values.append(learning_rate * value)
            offset += n

        return cls(
            feature=np.concatenate(features).astype(np.int32),
            threshold=np.concatenate(thresholds).astype(np.int64),
            left=np.concatenate(lefts).astype(np.int32),
            right=np.concatenate(rights).astype(np.int32),
            value=np.concatenate(values).astype(np.float64),
            roots=roots,
            depth=max_depth,
        )

    @property
    def num_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.feature.shape[0])

    def predict_raw(self, binned: np.ndarray, base_score: float) -> np.ndarray:
        """Raw scores for pre-binned features, all trees at once."""
        if binned.ndim != 2:
            raise ModelError("binned features must be 2-D")
        if binned.shape[0] == 0:
            return np.full(0, base_score, dtype=np.float64)
        if self._packed is not None and (
            binned.dtype == np.uint8 or int(binned.max()) < _LEAF_THRESHOLD
        ):
            return self._predict_raw_packed(binned, base_score)
        return self._predict_raw_unpacked(binned, base_score)

    def _predict_raw_packed(
        self, binned: np.ndarray, base_score: float
    ) -> np.ndarray:
        packed = self._packed
        values = self._packed_value
        roots = self._packed_roots[:, None]
        depth = self.depth
        n_rows, n_features = binned.shape
        bins_flat = binned.reshape(-1).astype(np.int64)
        raw = np.empty(n_rows, dtype=np.float64)
        for start in range(0, n_rows, _TRAVERSAL_BLOCK):
            stop = min(start + _TRAVERSAL_BLOCK, n_rows)
            row_offsets = (
                np.arange(start, stop, dtype=np.int64) * n_features
            )[None, :]
            nodes = np.repeat(roots, stop - start, axis=1)
            for _ in range(depth):
                p = packed[nodes]
                go_right = (
                    bins_flat[((p >> 9) & 511) + row_offsets]
                    > (p & 511) - 1
                )
                nodes = (p >> 18) + go_right
            leaf_values = values[nodes]  # (trees, block)

            # Accumulate in the reference's tree order — summing the
            # matrix with one reduction would change float association
            # and break bit-identity with the sequential boosting loop.
            block = np.full(stop - start, base_score, dtype=np.float64)
            for t in range(leaf_values.shape[0]):
                block = block + leaf_values[t]
            raw[start:stop] = block
        return raw

    def _predict_raw_unpacked(
        self, binned: np.ndarray, base_score: float
    ) -> np.ndarray:
        n_rows = binned.shape[0]
        nodes = np.repeat(self.roots[:, None], n_rows, axis=1).astype(np.int64)
        rows = np.arange(n_rows)[None, :]
        for _ in range(self.depth):
            feat = self.feature[nodes]
            go_left = binned[rows, feat] <= self.threshold[nodes]
            nodes = np.where(go_left, self.left[nodes], self.right[nodes])
        leaf_values = self.value[nodes]  # (trees, batch)

        raw = np.full(n_rows, base_score, dtype=np.float64)
        for t in range(leaf_values.shape[0]):
            raw = raw + leaf_values[t]
        return raw


# ----------------------------------------------------------------------
# fused MLP forward pass
# ----------------------------------------------------------------------
_DENSE, _ACT, _HEAD = "dense", "act", "head"
_ACTIVATIONS = ("relu", "tanh", "sigmoid", "softplus")


def _softplus32(x: np.ndarray) -> np.ndarray:
    """The reference's stable softplus, in the buffer's dtype."""
    ax = np.abs(x)
    np.negative(ax, out=ax)
    np.exp(ax, out=ax)
    np.log1p(ax, out=ax)
    return np.maximum(x, 0.0) + ax


def _apply_activation(name: str, buf: np.ndarray) -> None:
    if name == "relu":
        np.maximum(buf, 0.0, out=buf)
    elif name == "tanh":
        np.tanh(buf, out=buf)
    elif name == "sigmoid":
        np.clip(buf, -60.0, 60.0, out=buf)
        np.negative(buf, out=buf)
        np.exp(buf, out=buf)
        buf += 1.0
        np.reciprocal(buf, out=buf)
    elif name == "softplus":
        buf[...] = _softplus32(buf)
    else:  # pragma: no cover - guarded at compile time
        raise ModelError(f"unknown activation: {name!r}")


class FusedMLP:
    """A compiled ``Sequential``: float32 weights, preallocated buffers.

    The op list alternates ``("dense", W, b)`` / ``("act", name)`` steps
    and may end with ``("head", W, b)`` — the PCC parameter head, whose
    sign transform (``a = -softplus(raw_a)``) is fused in. Scratch
    buffers are cached per batch size in a ``threading.local`` pool so
    concurrent serving workers never share (or re-allocate) them.
    """

    def __init__(self, ops: list[tuple]) -> None:
        if not any(op[0] in (_DENSE, _HEAD) for op in ops):
            raise ModelError("fused network has no linear layers")
        self.ops = ops
        self._pools = threading.local()

    def __getstate__(self) -> dict:
        # Scratch buffers are per-process ephemera; a pickled model
        # (ModelStore disk roundtrip, pmap workers) re-warms its own.
        state = self.__dict__.copy()
        del state["_pools"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pools = threading.local()

    # ------------------------------------------------------------------
    def _buffers(self, batch: int) -> list[np.ndarray]:
        pools = getattr(self._pools, "by_batch", None)
        if pools is None:
            pools = self._pools.by_batch = {}
        bufs = pools.get(batch)
        if bufs is None:
            bufs = [
                np.empty((batch, op[1].shape[1]), dtype=np.float32)
                for op in self.ops
                if op[0] in (_DENSE, _HEAD)
            ]
            pools[batch] = bufs
        return bufs

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Forward pass; returns float64 ``(batch, out)`` parameters."""
        x = np.ascontiguousarray(features, dtype=np.float32)
        if x.ndim != 2:
            raise ModelError("fused MLP expects a 2-D feature matrix")
        bufs = self._buffers(x.shape[0])
        k = 0
        out = x
        owned = False  # never mutate the caller's array in place
        for op in self.ops:
            if op[0] == _ACT:
                if not owned:
                    out = out.copy()
                    owned = True
                _apply_activation(op[1], out)
                continue
            _, weight, bias = op
            buf = bufs[k]
            k += 1
            np.matmul(out, weight, out=buf)
            buf += bias
            out = buf
            owned = True
            if op[0] == _HEAD:
                head = np.empty((out.shape[0], 2), dtype=np.float64)
                head[:, 0] = -_softplus32(out[:, 0])
                head[:, 1] = out[:, 1]
                return head
        return out.astype(np.float64)

    def num_parameters(self) -> int:
        return int(
            sum(
                op[1].size + op[2].size
                for op in self.ops
                if op[0] in (_DENSE, _HEAD)
            )
        )


def compile_network(network) -> FusedMLP:
    """Fuse a ``repro.ml.nn`` module stack into a :class:`FusedMLP`.

    Understands ``Sequential`` (recursively), ``Dense``, ``Activation``
    and ``PCCParameterHead``; anything else raises :class:`ModelError`
    so callers can fall back to the autograd reference path.
    """
    from repro.ml.nn import Activation, Dense, PCCParameterHead, Sequential

    ops: list[tuple] = []

    def visit(module) -> None:
        if isinstance(module, Sequential):
            for child in module.modules:
                visit(child)
        elif isinstance(module, Dense):
            ops.append(
                (
                    _DENSE,
                    np.ascontiguousarray(module.weight.data, dtype=np.float32),
                    np.ascontiguousarray(module.bias.data, dtype=np.float32),
                )
            )
        elif isinstance(module, Activation):
            if module.name not in _ACTIVATIONS:  # pragma: no cover
                raise ModelError(f"cannot fuse activation {module.name!r}")
            ops.append((_ACT, module.name))
        elif isinstance(module, PCCParameterHead):
            ops.append(
                (
                    _HEAD,
                    np.ascontiguousarray(
                        module.linear.weight.data, dtype=np.float32
                    ),
                    np.ascontiguousarray(
                        module.linear.bias.data, dtype=np.float32
                    ),
                )
            )
        else:
            raise ModelError(
                f"cannot fuse module of type {type(module).__name__}"
            )

    visit(network)
    if ops and any(op[0] == _HEAD for op in ops[:-1]):
        raise ModelError("PCC parameter head must be the final module")
    return FusedMLP(ops)
