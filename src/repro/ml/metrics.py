"""Evaluation metrics used throughout Section 5."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError

__all__ = [
    "mean_absolute_error",
    "median_absolute_percentage_error",
    "mean_absolute_percentage_error",
    "fraction_non_increasing",
]


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ModelError("prediction and target shapes differ")
    if y_true.size == 0:
        raise ModelError("cannot compute a metric over zero samples")
    return y_true, y_pred


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain MAE; used for the curve-parameter comparison (Tables 4-6)."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def median_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray
) -> float:
    """Median of ``|pred - true| / true`` in percent (the "Median AE")."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if np.any(y_true <= 0):
        raise ModelError("percentage errors require positive targets")
    return float(np.median(np.abs(y_pred - y_true) / y_true) * 100.0)


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of ``|pred - true| / true`` in percent."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if np.any(y_true <= 0):
        raise ModelError("percentage errors require positive targets")
    return float(np.mean(np.abs(y_pred - y_true) / y_true) * 100.0)


def fraction_non_increasing(curves: list[np.ndarray], tolerance: float = 0.0) -> float:
    """Share of predicted PCCs that are monotonically non-increasing.

    Each curve is a run-time vector over an increasing token grid. A curve
    counts as non-increasing when every successive step decreases or
    increases by at most ``tolerance`` (fractional; Section 5.1 uses 10%
    for the flighted ground truth, 0 for model predictions).
    """
    if not curves:
        raise ModelError("no curves given")
    good = 0
    for curve in curves:
        values = np.asarray(curve, dtype=float)
        if values.size < 2:
            good += 1
            continue
        ratios = values[1:] / values[:-1]
        if np.all(ratios <= 1.0 + tolerance):
            good += 1
    return good / len(curves)
