"""A small reverse-mode automatic differentiation engine on numpy.

This is the substrate under the NN and GNN models: the paper trains its
networks with custom composite loss functions (LF1-LF3, Section 4.5) whose
gradients flow through the power-law PCC itself, so a general autodiff
tape is much cleaner than hand-derived gradients.

Design: a :class:`Tensor` wraps an ``ndarray``, records its parents and a
backward closure when produced by an operation, and ``backward()`` walks
the tape in reverse topological order. Broadcasting is supported by
summing gradients back over broadcast axes. Matmul supports batched
operands (leading batch dimensions), which the GNN uses for padded graph
batches.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ModelError

__all__ = ["Tensor", "tensor", "concat", "maximum", "where"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data: np.ndarray | float | list,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
        )

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise ModelError("tensor exponents are not supported; use exp/log")
        value = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(value, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data)
                                     if self.data.ndim == 2
                                     else grad * other.data)
                else:
                    self._accumulate(
                        _unbroadcast(
                            grad @ np.swapaxes(other.data, -1, -2),
                            self.data.shape,
                        )
                    )
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(
                        _unbroadcast(
                            np.swapaxes(self.data, -1, -2) @ grad,
                            other.data.shape,
                        )
                    )

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        return Tensor._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value**2))

        return Tensor._make(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        return Tensor._make(value, (self,), backward)

    def softplus(self) -> "Tensor":
        # Numerically stable log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
        value = np.maximum(self.data, 0.0) + np.log1p(np.exp(-np.abs(self.data)))
        sigma = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sigma)

        return Tensor._make(value, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(value, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(np.asarray(grad), axis1, axis2))

        return Tensor._make(np.swapaxes(self.data, axis1, axis2), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # backprop driver
    # ------------------------------------------------------------------
    def backward(self) -> None:
        """Backpropagate from this (scalar) tensor through the tape."""
        if self.data.size != 1:
            raise ModelError("backward() requires a scalar loss tensor")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None


def _as_tensor(value: "Tensor | float | np.ndarray") -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    if not tensors:
        raise ModelError("concat requires at least one tensor")
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(end))
                t._accumulate(grad[tuple(index)])

    value = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    return Tensor(
        value,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward=backward if requires else None,
    )


def maximum(a: Tensor, b: "Tensor | float") -> Tensor:
    """Elementwise maximum; gradient flows to the winning operand."""
    b = _as_tensor(b)
    mask = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if a.requires_grad:
            a._accumulate(grad * mask)
        if b.requires_grad:
            b._accumulate(grad * ~mask)

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select on a boolean ``condition`` array."""
    condition = np.asarray(condition, dtype=bool)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if a.requires_grad:
            a._accumulate(grad * condition)
        if b.requires_grad:
            b._accumulate(grad * ~condition)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)
