"""Gradient-boosted regression trees (XGBoost stand-in)."""

from repro.ml.gbm.booster import BoosterParams, GradientBoostingRegressor
from repro.ml.gbm.objectives import (
    GammaDeviance,
    Objective,
    PinballLoss,
    SquaredError,
)
from repro.ml.gbm.tree import BinMapper, RegressionTree, TreeParams

__all__ = [
    "BoosterParams",
    "GradientBoostingRegressor",
    "Objective",
    "SquaredError",
    "GammaDeviance",
    "PinballLoss",
    "BinMapper",
    "RegressionTree",
    "TreeParams",
]
