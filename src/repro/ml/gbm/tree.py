"""Histogram-based regression trees for Newton boosting.

One tree of the booster: features are pre-binned into a small number of
quantile bins, and split finding scans per-feature gradient/hessian
histograms — the same design as XGBoost's ``hist`` tree method. Split
gain uses the standard second-order formula

    gain = 1/2 * [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda)
                   - G^2/(H+lambda) ] - gamma

and leaf weights are ``-G / (H + lambda)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError

__all__ = ["BinMapper", "TreeParams", "RegressionTree"]


class BinMapper:
    """Maps continuous features to small integer bins via quantiles."""

    def __init__(self, max_bins: int = 64) -> None:
        if not 2 <= max_bins <= 256:
            raise ModelError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self.bin_edges_: list[np.ndarray] | None = None

    def fit(self, features: np.ndarray) -> "BinMapper":
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ModelError("features must be a 2-D matrix")
        edges = []
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for column in features.T:
            unique = np.unique(column)
            if unique.size <= 1:
                edges.append(np.empty(0))
            elif unique.size <= self.max_bins:
                midpoints = (unique[1:] + unique[:-1]) / 2.0
                edges.append(midpoints)
            else:
                cut = np.unique(np.quantile(column, quantiles))
                edges.append(cut)
        self.bin_edges_ = edges
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.bin_edges_ is None:
            raise ModelError("BinMapper used before fit")
        features = np.asarray(features, dtype=float)
        binned = np.empty(features.shape, dtype=np.uint8)
        for j, edges in enumerate(self.bin_edges_):
            if edges.size == 0:
                binned[:, j] = 0
            else:
                binned[:, j] = np.searchsorted(edges, features[:, j], side="left")
        return binned

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    @property
    def num_bins(self) -> int:
        return self.max_bins


@dataclass(frozen=True)
class TreeParams:
    """Growth hyper-parameters of one tree."""

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_samples_leaf: int = 1

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if self.reg_lambda < 0 or self.gamma < 0:
            raise ModelError("regularisation must be non-negative")


class RegressionTree:
    """A single second-order regression tree over binned features.

    Stored as flat arrays (children indices, split feature/bin, leaf
    values) for fast vectorised prediction.
    """

    def __init__(self, params: TreeParams) -> None:
        self.params = params
        self._feature: list[int] = []
        self._bin_threshold: list[int] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        feature_indices: np.ndarray | None = None,
        num_bins: int = 256,
    ) -> "RegressionTree":
        """Grow the tree on pre-binned features.

        ``feature_indices`` optionally restricts the candidate split
        features (column subsampling).
        """
        if binned.ndim != 2:
            raise ModelError("binned features must be 2-D")
        n_samples, n_features = binned.shape
        if grad.shape != (n_samples,) or hess.shape != (n_samples,):
            raise ModelError("gradient/hessian shapes do not match features")
        if feature_indices is None:
            feature_indices = np.arange(n_features)

        rows = np.arange(n_samples)
        self._num_bins = int(num_bins)
        self._grow(binned, grad, hess, rows, feature_indices, depth=0)
        return self

    def _new_node(self) -> int:
        self._feature.append(-1)
        self._bin_threshold.append(-1)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _grow(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        feature_indices: np.ndarray,
        depth: int,
    ) -> int:
        node = self._new_node()
        g_total = float(grad[rows].sum())
        h_total = float(hess[rows].sum())
        params = self.params

        leaf_value = -g_total / (h_total + params.reg_lambda)
        if depth >= params.max_depth or rows.size < 2 * params.min_samples_leaf:
            self._value[node] = leaf_value
            return node

        split = self._best_split(
            binned, grad, hess, rows, feature_indices, g_total, h_total
        )
        if split is None:
            self._value[node] = leaf_value
            return node

        feature, threshold = split
        mask = binned[rows, feature] <= threshold
        left_rows = rows[mask]
        right_rows = rows[~mask]

        self._feature[node] = int(feature)
        self._bin_threshold[node] = int(threshold)
        left = self._grow(binned, grad, hess, left_rows, feature_indices, depth + 1)
        right = self._grow(binned, grad, hess, right_rows, feature_indices, depth + 1)
        self._left[node] = left
        self._right[node] = right
        return node

    def _best_split(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        feature_indices: np.ndarray,
        g_total: float,
        h_total: float,
    ) -> tuple[int, int] | None:
        params = self.params
        lam = params.reg_lambda
        parent_score = g_total**2 / (h_total + lam)

        node_bins = binned[np.ix_(rows, feature_indices)].astype(np.int64)
        node_grad = grad[rows]
        node_hess = hess[rows]
        num_bins = self._num_bins
        n_feat = feature_indices.size

        # One flat bincount builds the histograms of every candidate
        # feature at once: sample s, feature f lands in bucket
        # bin(s, f) * n_feat + f.
        flat = (node_bins * n_feat + np.arange(n_feat)).ravel()
        length = num_bins * n_feat
        g_hist = np.bincount(
            flat, weights=np.repeat(node_grad, n_feat), minlength=length
        ).reshape(num_bins, n_feat)
        h_hist = np.bincount(
            flat, weights=np.repeat(node_hess, n_feat), minlength=length
        ).reshape(num_bins, n_feat)
        c_hist = np.bincount(flat, minlength=length).reshape(num_bins, n_feat)

        g_left = np.cumsum(g_hist, axis=0)[:-1]
        h_left = np.cumsum(h_hist, axis=0)[:-1]
        c_left = np.cumsum(c_hist, axis=0)[:-1]
        g_right = g_total - g_left
        h_right = h_total - h_left
        c_right = rows.size - c_left

        valid = (
            (h_left >= params.min_child_weight)
            & (h_right >= params.min_child_weight)
            & (c_left >= params.min_samples_leaf)
            & (c_right >= params.min_samples_leaf)
        )
        if not np.any(valid):
            return None
        gains = 0.5 * (
            g_left**2 / (h_left + lam)
            + g_right**2 / (h_right + lam)
            - parent_score
        ) - params.gamma
        gains = np.where(valid, gains, -np.inf)
        best_bin, best_pos = np.unravel_index(np.argmax(gains), gains.shape)
        if gains[best_bin, best_pos] <= 0.0:
            return None
        return (int(feature_indices[best_pos]), int(best_bin))

    # ------------------------------------------------------------------
    def predict(self, binned: np.ndarray) -> np.ndarray:
        """Raw-score contribution of this tree for each sample."""
        if not self._value:
            raise ModelError("tree used before fit")
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._bin_threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        nodes = np.zeros(binned.shape[0], dtype=np.int64)
        active = feature[nodes] >= 0
        while np.any(active):
            idx = np.nonzero(active)[0]
            current = nodes[idx]
            go_left = binned[idx, feature[current]] <= threshold[current]
            nodes[idx] = np.where(go_left, left[current], right[current])
            active = feature[nodes] >= 0
        return value[nodes]

    def flat_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(feature, bin_threshold, left, right, value)`` node arrays.

        The raw flattened layout consumed by
        :class:`~repro.ml.compiled.FlattenedForest`; leaves have
        ``feature == -1`` exactly as stored internally.
        """
        if not self._value:
            raise ModelError("tree used before fit")
        return (
            np.asarray(self._feature, dtype=np.int64),
            np.asarray(self._bin_threshold, dtype=np.int64),
            np.asarray(self._left, dtype=np.int64),
            np.asarray(self._right, dtype=np.int64),
            np.asarray(self._value, dtype=np.float64),
        )

    @property
    def num_nodes(self) -> int:
        return len(self._value)

    @property
    def num_leaves(self) -> int:
        return sum(1 for f in self._feature if f < 0)
