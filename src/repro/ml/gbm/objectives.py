"""Boosting objectives (first/second-order gradients).

The booster optimises in *raw score* space; objectives define the link
between raw scores and predictions and supply the per-sample gradient and
hessian of the loss with respect to the raw score. The paper trains
"XGBoost with Gamma regression trees" for run-time prediction —
:class:`GammaDeviance` reproduces ``reg:gamma`` (log link, gamma negative
log-likelihood), which is natural for positive, right-skewed run times.

:class:`PinballLoss` adds quantile regression on the same log link:
fitting it at q10/q50/q90 turns the run-time booster into an interval
predictor ("Runtime Variation in Big Data Analytics" shows run times are
distributions, not points). Quantiles are preserved under monotone maps,
so the q-th quantile of ``log(runtime)`` maps through ``exp`` to the
q-th quantile of ``runtime`` — fitting in log space costs nothing in
quantile semantics and keeps the positive, right-skewed response well
conditioned (see ``docs/uncertainty.md``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ModelError

__all__ = ["Objective", "SquaredError", "GammaDeviance", "PinballLoss"]


class Objective(ABC):
    """Defines link, inverse link, and loss derivatives."""

    @abstractmethod
    def base_score(self, y: np.ndarray) -> float:
        """Initial raw score minimising the loss with no features."""

    @abstractmethod
    def gradients(
        self, y: np.ndarray, raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample (gradient, hessian) of the loss wrt the raw score."""

    @abstractmethod
    def predict(self, raw: np.ndarray) -> np.ndarray:
        """Map raw scores to the response scale."""

    def validate_targets(self, y: np.ndarray) -> None:
        """Raise if the targets are unusable for this objective."""


class SquaredError(Objective):
    """Ordinary least squares; identity link."""

    def base_score(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def gradients(
        self, y: np.ndarray, raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return raw - y, np.ones_like(y)

    def predict(self, raw: np.ndarray) -> np.ndarray:
        return raw


class GammaDeviance(Objective):
    """Gamma negative log-likelihood with a log link (``reg:gamma``).

    With ``mu = exp(raw)`` and unit shape, the relevant part of the
    deviance is ``raw + y * exp(-raw)``; hence

    * gradient  = ``1 - y * exp(-raw)``
    * hessian   = ``y * exp(-raw)``
    """

    def validate_targets(self, y: np.ndarray) -> None:
        if np.any(np.asarray(y) <= 0):
            raise ModelError("gamma regression requires strictly positive targets")

    def base_score(self, y: np.ndarray) -> float:
        self.validate_targets(y)
        return float(np.log(np.mean(y)))

    def gradients(
        self, y: np.ndarray, raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        exp_neg = np.exp(-np.clip(raw, -60, 60)) * y
        return 1.0 - exp_neg, exp_neg

    def predict(self, raw: np.ndarray) -> np.ndarray:
        return np.exp(np.clip(raw, -60, 60))


class PinballLoss(Objective):
    """Quantile (pinball) loss on ``log(y)`` with a log link.

    With ``u = log(y) - raw`` the pinball loss at quantile ``q`` is
    ``L = max(q * u, (q - 1) * u)``; its subgradient with respect to the
    raw score is

    * gradient = ``1[raw > log(y)] - q``  (``-q`` on the kink),
    * hessian  = ``1`` (the loss is piecewise linear; a unit surrogate
      turns the Newton step into a plain gradient step, the standard
      boosting treatment of quantile objectives).

    The base score is the empirical q-quantile of ``log(y)``, the raw
    score minimising the loss with no features.
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ModelError("pinball quantile must be inside (0, 1)")
        self.quantile = float(quantile)

    def validate_targets(self, y: np.ndarray) -> None:
        if np.any(np.asarray(y) <= 0):
            raise ModelError(
                "pinball regression (log link) requires strictly "
                "positive targets"
            )

    def base_score(self, y: np.ndarray) -> float:
        self.validate_targets(y)
        return float(np.quantile(np.log(y), self.quantile))

    def gradients(
        self, y: np.ndarray, raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        over = raw > np.log(y)
        return over.astype(float) - self.quantile, np.ones_like(raw)

    def predict(self, raw: np.ndarray) -> np.ndarray:
        return np.exp(np.clip(raw, -60, 60))
