"""Newton gradient boosting over histogram trees (the XGBoost stand-in)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml import compiled as compiled_kernels
from repro.ml.compiled import FlattenedForest
from repro.ml.gbm.objectives import (
    GammaDeviance,
    Objective,
    PinballLoss,
    SquaredError,
)
from repro.ml.gbm.tree import BinMapper, RegressionTree, TreeParams

__all__ = ["BoosterParams", "GradientBoostingRegressor"]


@dataclass(frozen=True)
class BoosterParams:
    """Booster hyper-parameters (XGBoost naming)."""

    n_estimators: int = 100
    learning_rate: float = 0.1
    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    subsample: float = 1.0
    colsample: float = 1.0
    max_bins: int = 64
    early_stopping_rounds: int | None = None

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ModelError("n_estimators must be positive")
        if not 0 < self.learning_rate <= 1:
            raise ModelError("learning_rate must be in (0, 1]")
        if not 0 < self.subsample <= 1 or not 0 < self.colsample <= 1:
            raise ModelError("subsample/colsample must be in (0, 1]")


class GradientBoostingRegressor:
    """Second-order gradient boosting with a pluggable objective.

    ``objective`` accepts ``"gamma"`` (the paper's choice for run-time
    regression — positive, right-skewed targets), ``"squared_error"``,
    ``"pinball"`` (median regression; pass a
    :class:`~repro.ml.gbm.objectives.PinballLoss` instance for other
    quantiles), or any :class:`Objective` instance.
    """

    def __init__(
        self,
        params: BoosterParams | None = None,
        objective: str | Objective = "gamma",
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        self.params = params or BoosterParams()
        if isinstance(objective, Objective):
            self.objective = objective
        elif objective == "gamma":
            self.objective = GammaDeviance()
        elif objective == "squared_error":
            self.objective = SquaredError()
        elif objective == "pinball":
            self.objective = PinballLoss(0.5)
        else:
            raise ModelError(f"unknown objective: {objective!r}")
        self._seed = seed
        self._trees: list[RegressionTree] = []
        self._mapper: BinMapper | None = None
        self._base_score = 0.0
        #: Route inference through the flattened branchless kernel
        #: (bit-identical to the reference traversal); flip to False —
        #: or use ``repro.ml.compiled.override(False)`` — to fall back.
        self.use_compiled = use_compiled
        self._compiled: FlattenedForest | None = None
        self.train_scores_: list[float] = []
        self.valid_scores_: list[float] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GradientBoostingRegressor":
        """Fit the booster; optionally track a validation set.

        With ``early_stopping_rounds`` set and an ``eval_set`` given,
        training stops once the validation MAE has not improved for that
        many rounds and the tree list is truncated to the best round.
        """
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ModelError("features/targets shape mismatch")
        self.objective.validate_targets(targets)

        params = self.params
        rng = np.random.default_rng(self._seed)
        self._mapper = BinMapper(params.max_bins)
        binned = self._mapper.fit_transform(features)
        n_samples, n_features = binned.shape

        self._base_score = self.objective.base_score(targets)
        raw = np.full(n_samples, self._base_score)
        self._trees = []
        self._compiled = None  # refit invalidates the flattened kernel
        self.train_scores_ = []
        self.valid_scores_ = []

        if eval_set is not None:
            valid_binned = self._mapper.transform(np.asarray(eval_set[0], dtype=float))
            valid_targets = np.asarray(eval_set[1], dtype=float)
            valid_raw = np.full(valid_targets.shape[0], self._base_score)
        best_round = -1
        best_score = np.inf

        tree_params = TreeParams(
            max_depth=params.max_depth,
            min_child_weight=params.min_child_weight,
            reg_lambda=params.reg_lambda,
            gamma=params.gamma,
        )

        for round_index in range(params.n_estimators):
            grad, hess = self.objective.gradients(targets, raw)

            if params.subsample < 1.0:
                keep = rng.random(n_samples) < params.subsample
                if not np.any(keep):
                    keep[rng.integers(n_samples)] = True
                grad = np.where(keep, grad, 0.0)
                hess = np.where(keep, hess, 0.0)

            if params.colsample < 1.0:
                k = max(1, int(round(params.colsample * n_features)))
                feature_indices = np.sort(
                    rng.choice(n_features, size=k, replace=False)
                )
            else:
                feature_indices = None

            tree = RegressionTree(tree_params)
            tree.fit(binned, grad, hess, feature_indices, num_bins=params.max_bins)
            self._trees.append(tree)
            raw = raw + params.learning_rate * tree.predict(binned)

            train_mae = float(
                np.abs(self.objective.predict(raw) - targets).mean()
            )
            self.train_scores_.append(train_mae)

            if eval_set is not None:
                valid_raw = valid_raw + params.learning_rate * tree.predict(
                    valid_binned
                )
                valid_mae = float(
                    np.abs(self.objective.predict(valid_raw) - valid_targets).mean()
                )
                self.valid_scores_.append(valid_mae)
                if valid_mae < best_score - 1e-12:
                    best_score = valid_mae
                    best_round = round_index
                elif (
                    params.early_stopping_rounds is not None
                    and round_index - best_round >= params.early_stopping_rounds
                ):
                    self._trees = self._trees[: best_round + 1]
                    break
        return self

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict on the response scale (e.g. seconds for run times)."""
        return self.objective.predict(self.predict_raw(features))

    def predict_raw(self, features: np.ndarray) -> np.ndarray:
        """Predict raw scores (log space for the gamma objective).

        Routed through the flattened
        :class:`~repro.ml.compiled.FlattenedForest` kernel (compiled
        lazily on first predict, dropped on refit) unless compiled
        inference is disabled; both paths are bit-identical.
        """
        if self._mapper is None or not self._trees:
            raise NotFittedError("booster used before fit")
        features = np.asarray(features, dtype=float)
        binned = self._mapper.transform(features)
        if self.use_compiled and compiled_kernels.is_enabled():
            return self.compiled_forest().predict_raw(binned, self._base_score)
        return self._predict_raw_binned_reference(binned)

    def predict_reference(self, features: np.ndarray) -> np.ndarray:
        """Response-scale prediction via the per-tree python traversal.

        The pre-kernel semantics, kept as the unit under the
        differential test harness.
        """
        return self.objective.predict(self.predict_raw_reference(features))

    def predict_raw_reference(self, features: np.ndarray) -> np.ndarray:
        """Raw-score prediction via the per-tree python traversal."""
        if self._mapper is None or not self._trees:
            raise NotFittedError("booster used before fit")
        features = np.asarray(features, dtype=float)
        return self._predict_raw_binned_reference(
            self._mapper.transform(features)
        )

    def _predict_raw_binned_reference(self, binned: np.ndarray) -> np.ndarray:
        raw = np.full(binned.shape[0], self._base_score)
        for tree in self._trees:
            raw = raw + self.params.learning_rate * tree.predict(binned)
        return raw

    def compiled_forest(self) -> FlattenedForest:
        """The lazily built flattened ensemble (compiles on first use)."""
        if self._mapper is None or not self._trees:
            raise NotFittedError("booster used before fit")
        if self._compiled is None:
            self._compiled = FlattenedForest.from_trees(
                [tree.flat_arrays() for tree in self._trees],
                self.params.learning_rate,
            )
        return self._compiled

    @property
    def num_trees(self) -> int:
        return len(self._trees)
