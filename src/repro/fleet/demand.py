"""Demand and grant types for cluster-level token allocation.

A :class:`JobDemand` is what one job brings to the global allocator: its
predicted PCC (the per-job knowledge TASQ already produces at compile
time) plus the bounds the platform is willing to honor — a floor below
which the job should not be squeezed (e.g. a slowdown SLO) and a ceiling
(typically the user's requested allocation). The allocator answers with
a :class:`FleetAllocation`: one integer :class:`TokenGrant` per job whose
sum never exceeds the cluster cap.

**Point-estimate assumption, made explicit.** ``pcc`` is the *median*
predicted curve; every marginal-gain comparison the policies make treats
it as exact, so two jobs with equal medians but wildly different
prediction spread look identical to the allocator. A demand may
therefore also carry the model's full predicted interval
(``pcc_interval`` — the q10/q50/q90 curves). Policies that enforce hard
promises (deadlines) can then work against a risk quantile of the
run-time distribution via
:class:`~repro.fleet.allocator.DeadlineAwarePolicy`'s ``risk=`` knob
instead of the median; policies that only rank marginal gains keep using
``pcc`` unchanged (see ``docs/uncertainty.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FleetError
from repro.fleet.candidates import CandidateGrid
from repro.pcc.curve import PowerLawPCC
from repro.pcc.intervals import PCCInterval

__all__ = ["JobDemand", "TokenGrant", "FleetAllocation"]


@dataclass(frozen=True)
class JobDemand:
    """One job's stake in the shared token pool.

    Parameters
    ----------
    pcc:
        The job's predicted performance characteristic curve. Must be
        non-increasing — the allocator reasons about marginal run-time
        improvement per token, which an increasing curve does not have.
    min_tokens, max_tokens:
        Grant bounds. ``min_tokens`` is the protective floor (the job is
        never squeezed below it); ``max_tokens`` is usually the requested
        allocation (granting more than asked wastes budget).
    deadline:
        Optional run-time bound in seconds; only the deadline-aware
        policy reads it.
    grid:
        Optional precomputed candidate grid (e.g. AREPAS-backed); the
        knapsack policy uses it instead of sampling the PCC.
    pcc_interval:
        Optional predicted q10/q50/q90 curves around ``pcc``. Read only
        by risk-aware policies; when None (or degenerate) every policy
        behaves exactly as with the point estimate.
    """

    job_id: str
    pcc: PowerLawPCC
    min_tokens: int = 1
    max_tokens: int = 256
    deadline: float | None = None
    grid: CandidateGrid | None = None
    pcc_interval: PCCInterval | None = None

    def __post_init__(self) -> None:
        if self.min_tokens < 1:
            raise FleetError("demand floor must be at least one token")
        if self.max_tokens < self.min_tokens:
            raise FleetError(
                f"demand ceiling {self.max_tokens} below floor "
                f"{self.min_tokens} for {self.job_id}"
            )
        if not self.pcc.is_non_increasing:
            raise FleetError(
                "global allocation needs a non-increasing PCC "
                f"(job {self.job_id} has a={self.pcc.a:+.3f})"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise FleetError("deadlines must be positive")


@dataclass(frozen=True)
class TokenGrant:
    """The allocator's decision for one job."""

    job_id: str
    tokens: int
    predicted_runtime: float


@dataclass(frozen=True)
class FleetAllocation:
    """One global allocation round: every job's grant under one cap."""

    grants: tuple[TokenGrant, ...]
    cap: int
    policy: str

    @property
    def total_tokens(self) -> int:
        return sum(g.tokens for g in self.grants)

    @property
    def spare_tokens(self) -> int:
        return self.cap - self.total_tokens

    def by_job(self) -> dict[str, TokenGrant]:
        return {g.job_id: g for g in self.grants}
