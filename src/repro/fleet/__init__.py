"""Cluster-level global token allocation under a shared budget.

Turns the per-job TASQ recommender into a cluster resource manager (the
LeJOT direction): a :class:`GlobalAllocator` divides a cluster-wide
token cap across concurrent jobs from their predicted PCCs, a
:class:`FleetScheduler` admits jobs with allocator-chosen grants and
redistributes released tokens, and :func:`compare_policies` measures
cluster-wide makespan / wait / token-hours against the per-job TASQ and
Default/Peak baselines. See ``docs/fleet.md``.
"""

from repro.fleet.allocator import (
    POLICY_NAMES,
    AllocationPolicy,
    DeadlineAwarePolicy,
    GlobalAllocator,
    KnapsackPolicy,
    WaterFillingPolicy,
    make_policy,
)
from repro.fleet.candidates import (
    CandidateGrid,
    pcc_grids,
    skyline_grid,
    token_grid,
)
from repro.fleet.demand import FleetAllocation, JobDemand, TokenGrant
from repro.fleet.evaluation import (
    BASELINE_NAMES,
    FleetComparison,
    PolicyOutcome,
    build_demands,
    compare_policies,
    score_usable,
)
from repro.fleet.scheduler import (
    ADMISSION_ORDERS,
    FleetJob,
    FleetReport,
    FleetScheduler,
    FleetStream,
)

__all__ = [
    "JobDemand",
    "TokenGrant",
    "FleetAllocation",
    "CandidateGrid",
    "token_grid",
    "pcc_grids",
    "skyline_grid",
    "AllocationPolicy",
    "WaterFillingPolicy",
    "KnapsackPolicy",
    "DeadlineAwarePolicy",
    "make_policy",
    "POLICY_NAMES",
    "GlobalAllocator",
    "FleetJob",
    "FleetReport",
    "FleetScheduler",
    "FleetStream",
    "ADMISSION_ORDERS",
    "PolicyOutcome",
    "FleetComparison",
    "build_demands",
    "score_usable",
    "compare_policies",
    "BASELINE_NAMES",
]
