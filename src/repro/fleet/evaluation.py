"""Cluster-wide evaluation: global policies vs. per-job baselines.

Replays one arrival stream of historical jobs through the shared token
pool under every allocation regime the repo knows:

* **default** — jobs hold their user-requested tokens (the paper's
  over-allocation status quo);
* **peak** — jobs hold exactly their observed peak usage (a clairvoyant
  per-job baseline: no slowdown, minimal holding);
* **tasq** — per-job TASQ recommendations, each job optimized in
  isolation (the motivation benchmark's treatment arm);
* **fleet/<policy>** — the :class:`~repro.fleet.scheduler.FleetScheduler`
  grants tokens globally from the predicted PCCs under the cap.

Granted allocations are replayed against each job's *observed* skyline
through AREPAS, so every regime pays its true run-time cost while the
allocator only ever sees predictions — the same information asymmetry
the production system faces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.arepas.simulator import AREPAS
from repro.exceptions import FittingError, FleetError
from repro.fleet.demand import JobDemand
from repro.fleet.scheduler import FleetJob, FleetScheduler
from repro.pcc.optimal import tokens_for_slowdown
from repro.scope.cluster import ClusterQueue, QueuedJob, QueueReport
from repro.scope.repository import TelemetryRecord
from repro.tasq.pipeline import TokenRecommendation

__all__ = [
    "PolicyOutcome",
    "FleetComparison",
    "build_demands",
    "score_usable",
    "compare_policies",
    "BASELINE_NAMES",
]

BASELINE_NAMES = ("default", "peak", "tasq")


@dataclass(frozen=True)
class PolicyOutcome:
    """Cluster-level metrics for one allocation regime."""

    name: str
    makespan: float
    mean_wait: float
    p95_wait: float
    mean_turnaround: float
    total_token_seconds: float
    utilization: float

    @classmethod
    def from_report(cls, name: str, report: QueueReport) -> "PolicyOutcome":
        return cls(
            name=name,
            makespan=report.makespan,
            mean_wait=report.mean_wait,
            p95_wait=report.p95_wait,
            mean_turnaround=report.mean_turnaround,
            total_token_seconds=report.total_token_seconds,
            utilization=report.utilization,
        )

    def to_json(self) -> dict[str, float]:
        return {
            "makespan_s": self.makespan,
            "mean_wait_s": self.mean_wait,
            "p95_wait_s": self.p95_wait,
            "mean_turnaround_s": self.mean_turnaround,
            "total_token_seconds": self.total_token_seconds,
            "utilization": self.utilization,
        }


@dataclass(frozen=True)
class FleetComparison:
    """Every regime's outcome on one seeded arrival stream."""

    outcomes: tuple[PolicyOutcome, ...]
    capacity: int
    jobs: int
    seed: int

    def get(self, name: str) -> PolicyOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise FleetError(f"no outcome named {name!r}")

    def to_json(self) -> dict:
        return {
            "capacity_tokens": self.capacity,
            "jobs": self.jobs,
            "seed": self.seed,
            "policies": {o.name: o.to_json() for o in self.outcomes},
        }

    def render(self) -> str:
        header = (
            f"{'policy':<22} {'makespan':>10} {'mean wait':>10} "
            f"{'p95 wait':>10} {'tok-sec':>12} {'util':>6}"
        )
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            lines.append(
                f"{o.name:<22} {o.makespan:>10,.0f} {o.mean_wait:>10,.0f} "
                f"{o.p95_wait:>10,.0f} {o.total_token_seconds:>12,.0f} "
                f"{o.utilization:>6.0%}"
            )
        return "\n".join(lines)


def build_demands(
    records: list[TelemetryRecord],
    recommendations: list[TokenRecommendation],
    slowdown_floor: float = 0.25,
    deadline_slack: float | None = None,
) -> list[JobDemand]:
    """Fleet demands from predicted PCCs, floored by a slowdown SLO.

    Each job may be squeezed down to the smallest allocation whose
    *predicted* slowdown versus the requested tokens stays within
    ``slowdown_floor``, and never granted more than it requested. With
    ``deadline_slack`` set, each job additionally carries a deadline of
    ``(1 + slack) x`` its predicted run time at the requested tokens.
    """
    demands = []
    for record, rec in zip(records, recommendations):
        floor = tokens_for_slowdown(
            rec.pcc, record.requested_tokens, slowdown_floor
        )
        floor = min(floor, record.requested_tokens)
        deadline = None
        if deadline_slack is not None:
            deadline = float(
                (1.0 + deadline_slack) * rec.predicted_runtime_at_requested
            )
        demands.append(
            JobDemand(
                job_id=record.job_id,
                pcc=rec.pcc,
                min_tokens=max(1, floor),
                max_tokens=record.requested_tokens,
                deadline=deadline,
            )
        )
    return demands


def score_usable(scorer, records):
    """Score records, dropping jobs whose predicted PCC is increasing.

    Some model families (notably the XGBoost power-law refit) can emit
    an *increasing* PCC for an odd job; the scoring pipeline rightly
    rejects those, but one such job should not sink a whole fleet
    study. The fast path scores the batch in one call and only falls
    back to per-job scoring (skipping the unusable) when it fails.

    Returns the kept records and their recommendations, aligned.
    """
    try:
        return records, scorer.score_batch(
            [r.plan for r in records],
            [r.requested_tokens for r in records],
        )
    except FittingError:
        pass
    kept, recommendations = [], []
    for record in records:
        try:
            recommendations.append(
                scorer.score(record.plan, record.requested_tokens)
            )
        except FittingError:
            continue
        kept.append(record)
    return kept, recommendations


def compare_policies(
    records: list[TelemetryRecord],
    recommendations: list[TokenRecommendation],
    capacity: int | None = None,
    policies: tuple[str, ...] = ("water_filling", "knapsack"),
    arrival_mean_s: float = 15.0,
    seed: int = 7,
    slowdown_floor: float = 0.25,
    deadline_slack: float | None = None,
    reallocate_running: bool = True,
) -> FleetComparison:
    """Run every regime over one seeded Poisson arrival stream."""
    if len(records) != len(recommendations):
        raise FleetError("records and recommendations must align")
    if not records:
        raise FleetError("nothing to compare")
    if capacity is None:
        capacity = max(r.requested_tokens for r in records)

    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(
        rng.exponential(arrival_mean_s, size=len(records))
    )
    simulator = AREPAS()

    def baseline_stream(tokens_for):
        return [
            QueuedJob(
                job_id=r.job_id,
                arrival_time=float(t),
                tokens=min(capacity, max(1, tokens_for(r))),
                runtime=float(r.runtime),
            )
            for r, t in zip(records, arrivals)
        ]

    queue = ClusterQueue(capacity=capacity)
    outcomes = [
        PolicyOutcome.from_report(
            "default",
            queue.run(baseline_stream(lambda r: r.requested_tokens)),
        ),
        PolicyOutcome.from_report(
            "peak",
            queue.run(
                baseline_stream(lambda r: int(np.ceil(r.peak_tokens)))
            ),
        ),
    ]

    tasq_stream = [
        QueuedJob(
            job_id=r.job_id,
            arrival_time=float(t),
            tokens=min(capacity, rec.optimal_tokens),
            runtime=float(
                simulator.runtime(
                    r.skyline, min(capacity, rec.optimal_tokens)
                )
            ),
        )
        for r, rec, t in zip(records, recommendations, arrivals)
    ]
    outcomes.append(
        PolicyOutcome.from_report("tasq", queue.run(tasq_stream))
    )

    demands = build_demands(
        records,
        recommendations,
        slowdown_floor=slowdown_floor,
        deadline_slack=deadline_slack,
    )
    demands = [
        dataclasses.replace(
            d,
            min_tokens=min(d.min_tokens, capacity),
            max_tokens=min(d.max_tokens, capacity),
        )
        for d in demands
    ]
    skylines = {r.job_id: r.skyline for r in records}
    fleet_jobs = [
        FleetJob(
            job_id=demand.job_id,
            arrival_time=float(t),
            demand=demand,
            runtime_fn=(
                lambda tokens, sky=skylines[demand.job_id]: float(
                    simulator.runtime(sky, tokens)
                )
            ),
        )
        for demand, t in zip(demands, arrivals)
    ]
    for policy in policies:
        scheduler = FleetScheduler(
            capacity,
            policy=policy,
            reallocate_running=reallocate_running,
        )
        outcomes.append(
            PolicyOutcome.from_report(
                f"fleet/{policy}", scheduler.run(fleet_jobs)
            )
        )

    return FleetComparison(
        outcomes=tuple(outcomes),
        capacity=capacity,
        jobs=len(records),
        seed=seed,
    )
