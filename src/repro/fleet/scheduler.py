"""Admission scheduling with allocator-chosen token grants.

:class:`FleetScheduler` extends the FCFS
:class:`~repro.scope.cluster.ClusterQueue` in one fundamental way: jobs
no longer arrive with a fixed token request. They arrive with a
*demand* (predicted PCC plus grant bounds) and the
:class:`~repro.fleet.allocator.GlobalAllocator` decides, at admission
time, how many tokens each admitted job actually gets — squeezing
grants when the pool is contended and spending spare tokens on faster
run times when it is not.

Re-allocation: whenever a completion releases tokens, the freed budget
is first offered to the queued jobs (FCFS, order-preserving, exactly
like the base queue) and — with ``reallocate_running=True`` — any still
idle tokens top up *running* jobs, shortening their remaining run time
proportionally to their PCC's predicted speed-up.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import ExecutionError, FleetError
from repro.fleet.allocator import AllocationPolicy, GlobalAllocator
from repro.fleet.demand import JobDemand
from repro.obs import trace
from repro.scope.cluster import ClusterQueue, QueueOutcome, QueueReport

__all__ = ["FleetJob", "FleetReport", "FleetScheduler"]


@dataclass(frozen=True)
class FleetJob:
    """One job submitted to the fleet scheduler.

    ``runtime_fn`` maps a granted token count to the job's *actual* run
    time (e.g. an AREPAS replay of the job's observed skyline). When
    omitted, the demand's predicted PCC stands in — useful for synthetic
    studies where prediction is taken to be perfect.
    """

    job_id: str
    arrival_time: float
    demand: JobDemand
    runtime_fn: Callable[[int], float] | None = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ExecutionError("arrival times must be non-negative")

    def runtime_at(self, tokens: int) -> float:
        runtime = (
            self.runtime_fn(tokens)
            if self.runtime_fn is not None
            else self.demand.pcc.runtime(tokens)
        )
        runtime = float(runtime)
        if runtime <= 0:
            raise ExecutionError(
                f"job {self.job_id} reported a non-positive run time"
            )
        return runtime


@dataclass(frozen=True)
class FleetReport(QueueReport):
    """Queue statistics plus fleet-level accounting."""

    policy: str
    #: Highest number of simultaneously committed tokens observed.
    peak_committed_tokens: int
    #: How many times running jobs were topped up from freed tokens.
    reallocations: int


@dataclass
class _Running:
    job: FleetJob
    tokens: int
    start: float
    finish: float
    version: int = 0
    #: Token-seconds accumulated at *previous* grant levels.
    held: float = 0.0
    #: When the current grant level took effect.
    last_change: float = 0.0


class FleetScheduler(ClusterQueue):
    """FCFS admission where the *allocator* chooses every grant.

    Parameters
    ----------
    capacity:
        Cluster-wide guaranteed-token pool (same semantics as the base
        queue).
    policy:
        Allocation policy instance or registry name; used to build the
        internal :class:`GlobalAllocator` unless ``allocator`` is given.
    reallocate_running:
        When True, tokens left idle after the queue drains are granted
        to running jobs, rescaling their remaining run time by the
        predicted speed-up of the bigger grant.
    """

    def __init__(
        self,
        capacity: int,
        policy: AllocationPolicy | str = "water_filling",
        allocator: GlobalAllocator | None = None,
        reallocate_running: bool = False,
    ) -> None:
        super().__init__(capacity)
        self.allocator = allocator or GlobalAllocator(capacity, policy)
        self.reallocate_running = reallocate_running

    def run(self, jobs: list[FleetJob]) -> FleetReport:  # type: ignore[override]
        """Simulate the stream with allocator-chosen grants."""
        if not jobs:
            raise ExecutionError("no jobs submitted")
        for job in jobs:
            if job.demand.min_tokens > self.capacity:
                raise ExecutionError(
                    f"job {job.job_id} needs at least "
                    f"{job.demand.min_tokens} tokens but the cluster only "
                    f"has {self.capacity}"
                )
        with trace.span(
            "fleet.schedule", jobs=len(jobs),
            policy=self.allocator.policy.name,
        ):
            return self._run(jobs)

    def _run(self, jobs: list[FleetJob]) -> FleetReport:
        arrivals = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        next_arrival = 0
        waiting: deque[FleetJob] = deque()
        running: dict[str, _Running] = {}
        # Lazy-deletion heap of (finish, version, job_id): re-allocation
        # shortens finish times, so stale entries are skipped on pop.
        finish_heap: list[tuple[float, int, str]] = []
        free = self.capacity
        clock = 0.0
        outcomes: list[QueueOutcome] = []
        peak_committed = 0
        reallocations = 0

        def release_finished(until: float) -> None:
            nonlocal free
            while finish_heap and finish_heap[0][0] <= until:
                finish, version, job_id = heapq.heappop(finish_heap)
                state = running.get(job_id)
                if state is None or state.version != version:
                    continue  # superseded by a re-allocation
                del running[job_id]
                free += state.tokens
                outcomes.append(
                    QueueOutcome(
                        job_id=job_id,
                        arrival_time=state.job.arrival_time,
                        start_time=state.start,
                        finish_time=state.finish,
                        tokens=state.tokens,
                        token_seconds=state.held
                        + state.tokens * (state.finish - state.last_change),
                    )
                )

        def next_finish() -> float | None:
            while finish_heap:
                finish, version, job_id = finish_heap[0]
                state = running.get(job_id)
                if state is None or state.version != version:
                    heapq.heappop(finish_heap)
                    continue
                return finish
            return None

        while next_arrival < len(arrivals) or running or waiting:
            if not running and not waiting:
                clock = max(clock, arrivals[next_arrival].arrival_time)
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].arrival_time <= clock
            ):
                waiting.append(arrivals[next_arrival])
                next_arrival += 1
            release_finished(clock)

            # Admit the longest FCFS prefix whose floors fit, and let
            # the allocator divide the free pool among exactly those
            # jobs (running jobs keep their guaranteed grants).
            admitted: list[FleetJob] = []
            needed = 0
            for job in waiting:
                if needed + job.demand.min_tokens > free:
                    break
                admitted.append(job)
                needed += job.demand.min_tokens
            if admitted:
                allocation = self.allocator.allocate(
                    [job.demand for job in admitted], cap=free
                )
                for job, grant in zip(admitted, allocation.grants):
                    waiting.popleft()
                    runtime = job.runtime_at(grant.tokens)
                    state = _Running(
                        job=job,
                        tokens=grant.tokens,
                        start=clock,
                        finish=clock + runtime,
                        last_change=clock,
                    )
                    running[job.job_id] = state
                    heapq.heappush(
                        finish_heap, (state.finish, 0, job.job_id)
                    )
                    free -= grant.tokens
            elif (
                self.reallocate_running
                and not waiting
                and running
                and free > 0
            ):
                reallocations += self._top_up_running(
                    running, finish_heap, clock, free
                )
                free = self.capacity - sum(
                    s.tokens for s in running.values()
                )

            peak_committed = max(peak_committed, self.capacity - free)
            if free < 0:
                raise FleetError("scheduler over-committed the pool")

            upcoming = []
            if next_arrival < len(arrivals):
                upcoming.append(arrivals[next_arrival].arrival_time)
            finish = next_finish()
            if finish is not None:
                upcoming.append(finish)
            if not upcoming:
                if waiting:
                    raise ExecutionError(
                        "deadlock: insufficient capacity with no "
                        "running jobs"
                    )
                break
            clock = max(clock, min(upcoming))

        release_finished(clock)
        return FleetReport(
            outcomes=tuple(
                sorted(outcomes, key=lambda o: (o.start_time, o.job_id))
            ),
            capacity=self.capacity,
            policy=self.allocator.policy.name,
            peak_committed_tokens=peak_committed,
            reallocations=reallocations,
        )

    def _top_up_running(
        self,
        running: dict[str, _Running],
        finish_heap: list[tuple[float, int, str]],
        clock: float,
        free: int,
    ) -> int:
        """Grant idle tokens to running jobs; returns jobs re-granted.

        A job that has held ``g`` tokens and would finish at ``f`` keeps
        its elapsed progress; the *remaining* run time is rescaled by
        the PCC-predicted speed-up ``runtime(g') / runtime(g)`` of the
        bigger grant ``g'``.
        """
        states = list(running.values())
        demands = []
        for state in states:
            if state.tokens >= state.job.demand.max_tokens:
                continue
            demands.append(
                JobDemand(
                    job_id=state.job.job_id,
                    pcc=state.job.demand.pcc,
                    min_tokens=state.tokens,
                    max_tokens=state.job.demand.max_tokens,
                )
            )
        if not demands:
            return 0
        committed = sum(s.tokens for s in states)
        allocation = self.allocator.allocate(
            demands, cap=free + sum(d.min_tokens for d in demands)
        )
        regranted = 0
        for grant in allocation.grants:
            state = running[grant.job_id]
            if grant.tokens <= state.tokens:
                continue
            speedup = state.job.demand.pcc.runtime(grant.tokens) / (
                state.job.demand.pcc.runtime(state.tokens)
            )
            remaining = max(0.0, state.finish - clock) * float(speedup)
            state.held += state.tokens * (clock - state.last_change)
            state.last_change = clock
            state.tokens = grant.tokens
            state.finish = clock + remaining
            state.version += 1
            heapq.heappush(
                finish_heap, (state.finish, state.version, grant.job_id)
            )
            regranted += 1
        return regranted
