"""Admission scheduling with allocator-chosen token grants.

:class:`FleetScheduler` extends the FCFS
:class:`~repro.scope.cluster.ClusterQueue` in one fundamental way: jobs
no longer arrive with a fixed token request. They arrive with a
*demand* (predicted PCC plus grant bounds) and the
:class:`~repro.fleet.allocator.GlobalAllocator` decides, at admission
time, how many tokens each admitted job actually gets — squeezing
grants when the pool is contended and spending spare tokens on faster
run times when it is not.

Re-allocation: whenever a completion releases tokens, the freed budget
is first offered to the queued jobs (FCFS, order-preserving, exactly
like the base queue) and — with ``reallocate_running=True`` — any still
idle tokens top up *running* jobs, shortening their remaining run time
proportionally to their PCC's predicted speed-up.

Admission order: the default is the base queue's order-preserving FCFS
prefix. ``admission="backfill"`` adds EASY backfilling — when the
head-of-line job is blocked, later jobs may start at their *floor*
grant provided they cannot delay the head's earliest possible start
(they either finish, by their own PCC's estimate, before the head's
shadow time, or they fit in tokens the head will not need then). The
head is therefore never starved by design, only by optimistic run-time
estimates — the same guarantee real EASY schedulers give.

The simulation itself is exposed incrementally as :class:`FleetStream`
(submit arrivals in time order, advance virtual time, collect
completions); :meth:`FleetScheduler.run` is the batch wrapper. The
arrival-driven replay harness (``repro.replay``) drives the stream form
directly so recommendations, admissions, executions, and feedback can
interleave in virtual-time order.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import ExecutionError, FleetError
from repro.fleet.allocator import AllocationPolicy, GlobalAllocator
from repro.fleet.demand import JobDemand
from repro.obs import trace
from repro.scope.cluster import ClusterQueue, QueueOutcome, QueueReport

__all__ = [
    "FleetJob",
    "FleetReport",
    "FleetStream",
    "FleetScheduler",
    "ADMISSION_ORDERS",
]

ADMISSION_ORDERS = ("fcfs", "backfill")


@dataclass(frozen=True)
class FleetJob:
    """One job submitted to the fleet scheduler.

    ``runtime_fn`` maps a granted token count to the job's *actual* run
    time (e.g. an AREPAS replay of the job's observed skyline). When
    omitted, the demand's predicted PCC stands in — useful for synthetic
    studies where prediction is taken to be perfect.
    """

    job_id: str
    arrival_time: float
    demand: JobDemand
    runtime_fn: Callable[[int], float] | None = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ExecutionError("arrival times must be non-negative")

    def runtime_at(self, tokens: int) -> float:
        runtime = (
            self.runtime_fn(tokens)
            if self.runtime_fn is not None
            else self.demand.pcc.runtime(tokens)
        )
        runtime = float(runtime)
        if runtime <= 0:
            raise ExecutionError(
                f"job {self.job_id} reported a non-positive run time"
            )
        return runtime


@dataclass(frozen=True)
class FleetReport(QueueReport):
    """Queue statistics plus fleet-level accounting."""

    policy: str
    #: Highest number of simultaneously committed tokens observed.
    peak_committed_tokens: int
    #: How many times running jobs were topped up from freed tokens.
    reallocations: int
    #: Jobs admitted past a blocked head-of-line job (EASY backfill).
    backfills: int = 0
    #: Admission order the stream ran under.
    admission: str = "fcfs"


@dataclass
class _Running:
    job: FleetJob
    tokens: int
    start: float
    finish: float
    version: int = 0
    #: Token-seconds accumulated at *previous* grant levels.
    held: float = 0.0
    #: When the current grant level took effect.
    last_change: float = 0.0


class FleetStream:
    """Incremental fleet simulation over virtual time.

    Usage contract:

    * :meth:`submit` arrivals in non-decreasing ``arrival_time`` order;
      submissions are buffered, not admitted immediately, so jobs
      sharing a timestamp are allocated *together* (exactly like the
      batch scheduler).
    * :meth:`advance` processes every arrival/completion event up to a
      virtual time and returns the newly completed outcomes in finish
      order — the feedback hook for closed-loop callers.
    * :meth:`drain` runs the simulation to completion; :meth:`report`
      then summarizes it.

    ``FleetScheduler.run`` is exactly ``submit* -> drain -> report``,
    and produces bit-identical results to the historical batch loop.
    """

    def __init__(self, scheduler: "FleetScheduler") -> None:
        self._scheduler = scheduler
        self.capacity = scheduler.capacity
        self._allocator = scheduler.allocator
        self._reallocate = scheduler.reallocate_running
        self._admission = scheduler.admission
        #: Submitted but not yet visible to admission.
        self._arrivals: deque[FleetJob] = deque()
        self._waiting: deque[FleetJob] = deque()
        self._running: dict[str, _Running] = {}
        # Lazy-deletion heap of (finish, version, job_id): re-allocation
        # shortens finish times, so stale entries are skipped on pop.
        self._finish_heap: list[tuple[float, int, str]] = []
        self._free = scheduler.capacity
        self._clock = 0.0
        self._outcomes: list[QueueOutcome] = []
        self._delivered = 0
        self._last_arrival = 0.0
        self._submitted = 0
        self._peak_committed = 0
        self._reallocations = 0
        self._backfills = 0

    # ------------------------------------------------------------------
    # caller API
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Current virtual time (last processed event)."""
        return self._clock

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def in_flight(self) -> int:
        """Jobs submitted but not yet finished."""
        return self._submitted - len(self._outcomes)

    @property
    def committed_tokens(self) -> int:
        """Tokens currently held by running jobs."""
        return self.capacity - self._free

    def submit(self, job: FleetJob) -> None:
        """Buffer one arrival; admission happens on the next advance."""
        if job.demand.min_tokens > self.capacity:
            raise ExecutionError(
                f"job {job.job_id} needs at least "
                f"{job.demand.min_tokens} tokens but the cluster only "
                f"has {self.capacity}"
            )
        if job.arrival_time < self._last_arrival:
            raise ExecutionError(
                "fleet stream arrivals must be submitted in time order"
            )
        self._last_arrival = job.arrival_time
        self._arrivals.append(job)
        self._submitted += 1

    def advance(self, until: float) -> list[QueueOutcome]:
        """Process every event at or before ``until``; return the jobs
        that completed since the previous call, in finish order."""
        self._process(until)
        return self._collect()

    def drain(self) -> list[QueueOutcome]:
        """Run the simulation to completion."""
        self._process(math.inf)
        if self._waiting and not self._running:
            raise ExecutionError(
                "deadlock: insufficient capacity with no running jobs"
            )
        return self._collect()

    def report(self) -> FleetReport:
        """Summarize everything completed so far."""
        if not self._outcomes:
            raise ExecutionError("no jobs submitted")
        return FleetReport(
            outcomes=tuple(
                sorted(self._outcomes, key=lambda o: (o.start_time, o.job_id))
            ),
            capacity=self.capacity,
            policy=self._allocator.policy.name,
            peak_committed_tokens=self._peak_committed,
            reallocations=self._reallocations,
            backfills=self._backfills,
            admission=self._admission,
        )

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _process(self, until: float) -> None:
        while True:
            next_arrival = (
                self._arrivals[0].arrival_time if self._arrivals else None
            )
            next_finish = self._next_finish()
            event_times = [
                t
                for t in (next_arrival, next_finish)
                if t is not None and t <= until
            ]
            if not event_times:
                return
            self._clock = max(self._clock, min(event_times))
            while (
                self._arrivals
                and self._arrivals[0].arrival_time <= self._clock
            ):
                self._waiting.append(self._arrivals.popleft())
            self._release_finished(self._clock)
            self._admit()

    def _collect(self) -> list[QueueOutcome]:
        new = self._outcomes[self._delivered:]
        self._delivered = len(self._outcomes)
        return new

    def _next_finish(self) -> float | None:
        while self._finish_heap:
            finish, version, job_id = self._finish_heap[0]
            state = self._running.get(job_id)
            if state is None or state.version != version:
                heapq.heappop(self._finish_heap)
                continue
            return finish
        return None

    def _release_finished(self, until: float) -> None:
        while self._finish_heap and self._finish_heap[0][0] <= until:
            finish, version, job_id = heapq.heappop(self._finish_heap)
            state = self._running.get(job_id)
            if state is None or state.version != version:
                continue  # superseded by a re-allocation
            del self._running[job_id]
            self._free += state.tokens
            self._outcomes.append(
                QueueOutcome(
                    job_id=job_id,
                    arrival_time=state.job.arrival_time,
                    start_time=state.start,
                    finish_time=state.finish,
                    tokens=state.tokens,
                    token_seconds=state.held
                    + state.tokens * (state.finish - state.last_change),
                )
            )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        # Admit the longest FCFS prefix whose floors fit, and let the
        # allocator divide the free pool among exactly those jobs
        # (running jobs keep their guaranteed grants).
        admitted: list[FleetJob] = []
        needed = 0
        for job in self._waiting:
            if needed + job.demand.min_tokens > self._free:
                break
            admitted.append(job)
            needed += job.demand.min_tokens
        if admitted:
            allocation = self._allocator.allocate(
                [job.demand for job in admitted], cap=self._free
            )
            for job, grant in zip(admitted, allocation.grants):
                self._waiting.popleft()
                self._start(job, grant.tokens)
        if (
            self._admission == "backfill"
            and self._waiting
            and self._running
        ):
            self._backfill()
        elif (
            not admitted
            and self._reallocate
            and not self._waiting
            and self._running
            and self._free > 0
        ):
            self._reallocations += self._top_up_running()
            self._free = self.capacity - sum(
                s.tokens for s in self._running.values()
            )

        self._peak_committed = max(
            self._peak_committed, self.capacity - self._free
        )
        if self._free < 0:
            raise FleetError("scheduler over-committed the pool")

    def _start(self, job: FleetJob, tokens: int) -> None:
        runtime = job.runtime_at(tokens)
        state = _Running(
            job=job,
            tokens=tokens,
            start=self._clock,
            finish=self._clock + runtime,
            last_change=self._clock,
        )
        self._running[job.job_id] = state
        heapq.heappush(self._finish_heap, (state.finish, 0, job.job_id))
        self._free -= tokens

    def _backfill(self) -> None:
        """EASY backfill behind a blocked head-of-line job.

        The head's *shadow time* is its earliest possible start —
        when enough running jobs will have released tokens for its
        floor. A later job may start now, at its floor grant, only if
        its own PCC predicts it finishes by the shadow time, or it fits
        entirely in tokens the head will not need then. Either way the
        head's reservation is (estimate permitting) undisturbed.
        """
        head = self._waiting[0]
        free_future = self._free
        shadow = None
        for finish, tokens in sorted(
            (s.finish, s.tokens) for s in self._running.values()
        ):
            free_future += tokens
            if free_future >= head.demand.min_tokens:
                shadow = finish
                break
        if shadow is None:
            return  # head is blocked on future *arrivals*, not releases
        spare_at_shadow = free_future - head.demand.min_tokens
        started: list[FleetJob] = []
        for job in list(self._waiting)[1:]:
            floor = job.demand.min_tokens
            if floor > self._free:
                continue
            predicted = float(job.demand.pcc.runtime(floor))
            if self._clock + predicted <= shadow:
                pass  # releases its tokens before the head needs them
            elif floor <= spare_at_shadow:
                spare_at_shadow -= floor  # head-spare tokens only
            else:
                continue
            self._start(job, floor)
            started.append(job)
            self._backfills += 1
        for job in started:
            self._waiting.remove(job)

    def _top_up_running(self) -> int:
        """Grant idle tokens to running jobs; returns jobs re-granted.

        A job that has held ``g`` tokens and would finish at ``f`` keeps
        its elapsed progress; the *remaining* run time is rescaled by
        the PCC-predicted speed-up ``runtime(g') / runtime(g)`` of the
        bigger grant ``g'``.
        """
        states = list(self._running.values())
        demands = []
        for state in states:
            if state.tokens >= state.job.demand.max_tokens:
                continue
            demands.append(
                JobDemand(
                    job_id=state.job.job_id,
                    pcc=state.job.demand.pcc,
                    min_tokens=state.tokens,
                    max_tokens=state.job.demand.max_tokens,
                )
            )
        if not demands:
            return 0
        allocation = self._allocator.allocate(
            demands, cap=self._free + sum(d.min_tokens for d in demands)
        )
        regranted = 0
        for grant in allocation.grants:
            state = self._running[grant.job_id]
            if grant.tokens <= state.tokens:
                continue
            speedup = state.job.demand.pcc.runtime(grant.tokens) / (
                state.job.demand.pcc.runtime(state.tokens)
            )
            remaining = max(0.0, state.finish - self._clock) * float(speedup)
            state.held += state.tokens * (self._clock - state.last_change)
            state.last_change = self._clock
            state.tokens = grant.tokens
            state.finish = self._clock + remaining
            state.version += 1
            heapq.heappush(
                self._finish_heap,
                (state.finish, state.version, grant.job_id),
            )
            regranted += 1
        return regranted


class FleetScheduler(ClusterQueue):
    """FCFS admission where the *allocator* chooses every grant.

    Parameters
    ----------
    capacity:
        Cluster-wide guaranteed-token pool (same semantics as the base
        queue).
    policy:
        Allocation policy instance or registry name; used to build the
        internal :class:`GlobalAllocator` unless ``allocator`` is given.
    reallocate_running:
        When True, tokens left idle after the queue drains are granted
        to running jobs, rescaling their remaining run time by the
        predicted speed-up of the bigger grant.
    admission:
        ``"fcfs"`` (order-preserving, the default) or ``"backfill"``
        (EASY backfill past a blocked head-of-line job).
    """

    def __init__(
        self,
        capacity: int,
        policy: AllocationPolicy | str = "water_filling",
        allocator: GlobalAllocator | None = None,
        reallocate_running: bool = False,
        admission: str = "fcfs",
    ) -> None:
        super().__init__(capacity)
        if admission not in ADMISSION_ORDERS:
            raise FleetError(
                f"unknown admission order {admission!r}; "
                f"known: {', '.join(ADMISSION_ORDERS)}"
            )
        self.allocator = allocator or GlobalAllocator(capacity, policy)
        self.reallocate_running = reallocate_running
        self.admission = admission

    def stream(self) -> FleetStream:
        """Open an incremental simulation over this scheduler's pool."""
        return FleetStream(self)

    def run(self, jobs: list[FleetJob]) -> FleetReport:  # type: ignore[override]
        """Simulate the stream with allocator-chosen grants."""
        if not jobs:
            raise ExecutionError("no jobs submitted")
        for job in jobs:
            if job.demand.min_tokens > self.capacity:
                raise ExecutionError(
                    f"job {job.job_id} needs at least "
                    f"{job.demand.min_tokens} tokens but the cluster only "
                    f"has {self.capacity}"
                )
        with trace.span(
            "fleet.schedule", jobs=len(jobs),
            policy=self.allocator.policy.name,
        ):
            stream = self.stream()
            for job in sorted(
                jobs, key=lambda j: (j.arrival_time, j.job_id)
            ):
                stream.submit(job)
            stream.drain()
            return stream.report()
