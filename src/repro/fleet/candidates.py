"""Candidate allocation grids for the discrete (knapsack) policy.

The knapsack pass does not reason about continuous token counts: each
job offers a short ascending grid of candidate allocations with a
predicted run time per candidate, and the policy picks one candidate per
job. Grids come from two sources:

* a predicted :class:`~repro.pcc.curve.PowerLawPCC` — all jobs' grids
  are evaluated in **one** vectorized power call (:func:`pcc_grids`);
* an observed skyline — run times come from the PR 4 AREPAS
  ``sweep_runtimes`` prefix-sum kernel, one vectorized sweep per job and
  no per-allocation Python loop (:func:`skyline_grid`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FleetError
from repro.skyline.skyline import Skyline

__all__ = ["CandidateGrid", "token_grid", "pcc_grids", "skyline_grid"]


@dataclass(frozen=True)
class CandidateGrid:
    """Ascending candidate allocations and their predicted run times."""

    tokens: np.ndarray  # int64, strictly increasing
    runtimes: np.ndarray  # float, same length

    def __post_init__(self) -> None:
        if self.tokens.size == 0 or self.tokens.size != self.runtimes.size:
            raise FleetError("candidate grid needs aligned, non-empty arrays")
        if np.any(np.diff(self.tokens) <= 0):
            raise FleetError("candidate tokens must be strictly increasing")
        if np.any(self.runtimes <= 0):
            raise FleetError("candidate run times must be positive")

    @property
    def min_tokens(self) -> int:
        return int(self.tokens[0])

    @property
    def max_tokens(self) -> int:
        return int(self.tokens[-1])

    def concave_steps(self) -> list[tuple[int, int, float]]:
        """Upgrade steps along the grid's concave improvement envelope.

        Returns ``(from_index, to_index, gain_per_token)`` triples with
        strictly decreasing per-token gain. Walking them in order is the
        exchange-argument-optimal greedy for a concave grid; skipping
        dominated candidates (where a later candidate is better per
        token) keeps the greedy from stalling on flat or noisy segments
        of an AREPAS sweep.
        """
        hull = [0]
        for j in range(1, int(self.tokens.size)):
            while len(hull) >= 2:
                i, k = hull[-2], hull[-1]
                # Keep k only if gain/token into k beats gain/token out.
                into = (self.runtimes[i] - self.runtimes[k]) / (
                    self.tokens[k] - self.tokens[i]
                )
                out = (self.runtimes[k] - self.runtimes[j]) / (
                    self.tokens[j] - self.tokens[k]
                )
                if out >= into:
                    hull.pop()
                else:
                    break
            if self.runtimes[j] < self.runtimes[hull[-1]]:
                hull.append(j)
        steps = []
        for i, j in zip(hull, hull[1:]):
            gain = float(
                (self.runtimes[i] - self.runtimes[j])
                / (self.tokens[j] - self.tokens[i])
            )
            steps.append((i, j, gain))
        return steps


def token_grid(
    min_tokens: int, max_tokens: int, num_points: int = 16
) -> np.ndarray:
    """Geometric integer grid spanning ``[min_tokens, max_tokens]``."""
    if min_tokens < 1 or max_tokens < min_tokens:
        raise FleetError("invalid candidate token range")
    if num_points < 1:
        raise FleetError("need at least one candidate point")
    grid = np.unique(
        np.round(
            np.geomspace(min_tokens, max_tokens, num_points)
        ).astype(np.int64)
    )
    return grid


def pcc_grids(
    a: np.ndarray,
    b: np.ndarray,
    min_tokens: np.ndarray,
    max_tokens: np.ndarray,
    num_points: int = 16,
) -> list[CandidateGrid]:
    """Candidate grids for a whole fleet of power-law PCCs at once.

    Per-job grids differ in range and (after integer rounding) length,
    so they are concatenated into one flat array and the run times for
    *every job's every candidate* are evaluated with a single
    ``b * A**a`` broadcast — no per-job, let alone per-allocation,
    Python-level arithmetic.
    """
    grids = [
        token_grid(int(lo), int(hi), num_points)
        for lo, hi in zip(min_tokens, max_tokens)
    ]
    lengths = np.array([g.size for g in grids])
    flat_tokens = np.concatenate(grids).astype(float)
    flat_a = np.repeat(np.asarray(a, dtype=float), lengths)
    flat_b = np.repeat(np.asarray(b, dtype=float), lengths)
    flat_runtimes = flat_b * np.power(flat_tokens, flat_a)
    splits = np.cumsum(lengths)[:-1]
    return [
        CandidateGrid(tokens=tokens, runtimes=runtimes)
        for tokens, runtimes in zip(
            grids, np.split(flat_runtimes, splits)
        )
    ]


def skyline_grid(
    skyline: Skyline,
    min_tokens: int,
    max_tokens: int,
    num_points: int = 16,
) -> CandidateGrid:
    """AREPAS-backed candidate grid for one observed skyline.

    Run times come from one vectorized ``sweep_runtimes`` pass (the
    PR 4 prefix-sum kernel). AREPAS's remainder-second rounding can
    produce tiny non-monotonicities along the grid; a running minimum
    restores the non-increasing shape the greedy upgrade walk expects.
    """
    from repro.arepas.simulator import sweep_runtimes

    grid = token_grid(min_tokens, max_tokens, num_points)
    runtimes = sweep_runtimes(skyline, grid.astype(float)).astype(float)
    runtimes = np.minimum.accumulate(runtimes)
    runtimes = np.maximum(runtimes, 1e-9)
    return CandidateGrid(tokens=grid, runtimes=runtimes)
