"""Global token allocation across concurrent jobs under a cluster cap.

TASQ's per-job recommendation answers "how many tokens does *this* job
deserve?" in isolation. The paper's motivating argument, however, is a
cluster-level one: tokens a job holds are tokens every other job waits
for. This module lifts the per-job PCCs to that level: given the fleet
of jobs currently competing for the pool, a :class:`GlobalAllocator`
divides a shared token cap among them.

Three policies, in increasing order of structure:

* :class:`WaterFillingPolicy` — continuous marginal-gain equalization.
  Minimizing total predicted run time ``sum_i b_i A_i^{a_i}`` under
  ``sum_i A_i <= C`` is a separable convex program; at the optimum every
  interior job has the same marginal improvement per token
  ``-a_i b_i A_i^{a_i - 1} = lambda``, so the whole fleet's allocation
  is a one-dimensional bisection on the water level ``lambda``.
* :class:`KnapsackPolicy` — a discrete greedy over per-job candidate
  grids (:mod:`repro.fleet.candidates`), upgrading whichever job's next
  candidate buys the most run-time reduction per token until the budget
  is spent. Grids can be PCC-sampled or AREPAS ``sweep_runtimes``-backed.
* :class:`DeadlineAwarePolicy` — raises each deadline job's floor to
  ``tasq.price_performance.cheapest_within_deadline`` before delegating
  the remaining budget to a base policy; when the floors cannot all fit
  under the cap it degrades gracefully, shedding the most expensive
  floors first instead of failing.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Sequence

import numpy as np

from repro.exceptions import FleetError
from repro.fleet.candidates import CandidateGrid, pcc_grids
from repro.fleet.demand import FleetAllocation, JobDemand, TokenGrant
from repro.obs import get_registry, trace
from repro.tasq.price_performance import cheapest_within_deadline

__all__ = [
    "AllocationPolicy",
    "WaterFillingPolicy",
    "KnapsackPolicy",
    "DeadlineAwarePolicy",
    "make_policy",
    "POLICY_NAMES",
    "GlobalAllocator",
]


class AllocationPolicy:
    """Interface: divide ``cap`` tokens among ``demands``.

    Implementations return one integer grant per demand, in order, with
    every grant inside ``[min_tokens, max_tokens]`` and the total never
    above the cap. Callers guarantee ``sum(min_tokens) <= cap``.
    """

    name: str = "abstract"

    def allocate(
        self, demands: Sequence[JobDemand], cap: int
    ) -> np.ndarray:
        raise NotImplementedError


def _bounds(demands: Sequence[JobDemand]) -> tuple[np.ndarray, np.ndarray]:
    lo = np.array([d.min_tokens for d in demands], dtype=np.int64)
    hi = np.array([d.max_tokens for d in demands], dtype=np.int64)
    return lo, hi


class WaterFillingPolicy(AllocationPolicy):
    """Equalize marginal run-time improvement per token across the fleet.

    The continuous optimum is found by bisecting the shared marginal
    gain ("water level"): each job's interior response to a level
    ``lam`` is ``A_i(lam) = (-a_i b_i / lam)^(1 / (1 - a_i))``, clipped
    to its bounds. Grants are then floored to integers and the handful
    of leftover tokens (at most one per job) go to the jobs whose next
    token still buys the largest predicted run-time reduction.
    """

    name = "water_filling"

    def __init__(self, iterations: int = 64) -> None:
        if iterations < 1:
            raise FleetError("bisection needs at least one iteration")
        self.iterations = iterations

    def allocate(
        self, demands: Sequence[JobDemand], cap: int
    ) -> np.ndarray:
        lo, hi = _bounds(demands)
        hi = np.minimum(hi, cap)
        a = np.array([d.pcc.a for d in demands], dtype=float)
        b = np.array([d.pcc.b for d in demands], dtype=float)
        if int(hi.sum()) <= cap:
            return hi

        # Flat curves (a == 0) never benefit from extra tokens: pin them
        # to their floor and keep them out of the water level entirely.
        flat = a >= 0
        if bool(flat.all()):
            return lo.copy()
        safe_a = np.where(flat, -1.0, a)

        def grants_at(lam: float) -> np.ndarray:
            with np.errstate(over="ignore", invalid="ignore"):
                interior = np.power(
                    -safe_a * b / lam, 1.0 / (1.0 - safe_a)
                )
            interior = np.where(flat, lo, interior)
            return np.clip(interior, lo, hi)

        # Bracket the level: the highest/lowest marginal gain any job
        # can exhibit inside its bounds.
        gain_lo = -safe_a * b * np.power(hi.astype(float), safe_a - 1.0)
        gain_hi = -safe_a * b * np.power(lo.astype(float), safe_a - 1.0)
        lam_lo = max(float(gain_lo[~flat].min()) * 0.5, 1e-300)
        lam_hi = max(float(gain_hi[~flat].max()) * 2.0, lam_lo * 2.0)
        for _ in range(self.iterations):
            lam = np.sqrt(lam_lo * lam_hi)  # bisect in log space
            if float(grants_at(lam).sum()) > cap:
                lam_lo = lam  # too generous: raise the bar
            else:
                lam_hi = lam
        continuous = grants_at(lam_hi)

        grants = np.maximum(np.floor(continuous).astype(np.int64), lo)
        leftover = cap - int(grants.sum())
        if leftover > 0:
            # Flooring freed at most one token per job; hand them back
            # in order of the marginal gain of each job's next token.
            upgradable = grants < hi
            next_gain = b * (
                np.power(grants.astype(float), safe_a)
                - np.power(grants.astype(float) + 1.0, safe_a)
            )
            next_gain[~upgradable | flat] = -np.inf
            order = np.argsort(-next_gain)
            for idx in order[:leftover]:
                if next_gain[idx] == -np.inf:
                    break
                grants[idx] += 1
        return grants


class KnapsackPolicy(AllocationPolicy):
    """Greedy discrete upgrades over per-job candidate grids.

    Every job starts at its smallest candidate; a heap of "next upgrade"
    steps (ordered by run-time reduction per token along each grid's
    concave envelope) spends the remaining budget on the globally best
    step until nothing else fits. For concave grids this greedy is the
    exact optimum of the continuous relaxation rounded down — in
    practice within one candidate of the true discrete knapsack answer,
    at a tiny fraction of its cost.
    """

    name = "knapsack"

    def __init__(self, num_points: int = 16) -> None:
        if num_points < 2:
            raise FleetError("candidate grids need at least two points")
        self.num_points = num_points

    def _grids(self, demands: Sequence[JobDemand]) -> list[CandidateGrid]:
        for demand in demands:
            if demand.grid is not None and (
                demand.grid.min_tokens < demand.min_tokens
                or demand.grid.max_tokens > demand.max_tokens
            ):
                raise FleetError(
                    f"candidate grid for {demand.job_id} falls outside "
                    "its demand bounds"
                )
        missing = [i for i, d in enumerate(demands) if d.grid is None]
        grids: list[CandidateGrid | None] = [d.grid for d in demands]
        if missing:
            built = pcc_grids(
                a=np.array([demands[i].pcc.a for i in missing]),
                b=np.array([demands[i].pcc.b for i in missing]),
                min_tokens=np.array([demands[i].min_tokens for i in missing]),
                max_tokens=np.array([demands[i].max_tokens for i in missing]),
                num_points=self.num_points,
            )
            for i, grid in zip(missing, built):
                grids[i] = grid
        return grids  # type: ignore[return-value]

    def allocate(
        self, demands: Sequence[JobDemand], cap: int
    ) -> np.ndarray:
        grids = self._grids(demands)
        grants = np.array(
            [g.min_tokens for g in grids], dtype=np.int64
        )
        lo, _ = _bounds(demands)
        grants = np.maximum(grants, lo)
        budget = cap - int(grants.sum())
        if budget < 0:
            raise FleetError("candidate floors exceed the cap")

        # Heap of (-gain_per_token, job, step_position); each job's
        # steps are walked in envelope order, so pushing only the next
        # step keeps the heap small.
        steps = [g.concave_steps() for g in grids]
        heap: list[tuple[float, int, int]] = []
        for job, job_steps in enumerate(steps):
            if job_steps:
                heap.append((-job_steps[0][2], job, 0))
        heapq.heapify(heap)
        positions = [0] * len(demands)
        while heap and budget > 0:
            neg_gain, job, pos = heapq.heappop(heap)
            i, j, _ = steps[job][pos]
            cost = int(grids[job].tokens[j] - grids[job].tokens[i])
            if cost > budget:
                continue  # this job's later steps only cost more
            budget -= cost
            grants[job] = int(grids[job].tokens[j])
            positions[job] = pos + 1
            if pos + 1 < len(steps[job]):
                heapq.heappush(
                    heap, (-steps[job][pos + 1][2], job, pos + 1)
                )
        return grants


class DeadlineAwarePolicy(AllocationPolicy):
    """Honor per-job deadlines first, then optimize the rest.

    Each deadline job's floor is raised to the cheapest allocation whose
    predicted run time meets the deadline
    (:func:`~repro.tasq.price_performance.cheapest_within_deadline`).
    Infeasible deadlines — individually (even ``max_tokens`` misses) or
    collectively (the raised floors overflow the cap) — degrade
    gracefully: the individually infeasible keep their original bounds,
    and collectively the most token-hungry raises are relaxed first
    until the floors fit, so the allocator never fails where a best
    effort is possible.

    With ``risk=`` set, a demand that carries a non-degenerate
    ``pcc_interval`` has its deadline floor computed against the
    interval's risk-quantile curve instead of the median — "enough
    tokens that the deadline holds with probability ``risk``" (see
    ``docs/uncertainty.md``). Demands without intervals keep the
    point-estimate floor.
    """

    name = "deadline"

    def __init__(
        self,
        base: AllocationPolicy | None = None,
        risk: float | None = None,
    ) -> None:
        if risk is not None and not 0.0 < risk < 1.0:
            raise FleetError("risk must be inside (0, 1)")
        self.base = base or WaterFillingPolicy()
        self.risk = risk

    def allocate(
        self, demands: Sequence[JobDemand], cap: int
    ) -> np.ndarray:
        floors = []
        for demand in demands:
            floor = demand.min_tokens
            if demand.deadline is not None:
                interval = demand.pcc_interval
                use_risk = (
                    self.risk is not None
                    and interval is not None
                    and not interval.is_degenerate
                )
                needed = cheapest_within_deadline(
                    demand.pcc,
                    demand.deadline,
                    min_tokens=demand.min_tokens,
                    max_tokens=demand.max_tokens,
                    interval=interval if use_risk else None,
                    risk=self.risk if use_risk else None,
                )
                if needed is not None:
                    floor = max(floor, needed)
            floors.append(floor)

        # Collectively infeasible: relax the largest raises first.
        base_floors = [d.min_tokens for d in demands]
        total = sum(floors)
        if total > cap:
            by_raise = sorted(
                range(len(demands)),
                key=lambda i: floors[i] - base_floors[i],
                reverse=True,
            )
            for i in by_raise:
                if total <= cap:
                    break
                total -= floors[i] - base_floors[i]
                floors[i] = base_floors[i]

        raised = [
            dataclasses.replace(d, min_tokens=floor, deadline=None)
            if floor != d.min_tokens
            else d
            for d, floor in zip(demands, floors)
        ]
        return self.base.allocate(raised, cap)


_POLICIES = {
    WaterFillingPolicy.name: WaterFillingPolicy,
    KnapsackPolicy.name: KnapsackPolicy,
    DeadlineAwarePolicy.name: DeadlineAwarePolicy,
}
POLICY_NAMES = tuple(sorted(_POLICIES))


def make_policy(name: str) -> AllocationPolicy:
    """Instantiate a policy by its registry name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise FleetError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES}"
        ) from None


class GlobalAllocator:
    """Divide a cluster-wide token cap among concurrent jobs.

    Parameters
    ----------
    cap:
        The cluster's guaranteed-token pool size.
    policy:
        An :class:`AllocationPolicy` instance or registry name.
    """

    def __init__(
        self, cap: int, policy: AllocationPolicy | str = "water_filling"
    ) -> None:
        if cap < 1:
            raise FleetError("cluster cap must be positive")
        self.cap = cap
        self.policy = make_policy(policy) if isinstance(policy, str) else policy

    def allocate(
        self, demands: Sequence[JobDemand], cap: int | None = None
    ) -> FleetAllocation:
        """Grant tokens to every demand under the (possibly partial) cap.

        ``cap`` overrides the cluster-wide cap for one round — the fleet
        scheduler passes the currently *free* tokens here so running
        jobs keep their guarantees.
        """
        cap = self.cap if cap is None else cap
        if not demands:
            raise FleetError("no demands to allocate")
        if cap < 1:
            raise FleetError("allocation cap must be positive")
        seen: set[str] = set()
        for demand in demands:
            if demand.job_id in seen:
                raise FleetError(f"duplicate demand for {demand.job_id}")
            seen.add(demand.job_id)
        floor_total = sum(d.min_tokens for d in demands)
        if floor_total > cap:
            raise FleetError(
                f"demand floors need {floor_total} tokens but only "
                f"{cap} are available"
            )

        with trace.span(
            "fleet.allocate", jobs=len(demands), cap=cap,
            policy=self.policy.name,
        ):
            grants = np.asarray(
                self.policy.allocate(demands, cap), dtype=np.int64
            )
        lo, hi = _bounds(demands)
        if grants.shape != lo.shape:
            raise FleetError("policy returned a misaligned grant vector")
        if np.any(grants < lo) or np.any(grants > hi):
            raise FleetError("policy violated a demand's grant bounds")
        if int(grants.sum()) > cap:
            raise FleetError("policy exceeded the allocation cap")

        if trace.enabled:
            registry = get_registry()
            registry.counter(
                "fleet_allocations", policy=self.policy.name
            ).increment()
            histogram = registry.histogram("fleet_tokens_granted")
            for grant in grants:
                histogram.record(float(grant))

        return FleetAllocation(
            grants=tuple(
                TokenGrant(
                    job_id=demand.job_id,
                    tokens=int(grant),
                    predicted_runtime=float(demand.pcc.runtime(int(grant))),
                )
                for demand, grant in zip(demands, grants)
            ),
            cap=cap,
            policy=self.policy.name,
        )

    def budget_recommendations(self, recommendations, cap=None):
        """Re-budget a batch of per-job TASQ recommendations globally.

        Used by the serving layer: when the batch's combined recommended
        tokens exceed the cap, grants are squeezed (never raised) so the
        batch as a whole fits; each returned recommendation carries the
        adjusted ``optimal_tokens`` and its predicted run time. Batches
        already under the cap pass through untouched.
        """
        cap = self.cap if cap is None else cap
        total = sum(r.optimal_tokens for r in recommendations)
        if total <= cap:
            return list(recommendations)
        demands = [
            JobDemand(
                job_id=f"req-{i}",
                pcc=rec.pcc,
                min_tokens=1,
                max_tokens=rec.optimal_tokens,
            )
            for i, rec in enumerate(recommendations)
        ]
        allocation = self.allocate(demands, cap=cap)
        return [
            dataclasses.replace(
                rec,
                optimal_tokens=grant.tokens,
                predicted_runtime_at_optimal=grant.predicted_runtime,
            )
            for rec, grant in zip(recommendations, allocation.grants)
        ]
