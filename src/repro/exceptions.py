"""Exception hierarchy for the TASQ reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries. The subclasses
mirror the major subsystems: skylines, the AREPAS simulator, the SCOPE
substrate, featurization, modeling, and the end-to-end pipeline.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SkylineError(ReproError):
    """Raised for invalid skyline construction or manipulation."""


class SimulationError(ReproError):
    """Raised when the AREPAS simulator receives unusable inputs."""


class PlanError(ReproError):
    """Raised for malformed query plans (cycles, dangling edges, ...)."""


class ExecutionError(ReproError):
    """Raised when the cluster executor cannot run a job."""


class FeaturizationError(ReproError):
    """Raised when features cannot be extracted or encoded."""


class FittingError(ReproError):
    """Raised when a PCC cannot be fitted to the given observations."""


class ModelError(ReproError):
    """Raised for model configuration, training, or inference failures."""


class NotFittedError(ModelError):
    """Raised when predict/transform is called before fit."""


class SelectionError(ReproError):
    """Raised when job subset selection cannot satisfy its constraints."""


class FlightingError(ReproError):
    """Raised when flight re-execution or dataset assembly fails."""


class PipelineError(ReproError):
    """Raised by the end-to-end TASQ training/scoring pipelines."""


class ServingError(ReproError):
    """Raised by the allocation-serving layer (server, caches, admission)."""


class ObservabilityError(ReproError):
    """Raised by the observability layer (tracing, metrics, profiling)."""


class FleetError(ReproError):
    """Raised by the cluster-level global token allocator and scheduler."""


class ReplayError(ReproError):
    """Raised by the arrival-driven multi-tenant replay harness."""
