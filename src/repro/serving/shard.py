"""Shared-nothing multi-process serving front end.

`repro.serving.server` is one process: its micro-batched scoring runs
behind a single GIL, so the compiled inference kernels (PR 7) saturate
one core no matter how many worker *threads* the config asks for. This
module scales the same endpoint horizontally on one machine:

.. code-block:: text

                 ShardedAllocationServer (parent process)
    client ──► submit(plan)
                 │  plan_signature ──► consistent-hash ring ──► shard i
                 │  featurize (FeatureVectorCache)
                 ▼
               pending[i] ──flush──► shm slot (float64 rows) ─┐
                                     pipe: (id, sig, tokens) ─┤ zero-copy
                                                              ▼
               shard process i: AllocationServer.submit_prepared(...)
                 private recommendation cache · breaker · fallback
                                                              │
               reader thread ◄── pipe: responses + metric deltas

* **Routing** — a :class:`~repro.serving.ring.ConsistentHashRing` over
  the plan's structural signature (`plan_signature`, the same key the
  recommendation cache uses — routing by the content signature would
  scatter recurring instances of one template across shards and destroy
  their cache hits). Every recurrence of a signature lands on the same
  shard, so each shard's private LRU stays hot, and resharding moves
  only ~1/N of the keyspace.
* **Zero-copy feature transport** — the parent featurizes once (cached
  per instance), writes the float64 job vectors into a per-shard
  ``multiprocessing.shared_memory`` slot, and ships only identifiers
  over the pipe. The worker wraps the slot in an ``ndarray`` view and
  feeds row views straight into
  :meth:`~repro.tasq.pipeline.ScoringPipeline.score_features` — no
  per-request pickling on the hot path. A slot is reused only after the
  worker has answered its whole batch, so views never alias live data.
* **Stall-free hot swap** — :meth:`ShardedAllocationServer.swap_model`
  broadcasts the staged model; each worker registers it into its local
  :class:`~repro.tasq.model_store.ModelStore` and swaps at its next
  message boundary. In-flight batches complete on the old replica and
  traffic keeps flowing throughout (no global pause).
* **Fleet metrics** — workers piggyback counter/histogram *deltas* on
  their responses (cadence ``metrics_interval_s``); the parent relabels
  them ``{shard=i}`` and merges, so one snapshot covers the fleet.

GNN models read per-plan graphs, which do not fit the flat shared-memory
layout — :class:`ShardedAllocationServer` refuses them up front. Use
:func:`build_server` to construct either flavor from one call site
(``procs=1`` returns today's single-process server, bit-identical).
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import pickle
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.exceptions import ServingError
from repro.obs.metrics import relabel_state, state_delta
from repro.parallel import START_METHOD
from repro.scope.plan import QueryPlan
from repro.scope.repository import JobRepository
from repro.scope.signatures import plan_signature
from repro.serving.cache import FeatureVectorCache
from repro.serving.metrics import MetricsRegistry
from repro.serving.ring import ConsistentHashRing
from repro.serving.server import (
    AllocationServer,
    ResponseStatus,
    ServeFuture,
    ServeResponse,
    ServerConfig,
)
from repro.tasq.model_store import ModelStore
from repro.tasq.pipeline import PlanFeatures, ScoringPipeline

__all__ = ["ShardConfig", "ShardedAllocationServer", "build_server"]

#: Name every shard registers its pipeline model under in its local store.
_MODEL_NAME = "shard-model"


@dataclass(frozen=True)
class ShardConfig:
    """Operating envelope of a :class:`ShardedAllocationServer`."""

    #: Worker processes (each runs a full :class:`AllocationServer`).
    procs: int = 2
    #: Rows per shared-memory slot = largest parent->shard flush batch.
    flush_batch_size: int = 32
    #: Cadence of the background flusher draining partial batches.
    flush_interval_s: float = 0.002
    #: Shared-memory slots per shard; bounds batches in flight per shard
    #: (backpressure: flushes wait for a free slot).
    shm_slots: int = 8
    #: Parent-side featurization cache entries (job id + signature).
    prep_cache_size: int = 8192
    #: Virtual nodes per shard on the consistent-hash ring.
    ring_replicas: int = 128
    #: How often workers piggyback metric deltas on responses.
    metrics_interval_s: float = 0.25
    #: Worker-side wait for one request's inner future (safety net; the
    #: inner server answers far sooner or falls back).
    request_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.procs < 1:
            raise ServingError("need at least one shard process")
        if self.flush_batch_size < 1:
            raise ServingError("flush batch size must be at least 1")
        if self.flush_interval_s < 0:
            raise ServingError("flush interval must be non-negative")
        if self.shm_slots < 1:
            raise ServingError("need at least one shared-memory slot")
        if self.ring_replicas < 1:
            raise ServingError("ring needs at least one replica per node")
        if self.metrics_interval_s < 0:
            raise ServingError("metrics interval must be non-negative")
        if self.request_timeout_s <= 0:
            raise ServingError("request timeout must be positive")


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without tracker double-counting.

    Python 3.11 has no ``track=False``: attaching registers the segment
    with the resource tracker a second time, which triggers spurious
    leak warnings / double unlinks at exit. The parent owns the segment
    lifecycle (create + unlink), so the worker's registration is
    explicitly undone.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - tracker internals vary across platforms
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return segment


def _shard_worker_main(
    conn,
    index: int,
    pipeline_blob: bytes,
    server_config: ServerConfig,
    repository_blob: bytes | None,
    metrics_interval_s: float,
    request_timeout_s: float,
) -> None:
    """One shard: a full single-process server driven over a pipe.

    Messages are handled strictly in order, which is what makes the hot
    swap stall-free *and* safe: a ``("model", ...)`` message can only be
    seen between batches, so every in-flight batch completes on the
    replica it started with, while the parent keeps streaming new
    batches behind the swap message.
    """
    pipeline: ScoringPipeline = pickle.loads(pipeline_blob)
    repository: JobRepository | None = (
        pickle.loads(repository_blob) if repository_blob is not None else None
    )
    store = ModelStore()
    store.register(_MODEL_NAME, pipeline.model, metadata={"shard": index})
    server = AllocationServer(
        pipeline,
        server_config,
        store=store,
        model_name=_MODEL_NAME,
        repository=repository,
    )
    segments: dict[str, shared_memory.SharedMemory] = {}
    last_state: dict = {"counters": {}, "histograms": {}}
    last_ship = time.monotonic()

    def metrics_payload(force: bool = False) -> dict | None:
        nonlocal last_state, last_ship
        now = time.monotonic()
        if not force and now - last_ship < metrics_interval_s:
            return None
        current = server.metrics.dump_state()
        delta = state_delta(current, last_state)
        last_state = current
        last_ship = now
        if not delta["counters"] and not delta["histograms"]:
            return None
        return delta

    try:
        with server:
            while True:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                kind = message[0]
                if kind == "batch":
                    _, slot, shm_name, offset, width, entries = message
                    segment = segments.get(shm_name)
                    if segment is None:
                        segment = _attach_segment(shm_name)
                        segments[shm_name] = segment
                    rows = np.ndarray(
                        (len(entries), width),
                        dtype=np.float64,
                        buffer=segment.buf,
                        offset=offset,
                    )
                    futures = [
                        server.submit_prepared(
                            job_id,
                            signature,
                            tokens,
                            features=PlanFeatures(
                                job_vector=rows[i], graph=None
                            ),
                        )
                        for i, (_, job_id, signature, tokens) in enumerate(
                            entries
                        )
                    ]
                    payload = []
                    for (request_id, job_id, _, _), future in zip(
                        entries, futures
                    ):
                        try:
                            response = future.result(
                                timeout=request_timeout_s
                            )
                        except ServingError:
                            payload.append(
                                (
                                    request_id,
                                    job_id,
                                    ResponseStatus.REJECTED.value,
                                    None,
                                    "shard_timeout",
                                    0.0,
                                )
                            )
                        else:
                            payload.append(
                                (
                                    request_id,
                                    job_id,
                                    response.status.value,
                                    response.recommendation,
                                    response.reason,
                                    response.latency_s,
                                )
                            )
                    # Sending the responses is also the slot release: the
                    # parent only reuses the slot after this message.
                    conn.send(("responses", slot, payload, metrics_payload()))
                elif kind == "model":
                    _, generation, model_blob = message
                    store.register(
                        _MODEL_NAME,
                        pickle.loads(model_blob),
                        metadata={"generation": generation},
                    )
                    version = server.refresh_model()
                    conn.send(("swapped", generation, version))
                elif kind == "completion":
                    _, status_value, recommendation, actual_runtime = message
                    server.record_completion(
                        ServeResponse(
                            job_id=recommendation.job_id,
                            status=ResponseStatus(status_value),
                            recommendation=recommendation,
                            reason=None,
                            latency_s=0.0,
                            shard=index,
                        ),
                        actual_runtime,
                    )
                elif kind == "stats":
                    conn.send(
                        (
                            "stats",
                            {
                                "recommendation_cache": (
                                    server.recommendation_cache.stats()
                                ),
                                "model_version": server.model_version,
                                "monitor_observations": (
                                    server.monitor.snapshot().observations
                                ),
                            },
                        )
                    )
                elif kind == "sync":
                    conn.send(("metrics", metrics_payload(force=True)))
                elif kind == "stop":
                    conn.send(("stopped", metrics_payload(force=True)))
                    break
    finally:
        for segment in segments.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass


# ----------------------------------------------------------------------
# parent process
# ----------------------------------------------------------------------
@dataclass
class _PreparedRequest:
    """One admitted request waiting to be flushed to its shard."""

    request_id: int
    job_id: str
    signature: str
    requested_tokens: int
    vector: np.ndarray
    future: ServeFuture
    submitted_at: float


class _Shard:
    """Parent-side handle for one worker process."""

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        self.process = None
        self.conn = None
        self.reader: threading.Thread | None = None
        self.lock = threading.Lock()  # guards pending + inflight
        self.flush_lock = threading.Lock()  # serializes flushes
        self.send_lock = threading.Lock()  # serializes conn.send
        self.rpc_lock = threading.Lock()  # serializes request/reply pairs
        self.pending: list[_PreparedRequest] = []
        self.inflight: dict[int, _PreparedRequest] = {}
        self.free_slots: queue_module.Queue[int] = queue_module.Queue()
        self.replies: queue_module.Queue = queue_module.Queue()
        self.segment: shared_memory.SharedMemory | None = None
        self.width: int | None = None
        self.alive = False


class ShardedAllocationServer:
    """N private :class:`AllocationServer` processes behind one front door.

    The client API mirrors the single-process server — ``submit`` /
    ``request`` / ``record_completion`` / context manager — so callers
    (the CLI, the load generator) swap between the two via
    :func:`build_server` without code changes. Responses carry the
    answering ``shard`` index; completion feedback routes back to the
    shard that served, keeping each shard's drift monitor consistent
    with its own traffic.

    Parameters
    ----------
    pipeline:
        A picklable :class:`~repro.tasq.pipeline.ScoringPipeline` whose
        model scores from job vectors (GNNs are rejected: per-plan
        graphs cannot ride the flat shared-memory layout).
    config:
        :class:`ShardConfig` — process count and transport tuning.
    server_config:
        The :class:`ServerConfig` each shard's inner server runs with
        (queue bound, micro-batching, breaker, caches, deadlines).
    repository:
        Optional job history, pickled once to every shard so each runs
        the same historical-median fallback as a single-process server.
    metrics, clock:
        Parent-side registry (fleet view) and injectable clock.
    """

    def __init__(
        self,
        pipeline: ScoringPipeline,
        config: ShardConfig | None = None,
        *,
        server_config: ServerConfig | None = None,
        repository: JobRepository | None = None,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ShardConfig()
        if not hasattr(pipeline, "score_features"):
            raise ServingError(
                "sharded serving needs a pipeline exposing score_features"
            )
        if getattr(getattr(pipeline, "model", None), "uses_graph_features", False):
            raise ServingError(
                "sharded serving ships flat job vectors through shared "
                "memory; graph-input (GNN) models cannot be sharded — "
                "serve them single-process"
            )
        self._pipeline = pipeline
        self.server_config = server_config or ServerConfig()
        self._repository = repository
        self.metrics = metrics or MetricsRegistry()
        self._clock = clock
        self._prep_cache = FeatureVectorCache(self.config.prep_cache_size)
        names = [f"shard-{i}" for i in range(self.config.procs)]
        self.ring = ConsistentHashRing(
            names, replicas=self.config.ring_replicas
        )
        self._shard_by_name = {name: i for i, name in enumerate(names)}
        self._shards = [_Shard(i, name) for i, name in enumerate(names)]
        self._request_ids = itertools.count()
        self._id_lock = threading.Lock()
        self._running = False
        self._stop = threading.Event()
        self._flusher: threading.Thread | None = None
        self._swap_condition = threading.Condition()
        self._swap_generation = 0
        self._swap_acks: dict[int, dict[int, int | None]] = {}
        self._register_gauges()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedAllocationServer":
        if self._running:
            raise ServingError("server is already running")
        self._stop.clear()
        context = multiprocessing.get_context(START_METHOD)
        pipeline_blob = pickle.dumps(self._pipeline)
        repository_blob = (
            pickle.dumps(self._repository)
            if self._repository is not None
            else None
        )
        try:
            for shard in self._shards:
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(
                        child_conn,
                        shard.index,
                        pipeline_blob,
                        self.server_config,
                        repository_blob,
                        self.config.metrics_interval_s,
                        self.config.request_timeout_s,
                    ),
                    name=f"alloc-{shard.name}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                shard.process = process
                shard.conn = parent_conn
                shard.alive = True
                for slot in range(self.config.shm_slots):
                    shard.free_slots.put(slot)
        except (OSError, PermissionError) as error:
            self._teardown_processes()
            raise ServingError(
                f"could not start shard processes ({error}); sandboxed "
                "environments may forbid subprocesses — serve with "
                "procs=1 instead"
            ) from error
        for shard in self._shards:
            shard.reader = threading.Thread(
                target=self._reader_loop,
                args=(shard,),
                name=f"alloc-{shard.name}-reader",
                daemon=True,
            )
            shard.reader.start()
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="alloc-shard-flusher", daemon=True
        )
        self._flusher.start()
        self._running = True
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._stop.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
            self._flusher = None
        for shard in self._shards:
            with shard.lock:
                leftovers = list(shard.pending)
                shard.pending.clear()
            for request in leftovers:
                self._resolve(
                    request, shard, ResponseStatus.REJECTED, None,
                    "shutdown", None,
                )
            if shard.alive:
                try:
                    with shard.send_lock:
                        shard.conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        for shard in self._shards:
            if shard.reader is not None:
                shard.reader.join(timeout=10.0)
                shard.reader = None
        self._teardown_processes()

    def _teardown_processes(self) -> None:
        for shard in self._shards:
            if shard.process is not None:
                shard.process.join(timeout=5.0)
                if shard.process.is_alive():  # pragma: no cover - hang path
                    shard.process.terminate()
                    shard.process.join(timeout=5.0)
                shard.process = None
            shard.alive = False
            # Anything the worker never answered gets an explicit answer.
            with shard.lock:
                orphans = list(shard.inflight.values())
                shard.inflight.clear()
            for request in orphans:
                self._resolve(
                    request, shard, ResponseStatus.REJECTED, None,
                    "shutdown", None,
                )
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:  # pragma: no cover - teardown best effort
                    pass
                shard.conn = None
            if shard.segment is not None:
                try:
                    shard.segment.close()
                    shard.segment.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
                shard.segment = None

    def __enter__(self) -> "ShardedAllocationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        return self._running

    @property
    def num_shards(self) -> int:
        return self.config.procs

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, plan: QueryPlan, requested_tokens: int) -> ServeFuture:
        """Route, featurize (cached), and enqueue one request."""
        if not self._running:
            raise ServingError("server is not running")
        if requested_tokens < 1:
            raise ServingError("requested tokens must be positive")
        self.metrics.counter("requests_total").increment()
        signature = plan_signature(plan)
        vector = self._prep_cache.vector_for(plan, signature)
        shard = self._shards[self._shard_by_name[self.ring.route(signature)]]
        with self._id_lock:
            request_id = next(self._request_ids)
        request = _PreparedRequest(
            request_id=request_id,
            job_id=plan.job_id,
            signature=signature,
            requested_tokens=int(requested_tokens),
            vector=vector,
            future=ServeFuture(),
            submitted_at=self._clock(),
        )
        dead = must_flush = False
        with shard.lock:
            if not shard.alive:
                dead = True
            else:
                shard.pending.append(request)
                must_flush = (
                    len(shard.pending) >= self.config.flush_batch_size
                )
        if dead:
            self.metrics.counter("rejected_shard_down").increment()
            self._resolve(
                request, shard, ResponseStatus.REJECTED, None,
                "shard_down", None,
            )
        elif must_flush:
            self._flush(shard)
        return request.future

    def request(
        self,
        plan: QueryPlan,
        requested_tokens: int,
        timeout: float | None = 30.0,
    ) -> ServeResponse:
        """Submit and block for the answer (the simple client call)."""
        return self.submit(plan, requested_tokens).result(timeout)

    def record_completion(
        self, response: ServeResponse, actual_runtime: float
    ) -> None:
        """Feed one completed job's run time back to the shard that served.

        Each shard's drift monitor only ever sees outcomes of its own
        predictions, mirroring the single-process feedback loop.
        """
        self.metrics.counter("completions").increment()
        if (
            response.shard is None
            or response.recommendation is None
            or response.status
            not in (ResponseStatus.OK, ResponseStatus.CACHED)
        ):
            return
        shard = self._shards[response.shard]
        if not shard.alive:
            return
        try:
            with shard.send_lock:
                shard.conn.send(
                    (
                        "completion",
                        response.status.value,
                        response.recommendation,
                        float(actual_runtime),
                    )
                )
        except (OSError, ValueError, BrokenPipeError):
            self._mark_dead(shard)

    # ------------------------------------------------------------------
    # model hot swap
    # ------------------------------------------------------------------
    def swap_model(
        self, model, wait: bool = True, timeout: float = 30.0
    ) -> dict[int, int | None]:
        """Stage ``model`` on every shard; swaps land at batch boundaries.

        Traffic is never paused: the broadcast rides the same pipes as
        request batches, each worker adopts the new generation between
        two batches, and batches already dispatched complete on the old
        replica. With ``wait`` (default) the call blocks until every
        live shard acknowledges, returning ``{shard: model_version}``;
        ``wait=False`` returns immediately with an empty dict.
        """
        if not self._running:
            raise ServingError("server is not running")
        if getattr(model, "uses_graph_features", False):
            raise ServingError(
                "cannot hot-swap a graph-input model into sharded serving"
            )
        blob = pickle.dumps(model)
        with self._swap_condition:
            self._swap_generation += 1
            generation = self._swap_generation
            self._swap_acks[generation] = {}
        recipients = []
        for shard in self._shards:
            if not shard.alive:
                continue
            try:
                with shard.send_lock:
                    shard.conn.send(("model", generation, blob))
                recipients.append(shard.index)
            except (OSError, ValueError, BrokenPipeError):
                self._mark_dead(shard)
        self.metrics.counter("model_swaps_staged").increment()
        if not wait:
            return {}
        deadline = time.monotonic() + timeout
        with self._swap_condition:
            while len(self._swap_acks[generation]) < len(
                [i for i in recipients if self._shards[i].alive]
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServingError(
                        "timed out waiting for shards to swap models"
                    )
                self._swap_condition.wait(remaining)
            return dict(self._swap_acks.pop(generation))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self, timeout: float = 5.0) -> dict:
        """Fleet-wide view: ring, parent prep cache, per-shard caches."""
        shards = []
        for shard in self._shards:
            if not shard.alive:
                shards.append({"shard": shard.index, "alive": False})
                continue
            reply = self._rpc(shard, ("stats",), timeout=timeout)
            entry = {"shard": shard.index, "alive": True}
            if reply is not None:
                entry.update(reply)
            shards.append(entry)
        return {
            "procs": self.config.procs,
            "ring_nodes": self.ring.nodes,
            "prep_cache": self._prep_cache.stats(),
            "shards": shards,
        }

    def sync_metrics(self, timeout: float = 5.0) -> None:
        """Pull every shard's outstanding metric delta into the parent."""
        for shard in self._shards:
            if shard.alive:
                self._rpc(shard, ("sync",), timeout=timeout)

    def metrics_snapshot(self, timeout: float = 5.0) -> dict:
        """A fleet-consistent snapshot (sync deltas first, then read)."""
        self.sync_metrics(timeout=timeout)
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rpc(self, shard: _Shard, message: tuple, timeout: float):
        """One request/reply exchange with a shard (serialized per shard)."""
        with shard.rpc_lock:
            try:
                with shard.send_lock:
                    shard.conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                self._mark_dead(shard)
                return None
            try:
                return shard.replies.get(timeout=timeout)
            except queue_module.Empty:
                raise ServingError(
                    f"shard {shard.index} did not reply to {message[0]!r}"
                ) from None

    def _flusher_loop(self) -> None:
        interval = max(self.config.flush_interval_s, 1e-4)
        while not self._stop.wait(interval):
            for shard in self._shards:
                if shard.alive and shard.pending:
                    self._flush(shard)

    def _flush(self, shard: _Shard) -> None:
        with shard.flush_lock:
            while True:
                with shard.lock:
                    batch = shard.pending[: self.config.flush_batch_size]
                    del shard.pending[: len(batch)]
                if not batch:
                    return
                self._send_batch(shard, batch)

    def _send_batch(
        self, shard: _Shard, batch: list[_PreparedRequest]
    ) -> None:
        width = int(batch[0].vector.size)
        mismatched = [r for r in batch if int(r.vector.size) != width]
        if mismatched:  # pragma: no cover - schema drift guard
            batch = [r for r in batch if int(r.vector.size) == width]
            for request in mismatched:
                self._resolve(
                    request, shard, ResponseStatus.REJECTED, None,
                    "feature_width_mismatch", None,
                )
            if not batch:
                return
        segment = self._ensure_segment(shard, width)
        slot = self._acquire_slot(shard)
        if slot is None:
            reason = "shard_down" if not shard.alive else "shutdown"
            for request in batch:
                self._resolve(
                    request, shard, ResponseStatus.REJECTED, None,
                    reason, None,
                )
            return
        offset = slot * self.config.flush_batch_size * width * 8
        rows = np.ndarray(
            (len(batch), width),
            dtype=np.float64,
            buffer=segment.buf,
            offset=offset,
        )
        entries = []
        with shard.lock:
            for i, request in enumerate(batch):
                rows[i] = request.vector  # the one copy on the hot path
                shard.inflight[request.request_id] = request
                entries.append(
                    (
                        request.request_id,
                        request.job_id,
                        request.signature,
                        request.requested_tokens,
                    )
                )
        try:
            with shard.send_lock:
                shard.conn.send(
                    ("batch", slot, segment.name, offset, width, entries)
                )
        except (OSError, ValueError, BrokenPipeError):
            self._mark_dead(shard)
            with shard.lock:
                for request in batch:
                    shard.inflight.pop(request.request_id, None)
            for request in batch:
                self._resolve(
                    request, shard, ResponseStatus.REJECTED, None,
                    "shard_down", None,
                )
            return
        self.metrics.counter("shard_batches", shard=shard.index).increment()
        self.metrics.histogram(
            "shard_batch_rows",
            bounds=range(1, self.config.flush_batch_size + 1),
        ).record(len(batch))

    def _ensure_segment(
        self, shard: _Shard, width: int
    ) -> shared_memory.SharedMemory:
        if shard.segment is None:
            size = self.config.shm_slots * self.config.flush_batch_size
            shard.segment = shared_memory.SharedMemory(
                create=True, size=max(1, size * width * 8)
            )
            shard.width = width
        elif shard.width != width:  # pragma: no cover - schema drift guard
            raise ServingError(
                "feature vector width changed mid-run; restart the server"
            )
        return shard.segment

    def _acquire_slot(self, shard: _Shard) -> int | None:
        """Block until a slot frees up (the backpressure point)."""
        while shard.alive:
            try:
                return shard.free_slots.get(timeout=0.05)
            except queue_module.Empty:
                if self._stop.is_set():
                    # Draining at shutdown: slots still come back from the
                    # reader until the worker stops; give it a beat.
                    try:
                        return shard.free_slots.get(timeout=1.0)
                    except queue_module.Empty:
                        return None
        return None

    def _reader_loop(self, shard: _Shard) -> None:
        while True:
            try:
                message = shard.conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "responses":
                _, slot, payload, metrics_state = message
                for (
                    request_id,
                    job_id,
                    status_value,
                    recommendation,
                    reason,
                    worker_latency,
                ) in payload:
                    with shard.lock:
                        request = shard.inflight.pop(request_id, None)
                    if request is None:  # pragma: no cover - defensive
                        continue
                    self._resolve(
                        request,
                        shard,
                        ResponseStatus(status_value),
                        recommendation,
                        reason,
                        worker_latency,
                    )
                shard.free_slots.put(slot)
                if metrics_state:
                    self._merge_worker_metrics(shard, metrics_state)
            elif kind == "swapped":
                _, generation, version = message
                with self._swap_condition:
                    self._swap_acks.setdefault(generation, {})[
                        shard.index
                    ] = version
                    self._swap_condition.notify_all()
            elif kind == "stats":
                shard.replies.put(message[1])
            elif kind == "metrics":
                if message[1]:
                    self._merge_worker_metrics(shard, message[1])
                shard.replies.put(None)
            elif kind == "stopped":
                if message[1]:
                    self._merge_worker_metrics(shard, message[1])
                break
        self._mark_dead(shard)

    def _mark_dead(self, shard: _Shard) -> None:
        with shard.lock:
            was_alive = shard.alive
            shard.alive = False
            orphans = list(shard.inflight.values())
            shard.inflight.clear()
            leftovers = list(shard.pending)
            shard.pending.clear()
        if was_alive and self._running:
            self.metrics.counter("shard_deaths").increment()
        for request in orphans + leftovers:
            reason = "shard_down" if self._running else "shutdown"
            self._resolve(
                request, shard, ResponseStatus.REJECTED, None, reason, None
            )
        with self._swap_condition:
            self._swap_condition.notify_all()

    def _resolve(
        self,
        request: _PreparedRequest,
        shard: _Shard,
        status: ResponseStatus,
        recommendation,
        reason: str | None,
        worker_latency: float | None,
    ) -> None:
        if request.future.done():  # pragma: no cover - double-answer guard
            return
        latency = max(0.0, self._clock() - request.submitted_at)
        self.metrics.counter(f"responses_{status.value}").increment()
        self.metrics.histogram("latency_s").record(latency)
        if worker_latency is not None:
            # End-to-end minus the worker's own submit->answer time =
            # routing + featurization + queueing + IPC overhead.
            self.metrics.histogram("shard_overhead_s").record(
                max(0.0, latency - worker_latency)
            )
        request.future._resolve(
            ServeResponse(
                job_id=request.job_id,
                status=status,
                recommendation=recommendation,
                reason=reason,
                latency_s=latency,
                shard=shard.index,
            )
        )

    def _merge_worker_metrics(self, shard: _Shard, state: dict) -> None:
        self.metrics.merge_state(relabel_state(state, shard=shard.index))

    def _register_gauges(self) -> None:
        self.metrics.register_gauge("shards", lambda: self.config.procs)
        self.metrics.register_gauge(
            "shards_alive",
            lambda: sum(1 for shard in self._shards if shard.alive),
        )
        self.metrics.register_gauge(
            "prep_cache_hit_rate", lambda: self._prep_cache.hit_rate
        )
        self.metrics.register_gauge(
            "inflight",
            lambda: sum(len(shard.inflight) for shard in self._shards),
        )
        self.metrics.register_gauge(
            "pending_flush",
            lambda: sum(len(shard.pending) for shard in self._shards),
        )


# ----------------------------------------------------------------------
def build_server(
    pipeline,
    config: ServerConfig | None = None,
    *,
    procs: int = 1,
    store: ModelStore | None = None,
    model_name: str | None = None,
    repository: JobRepository | None = None,
    fallback=None,
    monitor=None,
    metrics: MetricsRegistry | None = None,
    allocator=None,
    clock=time.monotonic,
    shard_config: ShardConfig | None = None,
):
    """One construction point for both serving flavors.

    ``procs=1`` returns today's :class:`AllocationServer` — the exact
    construction the replay engine and every existing caller already
    use, bit-identical. ``procs>1`` returns a
    :class:`ShardedAllocationServer`; per-shard concerns (model store,
    monitor, fallback, allocator) live inside each worker there, so
    passing them raises instead of silently dropping them — hot swaps go
    through :meth:`ShardedAllocationServer.swap_model`.
    """
    if procs < 1:
        raise ServingError("procs must be at least 1")
    if procs == 1:
        return AllocationServer(
            pipeline,
            config,
            store=store,
            model_name=model_name,
            repository=repository,
            fallback=fallback,
            monitor=monitor,
            metrics=metrics,
            allocator=allocator,
            clock=clock,
        )
    unsupported = {
        "store": store,
        "model_name": model_name,
        "fallback": fallback,
        "monitor": monitor,
        "allocator": allocator,
    }
    passed = sorted(k for k, v in unsupported.items() if v is not None)
    if passed:
        raise ServingError(
            f"sharded serving owns {', '.join(passed)} per shard; use "
            "swap_model for hot swaps and per-shard stats for monitors"
        )
    if shard_config is None:
        shard_config = ShardConfig(procs=procs)
    elif shard_config.procs != procs:
        shard_config = dataclasses.replace(shard_config, procs=procs)
    return ShardedAllocationServer(
        pipeline,
        shard_config,
        server_config=config,
        repository=repository,
        metrics=metrics,
        clock=clock,
    )
