"""Compatibility shim: serving metrics now live in :mod:`repro.obs.metrics`.

The serving layer's original private ``MetricsRegistry`` was promoted
into the process-wide observability subsystem so the simulator, the
training pipeline, and serving share one metric vocabulary (counters,
callback gauges, log-bucketed latency histograms, labels). Existing
imports — ``from repro.serving.metrics import MetricsRegistry`` and the
re-exports on ``repro.serving`` — keep working through this module.

Each :class:`~repro.serving.server.AllocationServer` still constructs a
private registry by default (its gauges and lifetime hit rates are
per-instance); pass ``metrics=repro.obs.get_registry()`` to record into
the shared process-wide registry instead, which is what the
``python -m repro trace`` CLI does.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, LatencyHistogram, MetricsRegistry

__all__ = ["Counter", "LatencyHistogram", "MetricsRegistry"]
