"""Admission control: rate limiting, load shedding, circuit breaking.

A serving endpoint that fronts a cluster-wide allocator must protect
itself (and its callers) from three distinct overload shapes:

* **sustained overload** — more requests per second than the scorer can
  handle: a :class:`TokenBucket` admits a configured steady rate with a
  bounded burst and sheds the rest *early*, before they consume queue
  space;
* **momentary bursts** — the server's bounded queue absorbs these; when
  it fills, submissions are rejected explicitly (backpressure) rather
  than queued into unbounded latency;
* **dependency failure** — when the model keeps throwing, a
  :class:`CircuitBreaker` stops sending traffic to it (open), probes it
  periodically (half-open), and restores traffic once probes succeed
  (closed), in the meantime letting the server answer from its fallback
  policy instead of surfacing exceptions.

Clocks are injectable so tests drive time deterministically.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable

from repro.exceptions import ServingError

__all__ = ["TokenBucket", "BreakerState", "CircuitBreaker"]


class TokenBucket:
    """Classic token-bucket rate limiter.

    Permits accrue at ``rate`` per second up to ``capacity``; each
    admitted request spends one. ``try_acquire`` never blocks — serving
    sheds over-rate traffic instead of queueing it.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServingError("rate must be positive (permits per second)")
        if capacity < 1:
            raise ServingError("bucket capacity must be at least 1")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._permits = float(capacity)
        self._last_refill = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._permits = min(self.capacity, self._permits + elapsed * self.rate)

    def try_acquire(self, permits: float = 1.0) -> bool:
        """Spend ``permits`` if available; False means shed the request."""
        if permits <= 0:
            raise ServingError("must acquire a positive number of permits")
        with self._lock:
            self._refill()
            if self._permits >= permits:
                self._permits -= permits
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._permits


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    * **closed** — traffic flows; ``failure_threshold`` consecutive
      failures trip the breaker.
    * **open** — ``allow()`` is False; after ``recovery_time`` seconds
      the breaker moves to half-open.
    * **half-open** — up to ``half_open_probes`` calls are let through;
      a failure re-opens (restarting the recovery clock), while
      ``half_open_probes`` consecutive successes close the breaker.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ServingError("failure threshold must be at least 1")
        if recovery_time <= 0:
            raise ServingError("recovery time must be positive")
        if half_open_probes < 1:
            raise ServingError("need at least one half-open probe")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.RLock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._trip_count = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trip_count(self) -> int:
        """How many times the breaker has opened over its lifetime."""
        with self._lock:
            return self._trip_count

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """May a scoring call proceed right now?

        In half-open state this *reserves* a probe slot, so at most
        ``half_open_probes`` calls hit the model concurrently while it
        is being felt out.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = BreakerState.CLOSED
                    self._consecutive_failures = 0
                    self._opened_at = None
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._trip_count += 1

    def reset(self) -> None:
        """Force-close (e.g. after redeploying a fixed model)."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probes_in_flight = 0
            self._probe_successes = 0
