"""Champion-challenger shadow scoring and the promotion gate.

Hot-swapping a freshly retrained model straight into the serving path is
an act of faith: the retrain consumed drifted telemetry, but nothing
checked that the new model actually predicts *better* — or that its
claimed uncertainty is calibrated — before it started deciding
allocations. Shadow scoring closes that gap:

* a staged **challenger** model scores the same live traffic as the
  champion, but its answers are never served — they are recorded
  against the job id;
* when a job completes, the challenger's prediction *at the allocation
  actually granted* is compared with the observed run time, feeding a
  dedicated :class:`~repro.tasq.monitoring.PredictionMonitor`;
* once the challenger has ``min_observations`` completions, the
  :class:`PromotionGate` decides exactly once: **promote** when the
  challenger's rolling median APE is no worse than ``max_ape_ratio``
  times the champion's *and* its interval coverage (when it produces
  intervals) lies inside ``[coverage_floor, coverage_ceiling]``;
  otherwise **reject** and keep the champion.

The coverage ceiling matters as much as the floor: a model can trivially
reach 100% coverage with absurdly wide intervals, which would make every
risk-adjusted recommendation uselessly conservative. All gate thresholds
are specified in ``docs/uncertainty.md`` and asserted by
``tests/test_uncertainty.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ServingError
from repro.tasq.monitoring import PredictionMonitor
from repro.tasq.pipeline import ScoringPipeline, TokenRecommendation

__all__ = ["PromotionGate", "ShadowDecision", "ShadowState"]

#: Most pending (scored, not yet completed) challenger predictions kept;
#: oldest entries are dropped first — a bound, not a correctness knob.
_MAX_PENDING_PREDICTIONS = 4096


@dataclass(frozen=True)
class PromotionGate:
    """The accept/reject rule for a shadow-scored challenger.

    Parameters
    ----------
    min_observations:
        Completed jobs the challenger must have been scored against
        before a decision is taken (the decision is one-shot, at exactly
        this count).
    max_ape_ratio:
        The challenger's rolling median APE may be at most this multiple
        of the champion's (1.1 = at most 10% worse; retrained models are
        expected to be *better*, the slack absorbs sampling noise). A
        champion with no error history auto-passes this clause.
    coverage_floor, coverage_ceiling:
        When the challenger produces intervals, its rolling q10-q90
        coverage must land inside this band: below the floor the
        intervals under-promise (mis-calibrated), above the ceiling they
        are so wide as to be uninformative. A challenger with no
        interval observations skips this clause.
    """

    min_observations: int = 40
    max_ape_ratio: float = 1.1
    coverage_floor: float = 0.65
    coverage_ceiling: float = 0.98

    def __post_init__(self) -> None:
        if self.min_observations < 1:
            raise ServingError("gate needs at least one observation")
        if self.max_ape_ratio <= 0:
            raise ServingError("APE ratio must be positive")
        if not 0.0 < self.coverage_floor < self.coverage_ceiling <= 1.0:
            raise ServingError(
                "coverage band must satisfy 0 < floor < ceiling <= 1"
            )


class ShadowDecision(enum.Enum):
    """Lifecycle of one staged challenger."""

    PENDING = "pending"
    PROMOTED = "promoted"
    REJECTED = "rejected"


@dataclass
class ShadowState:
    """One staged challenger: its pipeline, monitor, and pending scores.

    The owning server synchronises access; this object is plain state
    plus the gate arithmetic.
    """

    pipeline: ScoringPipeline
    gate: PromotionGate
    monitor: PredictionMonitor = field(default_factory=PredictionMonitor)
    decision: ShadowDecision = ShadowDecision.PENDING
    _pending: dict[str, TokenRecommendation] = field(default_factory=dict)

    @property
    def model(self):
        return self.pipeline.model

    # ------------------------------------------------------------------
    def record(self, job_id: str, recommendation: TokenRecommendation) -> None:
        """Remember the challenger's answer for a live job."""
        if len(self._pending) >= _MAX_PENDING_PREDICTIONS:
            self._pending.pop(next(iter(self._pending)))
        self._pending[job_id] = recommendation

    def observe(self, job_id: str, granted_tokens: int, actual: float) -> bool:
        """Score one completion against the challenger's prediction.

        The comparison is at the allocation the *champion* actually
        granted — both models are judged on the same counterfactual, so
        neither gets credit merely for recommending different tokens.
        Returns False when the challenger never scored this job (cached
        or fallback answers bypass shadow scoring).
        """
        recommendation = self._pending.pop(job_id, None)
        if recommendation is None or actual <= 0:
            return False
        predicted = float(recommendation.pcc.runtime(granted_tokens))
        interval = None
        if (
            recommendation.pcc_interval is not None
            and not recommendation.pcc_interval.is_degenerate
        ):
            lo, _, hi = recommendation.pcc_interval.runtime_interval(
                granted_tokens
            )
            if 0.0 < lo <= hi:
                interval = (lo, hi)
        self.monitor.observe(predicted, actual, interval=interval)
        return True

    # ------------------------------------------------------------------
    def decide(self, champion_monitor: PredictionMonitor) -> ShadowDecision:
        """One-shot gate evaluation once enough completions accumulated."""
        if self.decision is not ShadowDecision.PENDING:
            return self.decision
        snapshot = self.monitor.snapshot()
        if snapshot.observations < self.gate.min_observations:
            return ShadowDecision.PENDING

        champion_ape = champion_monitor.rolling_median_ape
        challenger_ape = snapshot.rolling_median_ape
        accuracy_ok = (
            champion_ape is None
            or challenger_ape is None
            or challenger_ape <= self.gate.max_ape_ratio * champion_ape
        )
        coverage = snapshot.rolling_coverage
        coverage_ok = (
            coverage is None
            or self.gate.coverage_floor
            <= coverage
            <= self.gate.coverage_ceiling
        )
        self.decision = (
            ShadowDecision.PROMOTED
            if accuracy_ok and coverage_ok
            else ShadowDecision.REJECTED
        )
        return self.decision
