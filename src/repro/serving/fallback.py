"""Degraded-mode recommendations when the model cannot answer.

*Runtime Variation in Big Data Analytics* (PAPERS.md) argues allocation
systems need graceful degradation when predictions are unreliable; the
production TASQ deployment likewise never blocks a SCOPE job on a model
outage — it falls back to the user's request. Two policies:

* :class:`PassthroughFallback` — echo the requested allocation. Always
  safe: the job runs exactly as it would without TASQ.
* :class:`HistoricalMedianFallback` — AutoToken-style per-signature
  history: recurring pipelines are allocated their historical median
  *peak* usage (capped at the request), since past peaks of the same
  structure are an excellent predictor of future need. Unseen
  signatures (ad-hoc jobs) defer to passthrough.

Fallback recommendations carry a degenerate flat PCC (zero exponent at
the observed/assumed run time) so downstream consumers that inspect the
curve see "no predicted benefit from more tokens" rather than garbage.

**Uncertainty contract.** A fallback answer is a point estimate by
construction — there is no model behind it to quantify spread — so its
``pcc_interval`` stays None and its ``risk`` stays None. Interval-aware
consumers (the monitor's coverage rule, risk-adjusted floors, the
shadow promotion gate) must treat such answers as carrying *no*
calibration evidence, not as zero-width intervals that trivially miss:
this module's recommendations are deliberately excluded from coverage
accounting (see ``docs/uncertainty.md``).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.pcc.curve import PowerLawPCC
from repro.scope.plan import QueryPlan
from repro.scope.repository import JobRepository
from repro.scope.signatures import plan_signature
from repro.tasq.pipeline import TokenRecommendation

__all__ = [
    "FallbackPolicy",
    "PassthroughFallback",
    "HistoricalMedianFallback",
    "degraded_recommendation",
    "degraded_recommendation_for",
]


def degraded_recommendation_for(
    job_id: str,
    requested_tokens: int,
    recommended_tokens: int,
    assumed_runtime: float = 1.0,
) -> TokenRecommendation:
    """A well-formed recommendation carrying no model prediction.

    Plan-free variant: shard workers answer prepared requests (job id +
    signature only, no :class:`QueryPlan` crosses the process boundary)
    through this entry point.
    """
    flat = PowerLawPCC(a=0.0, b=max(assumed_runtime, 1e-9))
    return TokenRecommendation(
        job_id=job_id,
        pcc=flat,
        requested_tokens=int(requested_tokens),
        optimal_tokens=int(min(max(recommended_tokens, 1), requested_tokens)),
        predicted_runtime_at_requested=flat.runtime(requested_tokens),
        predicted_runtime_at_optimal=flat.runtime(requested_tokens),
    )


def degraded_recommendation(
    plan: QueryPlan,
    requested_tokens: int,
    recommended_tokens: int,
    assumed_runtime: float = 1.0,
) -> TokenRecommendation:
    """A well-formed recommendation carrying no model prediction."""
    return degraded_recommendation_for(
        plan.job_id, requested_tokens, recommended_tokens, assumed_runtime
    )


class FallbackPolicy(Protocol):
    """Anything that can answer when the scoring path cannot.

    Policies may additionally expose
    ``recommend_by_signature(job_id, signature, requested_tokens)`` —
    the plan-free path the sharded server uses; servers degrade to a
    passthrough answer when a custom policy lacks it.
    """

    def recommend(
        self, plan: QueryPlan, requested_tokens: int
    ) -> TokenRecommendation: ...


class PassthroughFallback:
    """Echo the requested allocation (the do-no-harm default)."""

    def recommend(
        self, plan: QueryPlan, requested_tokens: int
    ) -> TokenRecommendation:
        return degraded_recommendation(plan, requested_tokens, requested_tokens)

    def recommend_by_signature(
        self, job_id: str, signature: str, requested_tokens: int
    ) -> TokenRecommendation:
        return degraded_recommendation_for(
            job_id, requested_tokens, requested_tokens
        )


class HistoricalMedianFallback:
    """Per-signature historical median peak usage, passthrough otherwise.

    The signature→median table is precomputed from the repository at
    construction (an O(history) scan), so ``recommend`` is a dictionary
    lookup on the hot path. Call :meth:`refresh` after the repository
    grows materially.
    """

    def __init__(self, repository: JobRepository) -> None:
        self._repository = repository
        self._passthrough = PassthroughFallback()
        self._median_peak: dict[str, int] = {}
        self._median_runtime: dict[str, float] = {}
        self.refresh()

    def refresh(self) -> None:
        peaks: dict[str, list[float]] = {}
        runtimes: dict[str, list[float]] = {}
        for record in self._repository:
            signature = plan_signature(record.plan)
            peaks.setdefault(signature, []).append(float(record.peak_tokens))
            runtimes.setdefault(signature, []).append(float(record.runtime))
        self._median_peak = {
            sig: max(1, int(round(float(np.median(values)))))
            for sig, values in peaks.items()
        }
        self._median_runtime = {
            sig: float(np.median(values)) for sig, values in runtimes.items()
        }

    @property
    def known_signatures(self) -> int:
        return len(self._median_peak)

    def recommend(
        self, plan: QueryPlan, requested_tokens: int
    ) -> TokenRecommendation:
        return self.recommend_by_signature(
            plan.job_id, plan_signature(plan), requested_tokens
        )

    def recommend_by_signature(
        self, job_id: str, signature: str, requested_tokens: int
    ) -> TokenRecommendation:
        median_peak = self._median_peak.get(signature)
        if median_peak is None:
            return self._passthrough.recommend_by_signature(
                job_id, signature, requested_tokens
            )
        return degraded_recommendation_for(
            job_id,
            requested_tokens,
            median_peak,
            assumed_runtime=self._median_runtime.get(signature, 1.0),
        )
