"""Thread-safe LRU caches for the serving hot path.

Two cache roles sit in front of the scoring pipeline:

* :class:`RecommendationCache` — full token recommendations, keyed on
  the plan's *structural signature* plus the requested token count.
  Recurring instances of a SCOPE pipeline share a signature by
  construction (`repro.scope.signatures`), so the daily re-submission of
  a recurring job is answered without touching the model — exactly the
  production observation (AutoToken, §6.2) that recurring jobs dominate
  traffic and barely drift.
* :class:`FeatureCache` — per-plan :class:`~repro.tasq.pipeline.PlanFeatures`,
  keyed on the exact job identity. Featurization is the expensive
  CPU-bound step of scoring; retries and duplicate submissions of the
  *same* instance skip it entirely.

Both are thin domain wrappers over one :class:`LRUCache` with hit/miss
accounting that the server exports through its metrics registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

import numpy as np

from repro.exceptions import ServingError
from repro.scope.plan import QueryPlan
from repro.scope.signatures import plan_signature
from repro.tasq.pipeline import PlanFeatures, TokenRecommendation, featurize

__all__ = [
    "LRUCache",
    "RecommendationCache",
    "FeatureCache",
    "FeatureVectorCache",
]

_MISSING = object()


class LRUCache:
    """A bounded, thread-safe least-recently-used map.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``capacity`` is exceeded. Hits and misses are counted so serving
    metrics can report hit rates without wrapping every call site.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not refresh recency or count a hit."""
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[Hashable]:
        """Keys from least- to most-recently used (for tests/debugging)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def hit_rate(self) -> float | None:
        """Hits / lookups, or None before any lookup."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else None

    def stats(self) -> dict[str, float | int | None]:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else None,
            }


class RecommendationCache:
    """Token recommendations keyed on (plan signature, requested tokens)."""

    def __init__(self, capacity: int = 1024) -> None:
        self._cache = LRUCache(capacity)

    @staticmethod
    def key(signature: str, requested_tokens: int) -> tuple[str, int]:
        return (signature, int(requested_tokens))

    def get(
        self, signature: str, requested_tokens: int
    ) -> TokenRecommendation | None:
        return self._cache.get(self.key(signature, requested_tokens))

    def put(
        self,
        signature: str,
        requested_tokens: int,
        recommendation: TokenRecommendation,
    ) -> None:
        self._cache.put(self.key(signature, requested_tokens), recommendation)

    def stats(self) -> dict[str, float | int | None]:
        return self._cache.stats()

    @property
    def hit_rate(self) -> float | None:
        return self._cache.hit_rate

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()


class FeatureVectorCache:
    """Contiguous float64 job vectors, keyed per instance.

    The sharded front end (`repro.serving.shard`) ships only the
    aggregated job vector across the process boundary — written straight
    into a shared-memory slot — so its parent-side preparation cache
    stores exactly that: a C-contiguous ``float64`` row ready for
    ``ndarray[i] = vector``. Keys match :class:`FeatureCache` (job id +
    structural signature): instances of a recurring template share
    structure but not compile-time estimates, so vectors are never
    shared across instances.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._cache = LRUCache(capacity)

    @staticmethod
    def key(job_id: str, signature: str) -> tuple[str, str]:
        return (job_id, signature)

    def vector_for(self, plan: QueryPlan, signature: str) -> np.ndarray:
        """Cached job vector for ``plan``, featurizing on miss.

        ``signature`` is passed in (the caller already computed it to
        route the request) so a hit costs one dictionary lookup and no
        hashing of the plan structure.
        """
        key = self.key(plan.job_id, signature)
        vector = self._cache.get(key)
        if vector is None:
            vector = np.ascontiguousarray(
                featurize(plan).job_vector, dtype=np.float64
            )
            self._cache.put(key, vector)
        return vector

    def stats(self) -> dict[str, float | int | None]:
        return self._cache.stats()

    @property
    def hit_rate(self) -> float | None:
        return self._cache.hit_rate

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()


class FeatureCache:
    """Memoized :func:`repro.tasq.pipeline.featurize`, keyed per instance.

    Keys include the job id, not just the signature: two instances of a
    recurring template share structure but *not* compile-time estimates
    (input sizes drift day to day), so features must never be shared
    across instances.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._cache = LRUCache(capacity)

    @staticmethod
    def key(plan: QueryPlan) -> tuple[str, str]:
        return (plan.job_id, plan_signature(plan))

    def features_for(self, plan: QueryPlan) -> PlanFeatures:
        """Cached features for ``plan``, computing and storing on miss."""
        key = self.key(plan)
        features = self._cache.get(key)
        if features is None:
            features = featurize(plan)
            self._cache.put(key, features)
        return features

    def stats(self) -> dict[str, float | int | None]:
        return self._cache.stats()

    @property
    def hit_rate(self) -> float | None:
        return self._cache.hit_rate

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
