"""The allocation-serving layer: concurrent, cached, admission-controlled.

Models the production deployment path of Figure 4 — the always-on
endpoint that answers every incoming job's "how many tokens?" at
compile time — as an in-process system: a bounded queue and worker
pool with micro-batching (:mod:`~repro.serving.server`), signature-keyed
recommendation/feature caches (:mod:`~repro.serving.cache`), token-bucket
rate limiting plus a circuit breaker (:mod:`~repro.serving.admission`),
degraded-mode fallbacks (:mod:`~repro.serving.fallback`), a metrics
registry (:mod:`~repro.serving.metrics`), champion-challenger shadow
scoring with a coverage-gated promotion rule
(:mod:`~repro.serving.shadow`), a seeded load generator
(:mod:`~repro.serving.loadgen`), and a shared-nothing multi-process
front end that scales the endpoint across cores
(:mod:`~repro.serving.shard`, routed by the consistent-hash ring in
:mod:`~repro.serving.ring`).
"""

from repro.serving.admission import BreakerState, CircuitBreaker, TokenBucket
from repro.serving.cache import (
    FeatureCache,
    FeatureVectorCache,
    LRUCache,
    RecommendationCache,
)
from repro.serving.fallback import (
    FallbackPolicy,
    HistoricalMedianFallback,
    PassthroughFallback,
    degraded_recommendation,
    degraded_recommendation_for,
)
from repro.serving.loadgen import LoadGenerator, LoadgenConfig, LoadReport
from repro.serving.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.serving.ring import ConsistentHashRing
from repro.serving.shadow import PromotionGate, ShadowDecision, ShadowState
from repro.serving.shard import (
    ShardConfig,
    ShardedAllocationServer,
    build_server,
)
from repro.serving.server import (
    AllocationServer,
    ResponseStatus,
    ServeFuture,
    ServeResponse,
    ServerConfig,
)

__all__ = [
    "TokenBucket",
    "BreakerState",
    "CircuitBreaker",
    "LRUCache",
    "RecommendationCache",
    "FeatureCache",
    "FeatureVectorCache",
    "FallbackPolicy",
    "PassthroughFallback",
    "HistoricalMedianFallback",
    "degraded_recommendation",
    "degraded_recommendation_for",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "ServerConfig",
    "ResponseStatus",
    "ServeResponse",
    "ServeFuture",
    "AllocationServer",
    "PromotionGate",
    "ShadowDecision",
    "ShadowState",
    "LoadgenConfig",
    "LoadReport",
    "LoadGenerator",
    "ConsistentHashRing",
    "ShardConfig",
    "ShardedAllocationServer",
    "build_server",
]
