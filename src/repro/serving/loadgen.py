"""Seeded load generation against an allocation server.

Serving work is only credible with a workload behind it. The generator
builds a deterministic request schedule from the synthetic SCOPE
population (`repro.scope.generator`) and drives the server — the
single-process :class:`~repro.serving.server.AllocationServer` or the
multi-process :class:`~repro.serving.shard.ShardedAllocationServer`
(anything exposing ``submit``/``request``) — in either mode:

* **closed loop** — ``clients`` threads, each submitting its next
  request as soon as the previous one completes (models a fixed-size
  caller population; throughput adapts to server speed);
* **open loop** — requests submitted at a fixed arrival rate regardless
  of completion (models independent outside traffic; overload shows up
  as queue growth and load shedding rather than slower arrivals).

Open-loop latency is **coordinated-omission corrected**: each request's
latency is measured from its *intended* send time on the arrival
schedule, not from whenever the generator actually managed to submit
it. A saturated server stalls the submission loop itself; charging the
resulting send lag to the requests (rather than silently forgiving it)
is what keeps reported p95/p99 honest under overload.

The schedule samples jobs with a Zipf-flavoured skew so a handful of
recurring pipelines dominate traffic — the production shape that makes
the recommendation cache matter. With one client (or in open loop, one
generation seed) the schedule, responses, and count-based statistics
are fully deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.exceptions import ServingError
from repro.obs import trace
from repro.scope.generator import JobInstance
from repro.serving.server import AllocationServer, ResponseStatus, ServeFuture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.serving.shard import ShardedAllocationServer

    AnyServer = Union[AllocationServer, "ShardedAllocationServer"]
else:
    AnyServer = AllocationServer

__all__ = ["LoadgenConfig", "LoadReport", "LoadGenerator"]


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    #: Total requests to issue.
    requests: int = 400
    #: Concurrent closed-loop clients (ignored in open-loop mode).
    clients: int = 4
    #: Zipf-like skew of job popularity; 0 = uniform traffic.
    popularity_skew: float = 1.1
    #: Open-loop arrival rate in requests/second (None = closed loop).
    arrival_rate: float | None = None
    #: RNG seed for the request schedule.
    seed: int = 0
    #: Optional latency SLOs (seconds). Violations are recorded on the
    #: report; :meth:`LoadReport.assert_slo` turns them into errors.
    slo_p95_s: float | None = None
    slo_p99_s: float | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServingError("need at least one request")
        if self.clients < 1:
            raise ServingError("need at least one client")
        if self.popularity_skew < 0:
            raise ServingError("popularity skew must be non-negative")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ServingError("arrival rate must be positive when set")
        for name, slo in (("p95", self.slo_p95_s), ("p99", self.slo_p99_s)):
            if slo is not None and slo <= 0:
                raise ServingError(f"{name} SLO must be positive when set")


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run observed."""

    requests: int
    duration_s: float
    throughput_rps: float
    ok: int
    cached: int
    fallback: int
    rejected: int
    latency_p50_s: float | None
    latency_p95_s: float | None
    latency_p99_s: float | None
    cache_hit_rate: float | None
    shed_rate: float
    fallback_rate: float
    #: Worst send lag behind the open-loop arrival schedule (0 when the
    #: generator kept up, or in closed-loop mode). Nonzero means the
    #: percentiles above include coordinated-omission correction.
    max_send_lag_s: float = 0.0
    #: Human-readable SLO violations (empty = all configured SLOs held).
    slo_violations: tuple[str, ...] = ()

    def assert_slo(self) -> "LoadReport":
        """Raise if any configured latency SLO was violated."""
        if self.slo_violations:
            raise ServingError(
                "latency SLO violated: " + "; ".join(self.slo_violations)
            )
        return self

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""

        def _ms(value: float | None) -> str:
            return f"{value * 1e3:8.2f} ms" if value is not None else "     n/a"

        hit = (
            f"{self.cache_hit_rate:.1%}"
            if self.cache_hit_rate is not None
            else "n/a"
        )
        lines = [
            f"requests        {self.requests:>8}"
            f"   (ok {self.ok}, cached {self.cached},"
            f" fallback {self.fallback}, rejected {self.rejected})",
            f"duration        {self.duration_s:>8.2f} s"
            f"   throughput {self.throughput_rps:,.0f} req/s",
            f"latency p50     {_ms(self.latency_p50_s)}",
            f"latency p95     {_ms(self.latency_p95_s)}",
            f"latency p99     {_ms(self.latency_p99_s)}",
            f"cache hit rate  {hit:>8}",
            f"shed rate       {self.shed_rate:>8.1%}",
            f"fallback rate   {self.fallback_rate:>8.1%}",
        ]
        if self.max_send_lag_s > 0:
            lines.append(
                f"max send lag    {_ms(self.max_send_lag_s)}"
                "   (latencies CO-corrected)"
            )
        for violation in self.slo_violations:
            lines.append(f"SLO VIOLATION   {violation}")
        return "\n".join(lines)


class LoadGenerator:
    """Drives a server with a deterministic, popularity-skewed schedule."""

    def __init__(self, jobs: list[JobInstance], config: LoadgenConfig | None = None):
        if not jobs:
            raise ServingError("load generation needs at least one job")
        self.jobs = list(jobs)
        self.config = config or LoadgenConfig()

    # ------------------------------------------------------------------
    def schedule(self) -> list[JobInstance]:
        """The request sequence: seeded, popularity-skewed job sampling."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        ranks = np.arange(1, len(self.jobs) + 1, dtype=float)
        weights = np.power(ranks, -config.popularity_skew)
        weights /= weights.sum()
        order = rng.permutation(len(self.jobs))  # decouple rank from job id
        indices = rng.choice(len(self.jobs), size=config.requests, p=weights)
        return [self.jobs[order[i]] for i in indices]

    # ------------------------------------------------------------------
    def run(self, server: AnyServer) -> LoadReport:
        """Issue the schedule against ``server`` and summarise the answers."""
        schedule = self.schedule()
        responses: list = [None] * len(schedule)
        send_lags: list[float] | None = None
        mode = "open" if self.config.arrival_rate is not None else "closed"
        with trace.span(
            "serving.loadgen_pass", requests=len(schedule), mode=mode
        ):
            started = time.perf_counter()
            if self.config.arrival_rate is None:
                self._run_closed_loop(server, schedule, responses)
            else:
                send_lags = self._run_open_loop(server, schedule, responses)
            duration = max(time.perf_counter() - started, 1e-9)
        return self._report(responses, duration, send_lags)

    def _run_closed_loop(
        self, server: AnyServer, schedule: list[JobInstance], responses: list
    ) -> None:
        cursor_lock = threading.Lock()
        cursor = {"next": 0}

        def client() -> None:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(schedule):
                        return
                    cursor["next"] = index + 1
                job = schedule[index]
                responses[index] = server.request(
                    job.plan, job.requested_tokens, timeout=60.0
                )

        threads = [
            threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
            for i in range(min(self.config.clients, len(schedule)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def _run_open_loop(
        self, server: AnyServer, schedule: list[JobInstance], responses: list
    ) -> list[float]:
        """Submit on a fixed arrival schedule; returns per-request send lag.

        The coordinated-omission trap: under saturation ``submit`` (or
        the sleep loop behind it) lags the arrival schedule, so request
        ``i`` leaves late — and its server-measured latency starts late,
        quietly excluding the very delay overload caused. We timestamp
        each request's *intended* arrival (``start + i * interval``) and
        return ``actual_send - intended`` so the report can charge the
        lag back to every late request.
        """
        assert self.config.arrival_rate is not None
        interval = 1.0 / self.config.arrival_rate
        futures: list[ServeFuture] = []
        send_lags: list[float] = []
        start = time.perf_counter()
        for index, job in enumerate(schedule):
            intended = start + index * interval
            delay = intended - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            send_lags.append(max(0.0, time.perf_counter() - intended))
            futures.append(server.submit(job.plan, job.requested_tokens))
        for index, future in enumerate(futures):
            responses[index] = future.result(timeout=60.0)
        return send_lags

    # ------------------------------------------------------------------
    def _report(
        self,
        responses: list,
        duration: float,
        send_lags: list[float] | None = None,
    ) -> LoadReport:
        answered = [r for r in responses if r is not None]
        by_status = {status: 0 for status in ResponseStatus}
        for response in answered:
            by_status[response.status] += 1
        if send_lags is None:
            latencies = sorted(r.latency_s for r in answered)
            max_lag = 0.0
        else:
            # CO correction: latency from the intended send time = send
            # lag + the server's own submit->answer latency.
            latencies = sorted(
                lag + response.latency_s
                for lag, response in zip(send_lags, responses)
                if response is not None
            )
            max_lag = max(send_lags, default=0.0)

        def percentile(q: float) -> float | None:
            if not latencies:
                return None
            rank = min(len(latencies) - 1, int(round(q * (len(latencies) - 1))))
            return latencies[rank]

        total = len(answered)
        cached = by_status[ResponseStatus.CACHED]
        model_answered = by_status[ResponseStatus.OK] + cached
        p50, p95, p99 = percentile(0.50), percentile(0.95), percentile(0.99)
        violations = []
        for name, slo, observed in (
            ("p95", self.config.slo_p95_s, p95),
            ("p99", self.config.slo_p99_s, p99),
        ):
            if slo is not None and observed is not None and observed > slo:
                violations.append(
                    f"{name} {observed * 1e3:.2f} ms > SLO {slo * 1e3:.2f} ms"
                )
        return LoadReport(
            requests=total,
            duration_s=duration,
            throughput_rps=total / duration,
            ok=by_status[ResponseStatus.OK],
            cached=cached,
            fallback=by_status[ResponseStatus.FALLBACK],
            rejected=by_status[ResponseStatus.REJECTED],
            latency_p50_s=p50,
            latency_p95_s=p95,
            latency_p99_s=p99,
            cache_hit_rate=cached / model_answered if model_answered else None,
            shed_rate=by_status[ResponseStatus.REJECTED] / total if total else 0.0,
            fallback_rate=(
                by_status[ResponseStatus.FALLBACK] / total if total else 0.0
            ),
            max_send_lag_s=max_lag,
            slo_violations=tuple(violations),
        )
