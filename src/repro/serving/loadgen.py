"""Seeded load generation against an :class:`AllocationServer`.

Serving work is only credible with a workload behind it. The generator
builds a deterministic request schedule from the synthetic SCOPE
population (`repro.scope.generator`) and drives the server in either
mode:

* **closed loop** — ``clients`` threads, each submitting its next
  request as soon as the previous one completes (models a fixed-size
  caller population; throughput adapts to server speed);
* **open loop** — requests submitted at a fixed arrival rate regardless
  of completion (models independent outside traffic; overload shows up
  as queue growth and load shedding rather than slower arrivals).

The schedule samples jobs with a Zipf-flavoured skew so a handful of
recurring pipelines dominate traffic — the production shape that makes
the recommendation cache matter. With one client (or in open loop, one
generation seed) the schedule, responses, and count-based statistics
are fully deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ServingError
from repro.obs import trace
from repro.scope.generator import JobInstance
from repro.serving.server import AllocationServer, ResponseStatus, ServeFuture

__all__ = ["LoadgenConfig", "LoadReport", "LoadGenerator"]


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    #: Total requests to issue.
    requests: int = 400
    #: Concurrent closed-loop clients (ignored in open-loop mode).
    clients: int = 4
    #: Zipf-like skew of job popularity; 0 = uniform traffic.
    popularity_skew: float = 1.1
    #: Open-loop arrival rate in requests/second (None = closed loop).
    arrival_rate: float | None = None
    #: RNG seed for the request schedule.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServingError("need at least one request")
        if self.clients < 1:
            raise ServingError("need at least one client")
        if self.popularity_skew < 0:
            raise ServingError("popularity skew must be non-negative")
        if self.arrival_rate is not None and self.arrival_rate <= 0:
            raise ServingError("arrival rate must be positive when set")


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run observed."""

    requests: int
    duration_s: float
    throughput_rps: float
    ok: int
    cached: int
    fallback: int
    rejected: int
    latency_p50_s: float | None
    latency_p95_s: float | None
    latency_p99_s: float | None
    cache_hit_rate: float | None
    shed_rate: float
    fallback_rate: float

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI."""

        def _ms(value: float | None) -> str:
            return f"{value * 1e3:8.2f} ms" if value is not None else "     n/a"

        hit = (
            f"{self.cache_hit_rate:.1%}"
            if self.cache_hit_rate is not None
            else "n/a"
        )
        return "\n".join(
            [
                f"requests        {self.requests:>8}"
                f"   (ok {self.ok}, cached {self.cached},"
                f" fallback {self.fallback}, rejected {self.rejected})",
                f"duration        {self.duration_s:>8.2f} s"
                f"   throughput {self.throughput_rps:,.0f} req/s",
                f"latency p50     {_ms(self.latency_p50_s)}",
                f"latency p95     {_ms(self.latency_p95_s)}",
                f"latency p99     {_ms(self.latency_p99_s)}",
                f"cache hit rate  {hit:>8}",
                f"shed rate       {self.shed_rate:>8.1%}",
                f"fallback rate   {self.fallback_rate:>8.1%}",
            ]
        )


class LoadGenerator:
    """Drives a server with a deterministic, popularity-skewed schedule."""

    def __init__(self, jobs: list[JobInstance], config: LoadgenConfig | None = None):
        if not jobs:
            raise ServingError("load generation needs at least one job")
        self.jobs = list(jobs)
        self.config = config or LoadgenConfig()

    # ------------------------------------------------------------------
    def schedule(self) -> list[JobInstance]:
        """The request sequence: seeded, popularity-skewed job sampling."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        ranks = np.arange(1, len(self.jobs) + 1, dtype=float)
        weights = np.power(ranks, -config.popularity_skew)
        weights /= weights.sum()
        order = rng.permutation(len(self.jobs))  # decouple rank from job id
        indices = rng.choice(len(self.jobs), size=config.requests, p=weights)
        return [self.jobs[order[i]] for i in indices]

    # ------------------------------------------------------------------
    def run(self, server: AllocationServer) -> LoadReport:
        """Issue the schedule against ``server`` and summarise the answers."""
        schedule = self.schedule()
        responses: list = [None] * len(schedule)
        mode = "open" if self.config.arrival_rate is not None else "closed"
        with trace.span(
            "serving.loadgen_pass", requests=len(schedule), mode=mode
        ):
            started = time.perf_counter()
            if self.config.arrival_rate is None:
                self._run_closed_loop(server, schedule, responses)
            else:
                self._run_open_loop(server, schedule, responses)
            duration = max(time.perf_counter() - started, 1e-9)
        return self._report(responses, duration)

    def _run_closed_loop(
        self, server: AllocationServer, schedule: list[JobInstance], responses: list
    ) -> None:
        cursor_lock = threading.Lock()
        cursor = {"next": 0}

        def client() -> None:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(schedule):
                        return
                    cursor["next"] = index + 1
                job = schedule[index]
                responses[index] = server.request(
                    job.plan, job.requested_tokens, timeout=60.0
                )

        threads = [
            threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
            for i in range(min(self.config.clients, len(schedule)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def _run_open_loop(
        self, server: AllocationServer, schedule: list[JobInstance], responses: list
    ) -> None:
        assert self.config.arrival_rate is not None
        interval = 1.0 / self.config.arrival_rate
        futures: list[ServeFuture] = []
        next_send = time.perf_counter()
        for job in schedule:
            delay = next_send - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(server.submit(job.plan, job.requested_tokens))
            next_send += interval
        for index, future in enumerate(futures):
            responses[index] = future.result(timeout=60.0)

    # ------------------------------------------------------------------
    def _report(self, responses: list, duration: float) -> LoadReport:
        answered = [r for r in responses if r is not None]
        by_status = {status: 0 for status in ResponseStatus}
        for response in answered:
            by_status[response.status] += 1
        latencies = sorted(r.latency_s for r in answered)

        def percentile(q: float) -> float | None:
            if not latencies:
                return None
            rank = min(len(latencies) - 1, int(round(q * (len(latencies) - 1))))
            return latencies[rank]

        total = len(answered)
        cached = by_status[ResponseStatus.CACHED]
        model_answered = by_status[ResponseStatus.OK] + cached
        return LoadReport(
            requests=total,
            duration_s=duration,
            throughput_rps=total / duration,
            ok=by_status[ResponseStatus.OK],
            cached=cached,
            fallback=by_status[ResponseStatus.FALLBACK],
            rejected=by_status[ResponseStatus.REJECTED],
            latency_p50_s=percentile(0.50),
            latency_p95_s=percentile(0.95),
            latency_p99_s=percentile(0.99),
            cache_hit_rate=cached / model_answered if model_answered else None,
            shed_rate=by_status[ResponseStatus.REJECTED] / total if total else 0.0,
            fallback_rate=(
                by_status[ResponseStatus.FALLBACK] / total if total else 0.0
            ),
        )
