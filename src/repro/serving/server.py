"""The in-process allocation server (the "AKS endpoint" of Figure 4).

Production TASQ serves every incoming SCOPE job a compile-time token
recommendation. This module reproduces that serving path as an
in-process concurrent system:

.. code-block:: text

            submit()                    worker pool
    client ──────────► [admission] ──► [bounded queue] ──► [micro-batcher]
                        │   │                                   │
                        │   └─ recommendation cache (signature  ▼
                        │      + tokens) answers recurring   score_batch
                        │      traffic without the model        │
                        └─ token bucket / breaker-open          ▼
                           short-circuits              cache fill + respond
                                                       (fallback on failure)

* **admission** (`repro.serving.admission`) — an optional token-bucket
  rate limit sheds over-rate traffic before it costs anything, and a
  full queue rejects with explicit backpressure instead of unbounded
  latency.
* **micro-batching** — workers coalesce whatever is queued (up to
  ``max_batch_size``, waiting at most ``max_batch_wait_s``) into one
  :meth:`~repro.tasq.pipeline.ScoringPipeline.score_batch` call,
  trading a bounded latency bump for vectorised model throughput.
* **caching** (`repro.serving.cache`) — recommendation hits bypass the
  queue entirely; feature hits skip the expensive featurization step.
* **failure containment** — scoring failures trip a circuit breaker;
  while it is open (and for deadline-expired or failed requests) the
  configured fallback policy answers instead of raising.
* **feedback** — completed-job outcomes flow into a
  :class:`~repro.tasq.monitoring.PredictionMonitor` whose rolling error
  and retraining signal are exported in the metrics snapshot.
* **hot swap** — when constructed over a :class:`ModelStore`, workers
  poll :meth:`~repro.tasq.model_store.ModelStore.latest` and switch to
  newly registered model versions without a restart.
* **shadow scoring** (`repro.serving.shadow`) — a staged challenger
  model scores the same live traffic without serving; its completions
  feed a dedicated monitor and a :class:`~repro.serving.shadow
  .PromotionGate` promotes it (hot-swap) only when its accuracy and
  interval coverage clear the gate (see ``docs/uncertainty.md``).
"""

from __future__ import annotations

import dataclasses
import enum
import queue as queue_module
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.fleet.allocator import GlobalAllocator

from repro.exceptions import ReproError, ServingError
from repro.obs import trace
from repro.scope.plan import QueryPlan
from repro.scope.repository import JobRepository
from repro.scope.signatures import plan_signature
from repro.serving.admission import BreakerState, CircuitBreaker, TokenBucket
from repro.serving.cache import FeatureCache, RecommendationCache
from repro.serving.fallback import (
    FallbackPolicy,
    HistoricalMedianFallback,
    PassthroughFallback,
    degraded_recommendation_for,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.shadow import PromotionGate, ShadowDecision, ShadowState
from repro.tasq.model_store import ModelStore
from repro.tasq.monitoring import PredictionMonitor
from repro.tasq.pipeline import (
    PlanFeatures,
    ScoringPipeline,
    TokenRecommendation,
)

__all__ = [
    "ServerConfig",
    "ResponseStatus",
    "ServeResponse",
    "ServeFuture",
    "AllocationServer",
]


@dataclass(frozen=True)
class ServerConfig:
    """Operating envelope of an :class:`AllocationServer`."""

    #: Worker threads pulling from the request queue.
    workers: int = 2
    #: Bound of the request queue; a full queue sheds new submissions.
    max_queue: int = 128
    #: Largest micro-batch handed to one ``score_batch`` call.
    max_batch_size: int = 8
    #: How long a worker waits to grow a batch beyond its first request.
    max_batch_wait_s: float = 0.002
    #: Per-request deadline (submit → scored); expired requests get the
    #: fallback answer. ``None`` disables deadlines.
    deadline_s: float | None = None
    #: Steady-state admitted requests per second (None = unlimited).
    rate_limit_rps: float | None = None
    #: Burst size of the rate limiter.
    rate_limit_burst: int = 32
    #: Consecutive scoring failures that trip the circuit breaker.
    breaker_failure_threshold: int = 5
    #: Seconds the breaker stays open before probing the model again.
    breaker_recovery_s: float = 5.0
    #: Consecutive successful probes needed to close the breaker.
    breaker_half_open_probes: int = 2
    #: Capacities of the two serving caches.
    recommendation_cache_size: int = 2048
    feature_cache_size: int = 2048
    #: How often idle workers poll the model store for a newer version.
    model_refresh_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError("need at least one worker")
        if self.max_queue < 1:
            raise ServingError("queue bound must be at least 1")
        if self.max_batch_size < 1:
            raise ServingError("max batch size must be at least 1")
        if self.max_batch_wait_s < 0:
            raise ServingError("batch wait must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServingError("deadline must be positive when set")
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ServingError("rate limit must be positive when set")


class ResponseStatus(enum.Enum):
    """How a request was answered."""

    OK = "ok"  # scored by the model
    CACHED = "cached"  # served from the recommendation cache
    FALLBACK = "fallback"  # degraded answer (breaker/deadline/error)
    REJECTED = "rejected"  # shed: no recommendation produced


@dataclass(frozen=True)
class ServeResponse:
    """The server's answer for one submitted request."""

    job_id: str
    status: ResponseStatus
    recommendation: TokenRecommendation | None
    reason: str | None
    latency_s: float
    #: Index of the shard that answered (None for single-process serving).
    #: The sharded front end routes completion feedback back by it.
    shard: int | None = None

    @property
    def tokens(self) -> int | None:
        """The allocation to grant, None only for rejected requests."""
        if self.recommendation is None:
            return None
        return self.recommendation.optimal_tokens


class ServeFuture:
    """Handle to an in-flight request; ``result()`` blocks for the answer."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: ServeResponse | None = None

    def _resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeResponse:
        if not self._event.wait(timeout):
            raise ServingError("timed out waiting for a serving response")
        assert self._response is not None
        return self._response


@dataclass
class _Pending:
    """One queued request plus its bookkeeping.

    ``plan`` is None for *prepared* submissions (see
    :meth:`AllocationServer.submit_prepared`): those arrive already
    featurized, carrying only the identifiers scoring and fallback need.
    """

    job_id: str
    requested_tokens: int
    signature: str
    future: ServeFuture
    submitted_at: float
    deadline: float | None
    plan: QueryPlan | None = None
    features: "PlanFeatures | None" = None


class AllocationServer:
    """Concurrent, cached, admission-controlled allocation endpoint.

    Parameters
    ----------
    pipeline:
        The scoring pipeline (anything exposing
        ``score_batch(plans, tokens, features=None)``).
    store, model_name:
        Optional :class:`ModelStore` to hot-swap from: workers poll
        ``store.latest(model_name)`` and adopt newer versions live.
    repository:
        Optional job history; enables the per-signature historical
        median fallback (otherwise requested tokens pass through).
    fallback:
        Explicit fallback policy; overrides ``repository``.
    monitor, metrics:
        Bring-your-own monitor/registry, e.g. shared across servers;
        fresh instances are created by default.
    allocator:
        Optional :class:`~repro.fleet.allocator.GlobalAllocator` (or
        anything exposing ``budget_recommendations``). When set, each
        scored micro-batch is re-budgeted globally: if the batch's
        combined recommended tokens exceed the allocator's cluster cap,
        grants are squeezed so the in-flight batch as a whole fits.
        Raw (un-budgeted) recommendations still populate the cache —
        budgeting depends on batch composition, which must not leak
        into answers for future traffic.
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(
        self,
        pipeline: ScoringPipeline,
        config: ServerConfig | None = None,
        *,
        store: ModelStore | None = None,
        model_name: str | None = None,
        repository: JobRepository | None = None,
        fallback: FallbackPolicy | None = None,
        monitor: PredictionMonitor | None = None,
        metrics: MetricsRegistry | None = None,
        allocator: "GlobalAllocator | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if store is not None and model_name is None:
            raise ServingError("hot-swapping from a store needs a model name")
        self.config = config or ServerConfig()
        self._pipeline = pipeline
        self._store = store
        self._model_name = model_name
        self._model_version: int | None = None
        self._last_model_check = 0.0
        self._clock = clock
        self._allocator = allocator
        self.monitor = monitor or PredictionMonitor()
        self.metrics = metrics or MetricsRegistry()
        if fallback is not None:
            self.fallback = fallback
        elif repository is not None:
            self.fallback = HistoricalMedianFallback(repository)
        else:
            self.fallback = PassthroughFallback()

        self.recommendation_cache = RecommendationCache(
            self.config.recommendation_cache_size
        )
        self.feature_cache = FeatureCache(self.config.feature_cache_size)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_time=self.config.breaker_recovery_s,
            half_open_probes=self.config.breaker_half_open_probes,
            clock=clock,
        )
        self.rate_limiter: TokenBucket | None = None
        if self.config.rate_limit_rps is not None:
            self.rate_limiter = TokenBucket(
                rate=self.config.rate_limit_rps,
                capacity=self.config.rate_limit_burst,
                clock=clock,
            )

        self._queue: queue_module.Queue[_Pending] = queue_module.Queue(
            maxsize=self.config.max_queue
        )
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        self._running = False
        self._swap_lock = threading.Lock()
        self._shadow_lock = threading.Lock()
        self._shadow: ShadowState | None = None
        #: Outcome of the most recent challenger (None = never staged).
        self.challenger_decision: ShadowDecision | None = None
        self._register_gauges()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AllocationServer":
        if self._running:
            raise ServingError("server is already running")
        self._stop.clear()
        self._maybe_refresh_model(force=True)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"alloc-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()
        self._running = True
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        # Anything still queued will never be scored; answer explicitly.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue_module.Empty:
                break
            self._reject(pending, "shutdown")

    def __enter__(self) -> "AllocationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, plan: QueryPlan, requested_tokens: int) -> ServeFuture:
        """Enqueue one request; returns immediately with a future."""
        return self._admit(
            plan.job_id, plan_signature(plan), requested_tokens,
            plan=plan, features=None, precomputed_signature=False,
        )

    def submit_prepared(
        self,
        job_id: str,
        signature: str,
        requested_tokens: int,
        features: PlanFeatures | None = None,
    ) -> ServeFuture:
        """Enqueue one request that was featurized upstream.

        The sharded front end (`repro.serving.shard`) computes the plan
        signature and feature vector once in the parent process and
        ships only ``(job_id, signature, tokens, features)`` to a worker
        — the plan itself never crosses the process boundary. Admission,
        caching, batching, fallback, and budgeting behave exactly as for
        :meth:`submit`; scoring goes through
        :meth:`~repro.tasq.pipeline.ScoringPipeline.score_features`.
        """
        if not hasattr(self._pipeline, "score_features"):
            raise ServingError(
                "prepared submissions need a pipeline exposing "
                "score_features (plans never reach the scoring call)"
            )
        return self._admit(
            job_id, signature, requested_tokens,
            plan=None, features=features, precomputed_signature=True,
        )

    def _admit(
        self,
        job_id: str,
        signature: str,
        requested_tokens: int,
        *,
        plan: QueryPlan | None,
        features: PlanFeatures | None,
        precomputed_signature: bool,
    ) -> ServeFuture:
        if not self._running:
            raise ServingError("server is not running")
        if requested_tokens < 1:
            raise ServingError("requested tokens must be positive")
        now = self._clock()
        self.metrics.counter("requests_total").increment()
        future = ServeFuture()

        if self.rate_limiter is not None and not self.rate_limiter.try_acquire():
            self.metrics.counter("rejected_rate_limited").increment()
            self._finish(
                future, job_id, ResponseStatus.REJECTED, None,
                "rate_limited", now,
            )
            return future

        cached = self.recommendation_cache.get(signature, requested_tokens)
        if cached is not None:
            recommendation = dataclasses.replace(cached, job_id=job_id)
            self._finish(
                future, job_id, ResponseStatus.CACHED, recommendation,
                None, now,
            )
            return future

        pending = _Pending(
            job_id=job_id,
            requested_tokens=int(requested_tokens),
            signature=signature,
            future=future,
            submitted_at=now,
            deadline=(
                now + self.config.deadline_s
                if self.config.deadline_s is not None
                else None
            ),
            plan=plan,
            features=features,
        )
        if self.breaker.state is BreakerState.OPEN:
            self.metrics.counter("fallback_breaker_open").increment()
            self._fallback(pending, "breaker_open")
            return future

        try:
            self._queue.put_nowait(pending)
        except queue_module.Full:
            self.metrics.counter("rejected_queue_full").increment()
            self._reject(pending, "queue_full")
        return future

    def request(
        self,
        plan: QueryPlan,
        requested_tokens: int,
        timeout: float | None = 30.0,
    ) -> ServeResponse:
        """Submit and block for the answer (the simple client call)."""
        return self.submit(plan, requested_tokens).result(timeout)

    def record_completion(
        self, response: ServeResponse, actual_runtime: float
    ) -> None:
        """Feed one completed job's observed run time back into the loop.

        Only model-backed answers (OK/CACHED) train the drift monitor —
        fallback answers carry no real prediction to hold accountable.
        Recommendations that carry a predicted interval additionally
        feed the monitor's coverage drift rule, and a staged challenger
        is scored against the same completion (at the granted tokens).
        """
        self.metrics.counter("completions").increment()
        if (
            response.status in (ResponseStatus.OK, ResponseStatus.CACHED)
            and response.recommendation is not None
        ):
            recommendation = response.recommendation
            interval = None
            if (
                recommendation.pcc_interval is not None
                and not recommendation.pcc_interval.is_degenerate
            ):
                lo, _, hi = recommendation.pcc_interval.runtime_interval(
                    recommendation.optimal_tokens
                )
                if 0.0 < lo <= hi:
                    interval = (lo, hi)
            self.monitor.observe(
                recommendation.predicted_runtime_at_optimal,
                actual_runtime,
                interval=interval,
            )
            self._observe_challenger(
                response.job_id,
                recommendation.optimal_tokens,
                actual_runtime,
            )

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue_module.Empty:
                self._maybe_refresh_model()
                continue
            batch = [first]
            batch_deadline = self._clock() + self.config.max_batch_wait_s
            while len(batch) < self.config.max_batch_size:
                remaining = batch_deadline - self._clock()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue_module.Empty:
                    break
            self._maybe_refresh_model()
            self._process_batch(batch)

    def _process_batch(self, batch: list[_Pending]) -> None:
        with trace.span("serving.process_batch", batch=len(batch)):
            self._process_batch_inner(batch)

    def _process_batch_inner(self, batch: list[_Pending]) -> None:
        self.metrics.counter("batches").increment()
        self.metrics.histogram(
            "batch_size", bounds=range(1, self.config.max_batch_size + 1)
        ).record(len(batch))
        now = self._clock()
        for pending in batch:
            self.metrics.histogram("queue_wait_s").record(
                max(0.0, now - pending.submitted_at)
            )

        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now > pending.deadline:
                self.metrics.counter("fallback_deadline").increment()
                self._fallback(pending, "deadline")
            else:
                live.append(pending)
        if not live:
            return

        if not self.breaker.allow():
            for pending in live:
                self.metrics.counter("fallback_breaker_open").increment()
                self._fallback(pending, "breaker_open")
            return

        features = [self._features_of(p) for p in live]
        scoring_started = self._clock()
        try:
            with trace.span("serving.score_batch", batch=len(live)):
                recommendations = self._score(live, features)
        except ReproError:
            if len(live) == 1:
                self.breaker.record_failure()
                self.metrics.counter("model_errors").increment()
                self.metrics.counter("fallback_model_error").increment()
                self._fallback(live[0], "model_error")
            else:
                # One bad request can poison a whole batch (e.g. a plan
                # whose predicted PCC is increasing) — isolate it by
                # retrying each request alone.
                self._retry_individually(live, features)
            return
        # The latency_s histogram measures submit -> answer end to end;
        # scoring_s isolates the model's share so queue wait (queue_wait_s)
        # vs scoring time can be read off one snapshot.
        self.metrics.histogram("scoring_s").record(
            max(0.0, self._clock() - scoring_started)
        )
        self.breaker.record_success()
        self._shadow_score(live, features)
        granted = self._budget(recommendations)
        for pending, recommendation, final in zip(
            live, recommendations, granted
        ):
            self._succeed(pending, recommendation, final)

    def _features_of(self, pending: _Pending) -> PlanFeatures:
        """Features for one pending request: shipped-in or cache-derived."""
        if pending.features is not None:
            return pending.features
        return self.feature_cache.features_for(pending.plan)

    def _score(
        self, live: list[_Pending], features: list
    ) -> list[TokenRecommendation]:
        """One scoring call for a micro-batch.

        Pipelines exposing ``score_features`` (the real
        :class:`~repro.tasq.pipeline.ScoringPipeline`) are scored
        plan-free — bit-identical to ``score_batch`` with precomputed
        features, and the only path prepared submissions can take.
        Duck-typed pipelines without it still get the classic
        ``score_batch(plans, tokens, features)`` call.
        """
        tokens = [p.requested_tokens for p in live]
        score_features = getattr(self._pipeline, "score_features", None)
        if score_features is not None:
            return score_features([p.job_id for p in live], tokens, features)
        return self._pipeline.score_batch(
            [p.plan for p in live], tokens, features
        )

    def _retry_individually(self, live: list[_Pending], features: list) -> None:
        for pending, plan_features in zip(live, features):
            if not self.breaker.allow():
                self.metrics.counter("fallback_breaker_open").increment()
                self._fallback(pending, "breaker_open")
                continue
            try:
                recommendation = self._score([pending], [plan_features])[0]
            except ReproError:
                self.breaker.record_failure()
                self.metrics.counter("model_errors").increment()
                self.metrics.counter("fallback_model_error").increment()
                self._fallback(pending, "model_error")
            else:
                self.breaker.record_success()
                self._shadow_score([pending], [plan_features])
                self._succeed(
                    pending,
                    recommendation,
                    self._budget([recommendation])[0],
                )

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def _budget(
        self, recommendations: list[TokenRecommendation]
    ) -> list[TokenRecommendation]:
        """Globally re-budget one scored batch under the cluster cap."""
        if self._allocator is None:
            return recommendations
        with trace.span("serving.fleet_budget", batch=len(recommendations)):
            try:
                granted = self._allocator.budget_recommendations(
                    recommendations
                )
            except ReproError:
                # Budgeting is an optimization, never an availability
                # risk: an allocator failure degrades to the per-job
                # answers instead of failing the batch.
                self.metrics.counter("fleet_budget_errors").increment()
                return recommendations
        squeezed = sum(
            1
            for raw, final in zip(recommendations, granted)
            if final.optimal_tokens != raw.optimal_tokens
        )
        if squeezed:
            self.metrics.counter("fleet_budgeted").increment(squeezed)
        return granted

    def _succeed(
        self,
        pending: _Pending,
        recommendation: TokenRecommendation,
        granted: TokenRecommendation | None = None,
    ) -> None:
        # Cache the raw per-job recommendation: the budgeted grant is a
        # property of this batch's contention, not of the plan.
        self.recommendation_cache.put(
            pending.signature, pending.requested_tokens, recommendation
        )
        self._finish(
            pending.future, pending.job_id, ResponseStatus.OK,
            granted if granted is not None else recommendation,
            None, pending.submitted_at,
        )

    def _fallback(self, pending: _Pending, reason: str) -> None:
        if pending.plan is not None:
            answer = self.fallback.recommend(
                pending.plan, pending.requested_tokens
            )
        else:
            # Prepared requests carry no plan; policies that know how
            # answer by signature, anything else passes the request
            # through (the always-safe degraded answer).
            by_signature = getattr(
                self.fallback, "recommend_by_signature", None
            )
            if by_signature is not None:
                answer = by_signature(
                    pending.job_id, pending.signature,
                    pending.requested_tokens,
                )
            else:
                answer = degraded_recommendation_for(
                    pending.job_id, pending.requested_tokens,
                    pending.requested_tokens,
                )
        self._finish(
            pending.future, pending.job_id, ResponseStatus.FALLBACK,
            answer, reason, pending.submitted_at,
        )

    def _reject(self, pending: _Pending, reason: str) -> None:
        self._finish(
            pending.future, pending.job_id, ResponseStatus.REJECTED,
            None, reason, pending.submitted_at,
        )

    def _finish(
        self,
        future: ServeFuture,
        job_id: str,
        status: ResponseStatus,
        recommendation: TokenRecommendation | None,
        reason: str | None,
        submitted_at: float,
    ) -> None:
        latency = max(0.0, self._clock() - submitted_at)
        self.metrics.counter(f"responses_{status.value}").increment()
        self.metrics.histogram("latency_s").record(latency)
        future._resolve(
            ServeResponse(
                job_id=job_id,
                status=status,
                recommendation=recommendation,
                reason=reason,
                latency_s=latency,
            )
        )

    # ------------------------------------------------------------------
    # champion-challenger shadow scoring
    # ------------------------------------------------------------------
    def stage_challenger(
        self, model, gate: PromotionGate | None = None
    ) -> None:
        """Stage a candidate model for shadow scoring on live traffic.

        The challenger inherits the champion pipeline's decision
        parameters, but always scores with a risk level (the champion's
        if set, otherwise 0.5 — the median, which leaves decisions
        untouched) so its recommendations carry intervals and the
        promotion gate can judge coverage. Staging replaces any
        previously staged challenger.
        """
        champion = self._pipeline
        pipeline = ScoringPipeline(
            model,
            improvement_threshold=champion.improvement_threshold,
            max_slowdown=champion.max_slowdown,
            use_compiled=champion.use_compiled,
            risk=champion.risk if champion.risk is not None else 0.5,
        )
        with self._shadow_lock:
            self._shadow = ShadowState(
                pipeline=pipeline, gate=gate or PromotionGate()
            )
            self.challenger_decision = ShadowDecision.PENDING
        self.metrics.counter("challengers_staged").increment()

    @property
    def has_challenger(self) -> bool:
        """True while a challenger is staged and undecided."""
        with self._shadow_lock:
            return self._shadow is not None

    def _shadow_score(self, live: list[_Pending], features: list) -> None:
        """Score a just-served batch with the challenger, never serving it."""
        with self._shadow_lock:
            shadow = self._shadow
        if shadow is None:
            return
        try:
            recommendations = shadow.pipeline.score_features(
                [p.job_id for p in live],
                [p.requested_tokens for p in live],
                features,
            )
        except ReproError:
            # A challenger that cannot score must never degrade serving;
            # the error only counts against it.
            self.metrics.counter("challenger_errors").increment()
            return
        with self._shadow_lock:
            if self._shadow is not shadow:
                return  # replaced concurrently; drop the stale scores
            for pending, recommendation in zip(live, recommendations):
                shadow.record(pending.job_id, recommendation)

    def _observe_challenger(
        self, job_id: str, granted_tokens: int, actual_runtime: float
    ) -> None:
        with self._shadow_lock:
            shadow = self._shadow
            if shadow is None:
                return
            shadow.observe(job_id, granted_tokens, actual_runtime)
            decision = shadow.decide(self.monitor)
            if decision is ShadowDecision.PENDING:
                return
            self._shadow = None
            self.challenger_decision = decision
        if decision is ShadowDecision.PROMOTED:
            self.metrics.counter("challenger_promotions").increment()
            self._promote(shadow)
        else:
            self.metrics.counter("challenger_rejections").increment()

    def _promote(self, shadow: ShadowState) -> None:
        """Deploy a gate-approved challenger as the new champion."""
        if self._store is not None:
            self._store.register(
                self._model_name,
                shadow.model,
                metadata={"source": "shadow_promotion"},
            )
            self._maybe_refresh_model(force=True)
        else:
            with self._swap_lock:
                self._pipeline.model = shadow.model
                self.metrics.counter("model_swaps").increment()
        self.recommendation_cache.clear()
        # The champion monitor's history belongs to the deposed model.
        self.monitor.reset()

    # ------------------------------------------------------------------
    # model hot-swap + metrics wiring
    # ------------------------------------------------------------------
    def _maybe_refresh_model(self, force: bool = False) -> None:
        if self._store is None:
            return
        now = self._clock()
        if (
            not force
            and now - self._last_model_check
            < self.config.model_refresh_interval_s
        ):
            return
        with self._swap_lock:
            self._last_model_check = now
            try:
                record = self._store.latest(self._model_name)
            except ReproError:
                return  # nothing registered yet; keep the current model
            if record.version != self._model_version:
                # Swapping the whole model object also swaps its lazily
                # compiled inference kernels (repro.ml.compiled caches
                # ride on the model), so no explicit invalidation is
                # needed here — the new model compiles on first batch.
                self._pipeline.model = record.model
                self._model_version = record.version
                self.metrics.counter("model_swaps").increment()

    def refresh_model(self) -> int | None:
        """Poll the model store *now* and adopt the newest version.

        Workers refresh opportunistically on a wall-clock interval; a
        caller that just registered a retrained model (e.g. the replay
        harness's virtual-time retraining hook) calls this to make the
        swap immediate — and therefore deterministic.
        """
        self._maybe_refresh_model(force=True)
        return self._model_version

    @property
    def model_version(self) -> int | None:
        """Version of the store model currently deployed (None = static)."""
        return self._model_version

    def _register_gauges(self) -> None:
        self.metrics.register_gauge("queue_depth", self._queue.qsize)
        self.metrics.register_gauge(
            "breaker_state", lambda: self.breaker.state.value
        )
        self.metrics.register_gauge(
            "breaker_trips", lambda: self.breaker.trip_count
        )
        self.metrics.register_gauge(
            "recommendation_cache_hit_rate",
            lambda: self.recommendation_cache.hit_rate,
        )
        self.metrics.register_gauge(
            "feature_cache_hit_rate", lambda: self.feature_cache.hit_rate
        )
        self.metrics.register_gauge(
            "monitor_observations", lambda: self.monitor.snapshot().observations
        )
        self.metrics.register_gauge(
            "monitor_rolling_median_ape",
            lambda: self.monitor.rolling_median_ape,
        )
        self.metrics.register_gauge(
            "monitor_needs_retraining", lambda: self.monitor.needs_retraining
        )
        self.metrics.register_gauge(
            "monitor_rolling_coverage", lambda: self.monitor.rolling_coverage
        )
        self.metrics.register_gauge(
            "challenger_staged", lambda: self.has_challenger
        )
