"""Consistent-hash routing for the sharded serving front end.

The sharded server (`repro.serving.shard`) keeps one private
recommendation cache per worker process, so every request for a given
plan signature must always land on the same shard — and, when the shard
count changes, as few signatures as possible may change owner (a naive
``hash(key) % N`` remaps almost everything). The classic answer is a
consistent-hash ring: every shard owns ``replicas`` pseudo-random points
on a 64-bit circle, a key routes to the first shard point at or after
its own hash, and adding or removing one shard moves only the ~1/N of
keys that fall into the arcs the shard gains or gives up.

Hashes come from :func:`hashlib.blake2b`, **not** Python's built-in
``hash`` — routing must be identical across processes and runs, and the
interpreter's string hashing is salted per process (PYTHONHASHSEED).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.exceptions import ServingError

__all__ = ["ConsistentHashRing"]


def _point(data: str) -> int:
    """A stable 64-bit ring position for ``data``."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A 64-bit hash ring mapping string keys onto named nodes.

    Not thread-safe for mutation; the sharded server builds its ring
    once at start and only tests exercise ``add``/``remove`` live.
    """

    def __init__(self, nodes: list[str] | None = None, replicas: int = 128):
        if replicas < 1:
            raise ServingError("ring needs at least one replica per node")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: Sorted ring positions and the node owning each position.
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes or []:
            self.add(node)

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ServingError(f"ring already contains node {node!r}")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # blake2b collisions across distinct vnode labels are
            # vanishingly unlikely; ties resolve by insertion order.
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ServingError(f"ring does not contain node {node!r}")
        self._nodes.remove(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """The node owning ``key`` — the first vnode at/after its hash."""
        if not self._points:
            raise ServingError("cannot route on an empty ring")
        index = bisect.bisect_left(self._points, _point(key))
        if index == len(self._points):  # wrap past the top of the circle
            index = 0
        return self._owners[index]

    def route_many(self, keys: list[str]) -> list[str]:
        return [self.route(key) for key in keys]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes
