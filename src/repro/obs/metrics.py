"""Unified process-wide metrics: counters, gauges, labeled histograms.

Promoted out of ``repro.serving.metrics`` (which now re-exports from
here) so the simulator, the training pipeline, and the serving layer all
record into one metric vocabulary. A deliberately small, dependency-free
stand-in for a Prometheus client:

* :class:`Counter` — monotone, thread-safe;
* :class:`LatencyHistogram` — fixed log-spaced buckets, so recording is
  O(log buckets) with constant memory regardless of traffic volume, and
  quantiles (p50/p95/p99) are estimated by interpolating within the
  bucket that brackets the target rank — the same trade-off a production
  histogram makes;
* callback gauges — evaluated lazily at snapshot time;
* **labels** — ``registry.counter("responses", status="ok")`` creates
  one child per label set, rendered Prometheus-style as
  ``responses{status=ok}`` in snapshots.

Quantile convention: the nearest-rank (inverted-CDF) definition — the
q-quantile of n observations is the value of rank ``ceil(q * n)``. The
rank is computed with a small tolerance because ``q * n`` in floating
point can land just above an integer (``0.3 * 10 == 3.0000000000000004``),
which previously pushed boundary quantiles one observation — and
potentially one whole bucket — too high. ``tests/test_obs_metrics.py``
property-checks the estimate against exact nearest-rank quantiles.

One process-wide :class:`MetricsRegistry` is exposed via
:func:`get_registry`; components may still construct private registries
(each :class:`~repro.serving.server.AllocationServer` does, so its
gauges and lifetime rates stay per-instance) and share them explicitly.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections.abc import Callable, Iterable

from repro.exceptions import ObservabilityError

__all__ = [
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "state_delta",
    "relabel_state",
]


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only move forward")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


def _default_bounds() -> list[float]:
    """Log-spaced bucket upper bounds from 10 microseconds to ~100 s."""
    bounds = []
    edge = 1e-5
    while edge <= 100.0:
        bounds.append(edge)
        edge *= 1.25
    return bounds


class LatencyHistogram:
    """Streaming histogram with interpolated quantile estimates.

    Values are clamped into ``[bounds[0], +inf)``; anything beyond the
    last bound lands in an overflow bucket whose quantile estimate is
    the observed maximum. Bucket ``i`` covers ``(bounds[i-1], bounds[i]]``
    (lower-exclusive, upper-inclusive), matching ``bisect_left``.
    """

    def __init__(self, name: str, bounds: Iterable[float] | None = None) -> None:
        self.name = name
        self._bounds = sorted(bounds) if bounds is not None else _default_bounds()
        if not self._bounds:
            raise ObservabilityError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self._bounds) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        if value < 0 or not math.isfinite(value):
            raise ObservabilityError(
                "latency observations must be finite and >= 0"
            )
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float | None:
        with self._lock:
            return self._sum / self._count if self._count else None

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (``0 < q <= 1``), None when empty.

        Uses the nearest-rank definition: the target is the observation
        of rank ``ceil(q * count)`` (with a tolerance against float
        fuzz), located in its bucket and linearly interpolated inside
        it. The estimate therefore always falls within the bucket that
        contains the exact nearest-rank quantile.
        """
        if not 0.0 < q <= 1.0:
            raise ObservabilityError("quantile must be in (0, 1]")
        with self._lock:
            if not self._count:
                return None
            # Nearest rank with tolerance: 0.3 * 10 must select rank 3,
            # not 4, even though it evaluates to 3.0000000000000004.
            rank = min(self._count, max(1, math.ceil(q * self._count - 1e-9)))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank:
                    if index >= len(self._bounds):
                        return self._max
                    upper = self._bounds[index]
                    lower = self._bounds[index - 1] if index else 0.0
                    fraction = (rank - previous) / bucket_count
                    estimate = lower + fraction * (upper - lower)
                    return min(max(estimate, self._min), self._max)
            return self._max  # pragma: no cover - rank <= count always hits

    def state(self) -> dict:
        """Raw, mergeable histogram state (bounds + bucket counts).

        Unlike :meth:`snapshot` (which reduces to quantile estimates),
        this is lossless up to the bucket resolution: merging two states
        recorded separately equals recording every observation into one
        histogram. Used to ship worker-process histograms back to the
        parent (``repro.parallel``).
        """
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        if list(state["bounds"]) != self._bounds:
            raise ObservabilityError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        with self._lock:
            for i, bucket_count in enumerate(state["counts"]):
                self._counts[i] += bucket_count
            self._count += state["count"]
            self._sum += state["sum"]
            self._min = min(self._min, state["min"])
            self._max = max(self._max, state["max"])

    def snapshot(self) -> dict[str, float | int | None]:
        p50, p95, p99 = (self.quantile(q) for q in (0.50, 0.95, 0.99))
        with self._lock:
            count, total = self._count, self._sum
            minimum = self._min if count else None
            maximum = self._max if count else None
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else None,
            "min": minimum,
            "max": maximum,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }


def _labeled_name(name: str, labels: dict[str, object]) -> str:
    """Prometheus-flavoured rendering: ``name{key=value,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named counters, histograms, and callback gauges behind one lock.

    ``counter``/``histogram`` create on first use so call sites don't
    need a central declaration list, and accept optional labels that
    address one child per label set (``counter("responses",
    status="ok")``); ``register_gauge`` takes a callable evaluated
    lazily at snapshot time (used e.g. to surface queue depth,
    circuit-breaker state, and the :class:`PredictionMonitor`'s rolling
    error without polling threads).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._gauges: dict[str, Callable[[], float | int | bool | None]] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels) -> Counter:
        key = _labeled_name(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(key)
            return self._counters[key]

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None, **labels
    ) -> LatencyHistogram:
        key = _labeled_name(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = LatencyHistogram(key, bounds)
            return self._histograms[key]

    def register_gauge(
        self, name: str, read: Callable[[], float | int | bool | None], **labels
    ) -> None:
        with self._lock:
            self._gauges[_labeled_name(name, labels)] = read

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """A structured, point-in-time view of every metric."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
            "gauges": {name: read() for name, read in gauges.items()},
        }

    def dump_state(self) -> dict[str, dict]:
        """Transferable registry state: counter values + histogram states.

        Gauges are lazily evaluated callables bound to process-local
        objects, so they are deliberately excluded — a worker's gauges
        are meaningless in the parent. Pair with :meth:`merge_state`.
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "histograms": {name: h.state() for name, h in histograms.items()},
        }

    def merge_state(self, state: dict[str, dict]) -> None:
        """Fold a :meth:`dump_state` payload (e.g. from a worker) in.

        Counter values add; histograms merge bucket-by-bucket (created
        here with the worker's bounds if absent). Keys arrive already
        label-rendered (``name{k=v}``), so they address the same child
        metrics they came from.
        """
        for name, value in state.get("counters", {}).items():
            if value:
                self.counter(name).increment(value)
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name, bounds=hist_state["bounds"]).merge_state(
                hist_state
            )

    def reset(self) -> None:
        """Drop every registered metric (mainly for tests / CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()


def state_delta(current: dict[str, dict], previous: dict[str, dict]) -> dict:
    """What changed between two :meth:`MetricsRegistry.dump_state` calls.

    Long-lived worker processes (the serving shards) cannot ship their
    full cumulative state on every cadence tick — the parent merges
    additively, so re-sending totals would double-count. Instead each
    worker keeps its last shipped state and sends only the delta; the
    result is itself a valid ``merge_state`` payload. Metrics absent
    from ``previous`` ship whole; unchanged metrics are omitted.

    Histogram ``min``/``max`` are lifetime extrema (per-window extrema
    are not recoverable from two cumulative states) — safe under
    repeated merging because min/max folding is idempotent.
    """
    counters: dict[str, int] = {}
    previous_counters = previous.get("counters", {})
    for name, value in current.get("counters", {}).items():
        delta = value - previous_counters.get(name, 0)
        if delta:
            counters[name] = delta
    histograms: dict[str, dict] = {}
    previous_histograms = previous.get("histograms", {})
    for name, state in current.get("histograms", {}).items():
        before = previous_histograms.get(name)
        if before is None:
            if state["count"]:
                histograms[name] = state
            continue
        if list(before["bounds"]) != list(state["bounds"]):
            raise ObservabilityError(
                f"cannot diff histogram {name!r}: bucket bounds differ"
            )
        count = state["count"] - before["count"]
        if not count:
            continue
        histograms[name] = {
            "bounds": list(state["bounds"]),
            "counts": [
                now - then
                for now, then in zip(state["counts"], before["counts"])
            ],
            "count": count,
            "sum": state["sum"] - before["sum"],
            "min": state["min"],
            "max": state["max"],
        }
    return {"counters": counters, "histograms": histograms}


def _parse_labeled_name(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_labeled_name`: ``name{k=v,...}`` -> (name, labels)."""
    if not (key.endswith("}") and "{" in key):
        return key, {}
    name, _, inner = key.partition("{")
    labels = dict(
        part.split("=", 1) for part in inner[:-1].split(",") if "=" in part
    )
    return name, labels


def relabel_state(state: dict[str, dict], **labels) -> dict:
    """Rewrite every metric key in a state payload with extra labels.

    The sharded server merges each worker's delta under a ``shard=i``
    label, so one fleet snapshot distinguishes per-shard traffic
    (``responses_ok{shard=0}`` vs ``responses_ok{shard=1}``) the same
    way a Prometheus scrape of N processes would. Existing labels are
    preserved; colliding label names are overwritten.
    """
    rendered = {key: str(value) for key, value in labels.items()}

    def rekey(key: str) -> str:
        name, existing = _parse_labeled_name(key)
        existing.update(rendered)
        return _labeled_name(name, existing)

    return {
        "counters": {
            rekey(key): value
            for key, value in state.get("counters", {}).items()
        },
        "histograms": {
            rekey(key): value
            for key, value in state.get("histograms", {}).items()
        },
    }


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry shared by all instrumented modules."""
    return _global_registry


def reset_registry() -> None:
    """Clear the process-wide registry (between traced CLI runs/tests)."""
    _global_registry.reset()
