"""Opt-in profiling hooks: cProfile / tracemalloc per span, stack sampling.

Tracing (where does wall-clock time go between *named* spans) answers a
different question than profiling (which *functions* burn it). This
module bridges the two without making profiling a steady-state cost:

* :class:`SpanProfiler` — attach deterministic cProfile and/or
  tracemalloc capture to any code region, typically zipped with a span
  (``with trace.span("fit") as s, SpanProfiler().attach(s): ...``); the
  top functions / allocation sites are stored on the span's attributes
  (visible in the Chrome trace's ``args``) and retrievable as text;
* :class:`SamplingProfiler` — a wall-clock sampling profiler that
  periodically snapshots every thread's Python stack via
  :func:`sys._current_frames`, aggregating *folded* stacks compatible
  with flamegraph tooling (``a;b;c 42``). Sampling observes code that
  was never instrumented with spans — e.g. the simulator's event loop —
  at a few percent overhead instead of cProfile's 2-5x.

Everything here is opt-in: nothing starts unless explicitly constructed,
so the default (observability off) execution path is untouched.
"""

from __future__ import annotations

import cProfile
import contextlib
import pstats
import sys
import threading
import time
import tracemalloc
from io import StringIO

from repro.exceptions import ObservabilityError

__all__ = ["SpanProfiler", "SamplingProfiler"]


class SpanProfiler:
    """Deterministic CPU and/or memory profiling for one code region.

    Parameters
    ----------
    cpu:
        Run cProfile over the region and keep the ``top`` functions by
        cumulative time.
    memory:
        Run tracemalloc over the region and keep the ``top`` allocation
        sites by size delta. (Starts/stops tracemalloc if it was not
        already tracing.)
    top:
        How many rows of each report to retain.
    """

    def __init__(self, cpu: bool = True, memory: bool = False, top: int = 12):
        if not cpu and not memory:
            raise ObservabilityError("profiler needs cpu and/or memory enabled")
        if top < 1:
            raise ObservabilityError("top must be at least 1")
        self.cpu = cpu
        self.memory = memory
        self.top = top
        self.cpu_report: str | None = None
        self.memory_report: str | None = None

    @contextlib.contextmanager
    def attach(self, span=None):
        """Profile the enclosed region; annotate ``span`` with results.

        ``span`` may be a live :class:`~repro.obs.tracing.Span`, the
        disabled-mode null span, or None — anything with a ``set``
        method gets ``profile_cpu`` / ``profile_memory`` attributes.
        """
        profiler = cProfile.Profile() if self.cpu else None
        started_tracemalloc = False
        baseline = None
        if self.memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracemalloc = True
            baseline = tracemalloc.take_snapshot()
        if profiler is not None:
            profiler.enable()
        try:
            yield self
        finally:
            if profiler is not None:
                profiler.disable()
                self.cpu_report = self._render_cpu(profiler)
            if self.memory:
                after = tracemalloc.take_snapshot()
                self.memory_report = self._render_memory(baseline, after)
                if started_tracemalloc:
                    tracemalloc.stop()
            if span is not None:
                if self.cpu_report is not None:
                    span.set("profile_cpu", self.cpu_report)
                if self.memory_report is not None:
                    span.set("profile_memory", self.memory_report)

    def _render_cpu(self, profiler: cProfile.Profile) -> str:
        buffer = StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats("cumulative").print_stats(self.top)
        return buffer.getvalue()

    def _render_memory(self, baseline, after) -> str:
        diff = after.compare_to(baseline, "lineno")
        lines = [
            f"{entry.size_diff / 1024.0:+9.1f} KiB  {entry.traceback}"
            for entry in diff[: self.top]
        ]
        return "\n".join(lines) if lines else "(no allocation delta)"


class SamplingProfiler:
    """Wall-clock stack sampler producing flamegraph-ready folded stacks.

    A daemon thread wakes every ``interval_s`` seconds and records the
    current Python stack of every other thread. Stacks are folded into
    ``outer;inner;leaf`` strings with sample counts — feed
    :meth:`folded` to ``flamegraph.pl`` or speedscope.
    """

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ObservabilityError("sampling interval must be positive")
        self.interval_s = interval_s
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise ObservabilityError("sampler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own)

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            self._samples += 1
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack: list[str] = []
                while frame is not None:
                    code = frame.f_code
                    stack.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})")
                    frame = frame.f_back
                if not stack:
                    continue
                key = ";".join(reversed(stack))
                self._counts[key] = self._counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def folded(self) -> list[str]:
        """Folded stack lines (``frame;frame;frame count``), hottest first."""
        with self._lock:
            items = sorted(
                self._counts.items(), key=lambda kv: kv[1], reverse=True
            )
        return [f"{stack} {count}" for stack, count in items]

    def run(self, fn, *args, **kwargs):
        """Convenience: sample for the duration of one call."""
        with self:
            started = time.perf_counter()
            result = fn(*args, **kwargs)
            _ = time.perf_counter() - started
        return result
