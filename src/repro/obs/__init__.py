"""End-to-end observability: tracing spans, unified metrics, profiling.

The diagnostic substrate of the reproduction (see
``docs/observability.md``). Everything upstream of a performance claim
should be *visible*: the workload generator, the discrete-event cluster
executor, PCC fitting, the TASQ training/scoring pipelines, and the
allocation server are permanently instrumented with spans and counters
that cost nothing until switched on.

* :mod:`repro.obs.tracing` — hierarchical spans into a thread-safe ring
  buffer; Chrome-trace export and per-span-name latency tables.
* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  log-bucketed latency histograms with label support (the generalized
  successor of ``repro.serving.metrics``, which now re-exports it).
* :mod:`repro.obs.profiling` — opt-in cProfile/tracemalloc capture
  attachable to spans, plus a sampling wall-clock profiler emitting
  flamegraph-compatible folded stacks.
* :mod:`repro.obs.reporting` — the human-readable report and file
  exports behind ``python -m repro trace <subcommand>``.

Usage::

    from repro.obs import trace, get_registry

    with trace.span("fit_pcc", job=job_id) as span:
        ...
        span.set("points", n)
    get_registry().counter("pcc_fits").increment()

Instrumentation is **disabled by default**: ``trace.span`` returns a
no-op context and module-level counters are skipped until
:func:`enable` is called (the ``trace`` CLI subcommand does this for
you).
"""

from repro.obs.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.profiling import SamplingProfiler, SpanProfiler
from repro.obs.reporting import (
    folded_span_stacks,
    render_report,
    write_chrome_trace,
)
from repro.obs.tracing import Span, Tracer, trace

__all__ = [
    "trace",
    "Tracer",
    "Span",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "SpanProfiler",
    "SamplingProfiler",
    "render_report",
    "write_chrome_trace",
    "folded_span_stacks",
    "enable",
    "disable",
    "enabled",
]


def enable(capacity: int | None = None) -> None:
    """Switch the process-wide tracer (and span instrumentation) on."""
    trace.enable(capacity)


def disable() -> None:
    """Switch span instrumentation back off (buffers stay readable)."""
    trace.disable()


def enabled() -> bool:
    """Whether the process-wide tracer is currently recording."""
    return trace.enabled
