"""Hierarchical in-process tracing spans.

The observability layer's tracing half: code brackets interesting work in
named *spans* (``with trace.span("fit_pcc", job=job_id):``), and a
:class:`Tracer` records each finished span — name, wall-clock interval,
thread, parent span, free-form attributes — into a thread-safe ring
buffer. Three properties shape the design:

* **disabled by default, ~free when disabled** — :meth:`Tracer.span`
  returns a shared no-op context until :meth:`Tracer.enable` is called,
  so permanently instrumented hot paths (the simulator's executor, the
  serving worker loop, PCC fitting) cost one attribute check per call in
  production mode;
* **bounded memory** — finished spans land in a ring buffer (default
  65,536 spans); long traced runs keep the most recent window instead of
  growing without bound;
* **export-friendly** — the buffer converts to Chrome's
  ``chrome://tracing`` / Perfetto JSON (:meth:`Tracer.chrome_trace`) and
  to a flat per-span-name latency table (:meth:`Tracer.latency_table`)
  with cumulative and *self* time (cumulative minus direct children).

Spans may also be recorded retroactively with explicit timestamps
(:meth:`Tracer.record_span`), including *virtual-time* spans: the
discrete-event cluster executor runs in simulated seconds, so its
per-stage spans are exported on a separate Chrome process track rather
than being interleaved with wall-clock spans.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.exceptions import ObservabilityError

__all__ = ["Span", "Tracer", "trace"]

_ids = itertools.count(1)


@dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    thread_name: str
    start_s: float
    end_s: float | None = None
    #: Virtual-time spans carry simulated timestamps (e.g. simulator
    #: seconds), not wall-clock ones; exports keep them on their own track.
    virtual: bool = False
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return max(0.0, self.end_s - self.start_s)

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute on the span."""
        self.attrs[key] = value


class _NullSpan:
    """The disabled-mode stand-in: a no-op context manager and span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value) -> None:  # pragma: no cover - trivial
        pass


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self._span.parent_id = stack[-1].span_id if stack else None
        self._span.start_s = time.perf_counter()
        stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_s = time.perf_counter()
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order exit)
            try:
                stack.remove(span)
            except ValueError:
                pass
        self._tracer._record(span)
        return False


class Tracer:
    """Thread-safe span collector with a bounded ring buffer.

    One process-wide instance (:data:`trace`) is shared by every
    instrumented module; tests construct private tracers. The tracer
    starts disabled: until :meth:`enable` is called, :meth:`span` hands
    back a shared no-op context and nothing is recorded.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = False) -> None:
        if capacity < 1:
            raise ObservabilityError("tracer capacity must be at least 1")
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._enabled = enabled

    # ------------------------------------------------------------------
    # switches
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, capacity: int | None = None) -> None:
        """Start recording spans (optionally resizing the ring buffer)."""
        if capacity is not None:
            if capacity < 1:
                raise ObservabilityError("tracer capacity must be at least 1")
            with self._lock:
                self._buffer = deque(self._buffer, maxlen=capacity)
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; already-captured spans stay readable."""
        self._enabled = False

    def reset(self) -> None:
        """Drop every recorded span (the buffer capacity is kept)."""
        with self._lock:
            self._buffer.clear()
            self._dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Context manager bracketing one operation.

        Yields the live :class:`Span` (so callers can ``span.set(...)``
        further attributes) when enabled, or a no-op stand-in when not.
        """
        if not self._enabled:
            return _NULL_SPAN
        current = threading.current_thread()
        return _SpanContext(
            self,
            Span(
                name=name,
                span_id=next(_ids),
                parent_id=None,
                thread_id=current.ident or 0,
                thread_name=current.name,
                start_s=0.0,
                attrs=dict(attrs) if attrs else {},
            ),
        )

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        virtual: bool = False,
        parent_id: int | None = None,
        **attrs,
    ) -> Span | None:
        """Record an already-timed span (e.g. simulated-time intervals).

        ``virtual=True`` marks the timestamps as simulated rather than
        wall-clock; exports place those spans on a separate track. No-op
        (returning None) while the tracer is disabled.
        """
        if not self._enabled:
            return None
        if end_s < start_s:
            raise ObservabilityError("span must end at or after its start")
        current = threading.current_thread()
        if parent_id is None and not virtual:
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=next(_ids),
            parent_id=parent_id,
            thread_id=current.ident or 0,
            thread_name=current.name,
            start_s=start_s,
            end_s=end_s,
            virtual=virtual,
            attrs=dict(attrs) if attrs else {},
        )
        self._record(span)
        return span

    def merge_spans(self, spans: Iterable[Span]) -> list[Span]:
        """Adopt spans recorded by another tracer (e.g. a worker process).

        Cross-process tracing support: ``repro.parallel`` workers buffer
        spans into their own tracer and ship them back with chunk
        results; the parent calls this to fold them into its buffer.
        Span ids are reassigned from the parent's id source (worker ids
        can collide with parent ids, especially under ``fork`` where the
        child inherits the counter), parent links *within* the batch are
        remapped accordingly, and batch roots are attached under the
        parent's currently open span so worker work nests beneath e.g.
        ``models.build_dataset`` in exports. No-op while disabled.
        """
        spans = list(spans)
        if not self._enabled or not spans:
            return []
        current = self.current_span()
        attach_to = current.span_id if current is not None else None
        id_map = {span.span_id: next(_ids) for span in spans}
        merged = []
        for span in spans:
            parent = span.parent_id
            parent = id_map.get(parent, attach_to) if parent is not None else attach_to
            merged.append(
                Span(
                    name=span.name,
                    span_id=id_map[span.span_id],
                    parent_id=parent,
                    thread_id=span.thread_id,
                    thread_name=span.thread_name,
                    start_s=span.start_s,
                    end_s=span.end_s,
                    virtual=span.virtual,
                    attrs=dict(span.attrs),
                )
            )
        for span in merged:
            self._record(span)
        return merged

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._buffer) == self._buffer.maxlen:
                self._dropped += 1
            self._buffer.append(span)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._buffer)

    @property
    def dropped(self) -> int:
        """Spans evicted by ring-buffer overflow since the last reset."""
        with self._lock:
            return self._dropped

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The buffer as a ``chrome://tracing`` / Perfetto JSON object.

        Wall-clock spans land on the real process (one row per thread);
        virtual-time spans (simulator stages) land on a synthetic
        ``simulated-time`` process so the two timebases never interleave.
        """
        pid = os.getpid()
        virtual_pid = pid + 1
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro (wall clock)"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": virtual_pid,
                "tid": 0,
                "args": {"name": "repro (simulated time)"},
            },
        ]
        for span in self.spans():
            if span.end_s is None:  # pragma: no cover - open spans skipped
                continue
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "pid": virtual_pid if span.virtual else pid,
                    "tid": span.thread_id,
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def latency_table(self) -> dict[str, dict[str, float | int]]:
        """Aggregate spans by name: count, total/self/mean/max seconds.

        Self time subtracts the durations of *direct* children still in
        the buffer, so for nested instrumentation the table answers
        "where is time actually spent" rather than double-counting.
        """
        spans = [s for s in self.spans() if s.end_s is not None]
        child_time: dict[int, float] = {}
        for span in spans:
            if span.parent_id is not None:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0.0) + span.duration_s
                )
        table: dict[str, dict[str, float | int]] = {}
        for span in spans:
            row = table.setdefault(
                span.name,
                {
                    "count": 0,
                    "total_s": 0.0,
                    "self_s": 0.0,
                    "max_s": 0.0,
                    "virtual": span.virtual,
                },
            )
            duration = span.duration_s
            row["count"] += 1
            row["total_s"] += duration
            row["self_s"] += max(
                0.0, duration - child_time.get(span.span_id, 0.0)
            )
            row["max_s"] = max(row["max_s"], duration)
        for row in table.values():
            row["mean_s"] = row["total_s"] / row["count"]
        return table


def _jsonable(value):
    """Coerce span attribute values into JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


#: The process-wide tracer every instrumented module records into.
trace = Tracer()
