"""Human-readable reports and file exports for traced runs.

The reporting half of the observability layer: given a
:class:`~repro.obs.tracing.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`, produce

* :func:`render_report` — the terminal report ``python -m repro trace``
  prints: top span sites by cumulative and self time, a metrics
  snapshot (counters, gauges, histogram quantiles), and optional
  profiler output;
* :func:`write_chrome_trace` — the ``chrome://tracing`` / Perfetto JSON
  export (open via ``chrome://tracing`` -> Load, or https://ui.perfetto.dev);
* :func:`folded_span_stacks` — span-tree paths folded into
  flamegraph-compatible lines (``parent;child;leaf microseconds``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "render_report",
    "span_table_rows",
    "write_chrome_trace",
    "folded_span_stacks",
]


def span_table_rows(
    tracer: Tracer, sort_by: str = "total_s", top: int | None = None
) -> list[tuple[str, dict]]:
    """Per-span-name aggregate rows, sorted descending by ``sort_by``."""
    table = tracer.latency_table()
    rows = sorted(table.items(), key=lambda kv: kv[1][sort_by], reverse=True)
    return rows[:top] if top is not None else rows


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:9.3f} s "
    if value >= 1e-3:
        return f"{value * 1e3:9.3f} ms"
    return f"{value * 1e6:9.1f} µs"


def render_report(
    tracer: Tracer,
    registry: MetricsRegistry | None = None,
    *,
    top: int = 20,
    profile_text: str | None = None,
) -> str:
    """The full human-readable observability report for one run."""
    lines: list[str] = []
    rows = span_table_rows(tracer, top=top)
    spans = tracer.spans()
    lines.append("== spans ==")
    if not rows:
        lines.append("(no spans recorded — was tracing enabled?)")
    else:
        distinct = len(tracer.latency_table())
        lines.append(
            f"{len(spans)} spans from {distinct} instrumented sites"
            + (f" ({tracer.dropped} dropped by ring buffer)"
               if tracer.dropped else "")
        )
        header = (
            f"{'span':<28} {'count':>7} {'total':>12} {'self':>12} "
            f"{'mean':>12} {'max':>12}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, row in rows:
            label = name + (" [sim]" if row.get("virtual") else "")
            lines.append(
                f"{label:<28} {row['count']:>7} "
                f"{_fmt_seconds(row['total_s'])} "
                f"{_fmt_seconds(row['self_s'])} "
                f"{_fmt_seconds(row['mean_s'])} "
                f"{_fmt_seconds(row['max_s'])}"
            )

    if registry is not None:
        snapshot = registry.snapshot()
        counters = {k: v for k, v in snapshot["counters"].items() if v}
        if counters:
            lines.append("")
            lines.append("== counters ==")
            width = max(len(k) for k in counters)
            for name in sorted(counters):
                lines.append(f"{name:<{width}}  {counters[name]:,}")
        gauges = snapshot["gauges"]
        if gauges:
            lines.append("")
            lines.append("== gauges ==")
            width = max(len(k) for k in gauges)
            for name in sorted(gauges):
                lines.append(f"{name:<{width}}  {gauges[name]}")
        histograms = snapshot["histograms"]
        if histograms:
            lines.append("")
            lines.append("== histograms ==")
            header = (
                f"{'histogram':<28} {'count':>7} {'mean':>12} "
                f"{'p50':>12} {'p95':>12} {'p99':>12}"
            )
            lines.append(header)
            lines.append("-" * len(header))
            for name in sorted(histograms):
                h = histograms[name]
                if not h["count"]:
                    continue
                # Histograms named *_s hold seconds; render others
                # (e.g. batch_size) as plain numbers.
                fmt = (
                    _fmt_seconds
                    if name.split("{", 1)[0].endswith("_s")
                    else (lambda v: f"{v:12.2f}")
                )
                lines.append(
                    f"{name:<28} {h['count']:>7} "
                    f"{fmt(h['mean'])} {fmt(h['p50'])} "
                    f"{fmt(h['p95'])} {fmt(h['p99'])}"
                )

    if profile_text:
        lines.append("")
        lines.append("== profile ==")
        lines.append(profile_text.rstrip())

    return "\n".join(lines)


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Serialize the tracer's buffer as Chrome-loadable trace JSON."""
    path = Path(path)
    path.write_text(json.dumps(tracer.chrome_trace()))
    return path


def folded_span_stacks(tracer: Tracer) -> list[str]:
    """Span trees folded for flamegraph tooling, weighted by self µs.

    Each line is the span-name path from the root span to one span,
    weighted by that span's *self* time in integer microseconds (so a
    flamegraph of the output reproduces the cumulative times exactly).
    Virtual-time (simulator) spans are prefixed with their track.
    """
    spans = {s.span_id: s for s in tracer.spans() if s.end_s is not None}
    child_time: dict[int, float] = {}
    for span in spans.values():
        if span.parent_id in spans:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration_s
            )
    totals: dict[str, int] = {}
    for span in spans.values():
        path = [span.name]
        cursor = span
        while cursor.parent_id in spans:
            cursor = spans[cursor.parent_id]
            path.append(cursor.name)
        if span.virtual:
            path.append("simulated-time")
        key = ";".join(reversed(path))
        self_us = int(
            max(0.0, span.duration_s - child_time.get(span.span_id, 0.0)) * 1e6
        )
        if self_us:
            totals[key] = totals.get(key, 0) + self_us
    return [
        f"{path} {weight}"
        for path, weight in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
