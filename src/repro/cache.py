"""Content-addressed on-disk memoization for offline artifacts.

Repeated ``train`` / benchmark invocations over the same generated
repository recompute every AREPAS sweep, power-law fit, and feature
extraction from scratch. This module adds a small content-addressed
cache so those artifacts are computed once per *content*:

* **Keys are content hashes**, not names: a fitted target PCC is keyed
  on the skyline's byte-level hash (:func:`~repro.scope.signatures.
  skyline_signature`) plus every parameter that shapes the fit (observed
  tokens, grid resolution, the simulator's area-preservation mode);
  plan-derived features are keyed on
  :func:`~repro.scope.signatures.plan_content_signature`, which covers
  the full numeric content of the plan. Change any input and the key —
  hence the entry — changes; identical plans across different jobs
  *share* one feature entry.
* **Invalidation is structural**: every key embeds
  :data:`CACHE_VERSION`; bumping it (when artifact layout or upstream
  semantics change) orphans all old entries without any deletion logic.
  Unreadable/corrupt entries are treated as misses and dropped.
* **Writes are atomic** (temp file + ``os.replace``) so concurrent
  writers — e.g. ``repro.parallel`` workers sharing one cache directory
  — can only ever publish complete entries. Last writer wins, which is
  safe because entries are pure functions of their key.

Layout: ``<root>/<key[:2]>/<key>.pkl`` — two-level sharding keeps
directory listings small on big workloads.

Hits and misses are counted both on the instance and in the
``repro.obs`` metrics registry (``cache.hits{kind=...}`` /
``cache.misses{kind=...}``), so parallel workers' counts merge back
into the parent's registry alongside their spans.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro.obs import get_registry

__all__ = [
    "CACHE_VERSION",
    "ArtifactCache",
    "pcc_cache_key",
    "features_cache_key",
]

#: Bump when cached artifact layouts or the semantics of any upstream
#: computation (AREPAS, fitting, featurization) change; old entries are
#: then never addressed again.
CACHE_VERSION = 1


def _digest(parts: tuple) -> str:
    """Stable hex key from a tuple of primitive key parts."""
    text = "\x1f".join(str(part) for part in parts)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def pcc_cache_key(
    skyline_sig: str,
    requested_tokens: float,
    grid_points: int,
    preserve_area_exactly: bool,
) -> str:
    """Key for a fitted target PCC + point augmentation of one skyline."""
    return _digest(
        (
            CACHE_VERSION,
            "pcc",
            skyline_sig,
            repr(float(requested_tokens)),
            int(grid_points),
            bool(preserve_area_exactly),
        )
    )


def features_cache_key(plan_content_sig: str) -> str:
    """Key for the plan-derived features (job vector + graph sample)."""
    return _digest((CACHE_VERSION, "features", plan_content_sig))


class ArtifactCache:
    """A content-addressed pickle store under one root directory.

    Entries are addressed purely by key; the cache never inspects
    values. ``get`` returns ``default`` on a missing *or unreadable*
    entry (corrupt files are removed), so callers always fall back to
    recomputation and the cache can only change performance, never
    results.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Sharded on-disk location for ``key`` (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str, default=None, kind: str = "artifact"):
        """The value stored under ``key``, or ``default`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self._count_miss(kind)
            return default
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            # Corrupt or truncated entry: drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self._count_miss(kind)
            return default
        self.hits += 1
        get_registry().counter("cache.hits", kind=kind).increment()
        return value

    def put(self, key: str, value, kind: str = "artifact") -> Path:
        """Atomically store ``value`` under ``key``; returns its path.

        A temp file in the destination directory is fully written and
        fsync-free ``os.replace``-d into place, so readers (including
        other processes) never observe a partial entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def _count_miss(self, kind: str) -> None:
        self.misses += 1
        get_registry().counter("cache.misses", kind=kind).increment()

    def stats(self) -> dict[str, int]:
        """Hit/miss counts observed through this instance."""
        return {"hits": self.hits, "misses": self.misses}
