"""Flight anomaly filters (Section 5.1).

Flighted jobs are only usable for validation when they behave
deterministically enough; the paper filters out flights that are:

1. **isolated** — fewer than two successful flights of the same job,
2. **errant** — peak usage exceeding the allocated tokens,
3. **non-monotonic** — run time increasing with tokens beyond a 10%
   tolerance (environmental noise allowance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FlightingError

__all__ = ["FlightObservation", "FilterReport", "apply_flight_filters",
           "violates_monotonicity"]


@dataclass(frozen=True)
class FlightObservation:
    """The minimal view of one flight the filters need."""

    job_id: str
    tokens: float
    runtime: float
    peak_usage: float

    def __post_init__(self) -> None:
        if self.tokens <= 0 or self.runtime <= 0:
            raise FlightingError("flights need positive tokens and run time")


@dataclass(frozen=True)
class FilterReport:
    """Which flights survived, and why the rest were dropped."""

    kept: tuple[FlightObservation, ...]
    dropped_isolated: tuple[str, ...]
    dropped_errant: tuple[FlightObservation, ...]
    dropped_non_monotonic: tuple[str, ...]

    @property
    def num_kept(self) -> int:
        return len(self.kept)


def violates_monotonicity(
    flights: list[FlightObservation], tolerance: float = 0.10
) -> bool:
    """True when run time increases with tokens beyond the tolerance.

    Flights are averaged per distinct token count, sorted by tokens; any
    step where run time grows by more than ``tolerance`` (fractionally)
    violates the expectation that more compute never slows the job down.
    """
    if tolerance < 0:
        raise FlightingError("tolerance must be non-negative")
    by_tokens: dict[float, list[float]] = {}
    for flight in flights:
        by_tokens.setdefault(flight.tokens, []).append(flight.runtime)
    if len(by_tokens) < 2:
        return False
    token_levels = sorted(by_tokens)
    means = np.array([np.mean(by_tokens[t]) for t in token_levels])
    ratios = means[1:] / means[:-1]
    return bool(np.any(ratios > 1.0 + tolerance))


def apply_flight_filters(
    flights: list[FlightObservation],
    monotonicity_tolerance: float = 0.10,
    usage_slack: float = 1.02,
) -> FilterReport:
    """Apply the three Section 5.1 filters to a set of flights.

    ``usage_slack`` allows a small accounting margin before a flight is
    declared errant (the executor reports fractional average usage that
    can graze the allocation).
    """
    errant = [f for f in flights if f.peak_usage > f.tokens * usage_slack]
    errant_ids = {id(f) for f in errant}
    surviving = [f for f in flights if id(f) not in errant_ids]

    by_job: dict[str, list[FlightObservation]] = {}
    for flight in surviving:
        by_job.setdefault(flight.job_id, []).append(flight)

    kept: list[FlightObservation] = []
    isolated: list[str] = []
    non_monotonic: list[str] = []
    for job_id, job_flights in sorted(by_job.items()):
        if len(job_flights) < 2:
            isolated.append(job_id)
            continue
        if violates_monotonicity(job_flights, monotonicity_tolerance):
            non_monotonic.append(job_id)
            continue
        kept.extend(job_flights)

    return FilterReport(
        kept=tuple(kept),
        dropped_isolated=tuple(isolated),
        dropped_errant=tuple(errant),
        dropped_non_monotonic=tuple(non_monotonic),
    )
