"""Stratified under-sampling for flighting subset selection (Section 5.1).

The paper's four-step procedure for picking a small, representative set of
jobs to re-execute:

1. **Job filtering** — constrain the population to a pre-selected pool
   (virtual cluster, token range, time frame).
2. **Job clustering** — k-means over the population; label every pool job
   with its population cluster.
3. **Stratified sampling** — random under-sampling within each cluster
   proportional to the cluster's population share, with a cap on how
   often any single job type (template) may be chosen.
4. **Quality evaluation** — a Kolmogorov-Smirnov test confirming the
   selected subset tracks the population better than the raw pool did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import SelectionError
from repro.features.encoders import StandardScaler
from repro.scope.repository import TelemetryRecord
from repro.selection.kmeans import KMeans

__all__ = [
    "SelectionResult",
    "cluster_proportions",
    "stratified_sample",
    "ks_statistic",
    "select_flighting_jobs",
]


@dataclass(frozen=True)
class SelectionResult:
    """Output of the job selection procedure."""

    selected_indices: tuple[int, ...]
    population_labels: np.ndarray
    pool_labels: np.ndarray
    selected_labels: np.ndarray
    ks_before: float
    ks_after: float

    @property
    def improved(self) -> bool:
        """True when selection moved the pool closer to the population."""
        return self.ks_after <= self.ks_before


def cluster_proportions(labels: np.ndarray, n_clusters: int) -> np.ndarray:
    """Fraction of samples in each cluster, as a length-``n`` vector."""
    labels = np.asarray(labels)
    counts = np.bincount(labels, minlength=n_clusters).astype(float)
    if counts.sum() == 0:
        raise SelectionError("no samples to compute proportions over")
    return counts / counts.sum()


def stratified_sample(
    pool_labels: np.ndarray,
    population_proportions: np.ndarray,
    sample_size: int,
    rng: np.random.Generator,
    type_ids: np.ndarray | None = None,
    max_per_type: int | None = None,
) -> np.ndarray:
    """Under-sample the pool to match population cluster proportions.

    Parameters
    ----------
    pool_labels:
        Cluster label of each pool member.
    population_proportions:
        Target cluster-share vector (sums to 1).
    sample_size:
        Number of jobs to select.
    type_ids:
        Optional job-type identifier per pool member (e.g. template id),
        combined with ``max_per_type`` to cap repeats of one type.

    Returns
    -------
    numpy.ndarray
        Indices into the pool. May be smaller than ``sample_size`` when a
        cluster has too few distinct (or uncapped) members.
    """
    pool_labels = np.asarray(pool_labels)
    if sample_size < 1:
        raise SelectionError("sample_size must be positive")
    if max_per_type is not None and type_ids is None:
        raise SelectionError("max_per_type requires type_ids")

    n_clusters = population_proportions.size
    quotas = np.floor(population_proportions * sample_size).astype(int)
    # Distribute rounding remainders to the largest clusters.
    remainder = sample_size - quotas.sum()
    order = np.argsort(-population_proportions)
    for k in order[:remainder]:
        quotas[k] += 1

    selected: list[int] = []
    type_counts: dict[object, int] = {}
    for k in range(n_clusters):
        members = np.nonzero(pool_labels == k)[0]
        rng.shuffle(members)
        taken = 0
        for index in members:
            if taken >= quotas[k]:
                break
            if max_per_type is not None:
                assert type_ids is not None
                type_key = type_ids[index]
                if type_counts.get(type_key, 0) >= max_per_type:
                    continue
                type_counts[type_key] = type_counts.get(type_key, 0) + 1
            selected.append(int(index))
            taken += 1
    return np.array(sorted(selected), dtype=int)


def ks_statistic(sample: np.ndarray, population: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (lower = closer)."""
    sample = np.asarray(sample, dtype=float)
    population = np.asarray(population, dtype=float)
    if sample.size == 0 or population.size == 0:
        raise SelectionError("KS test requires non-empty samples")
    return float(stats.ks_2samp(sample, population).statistic)


def _selection_features(records: list[TelemetryRecord]) -> np.ndarray:
    """Compact per-job feature matrix used for clustering and KS checks."""
    return np.column_stack(
        [
            np.log1p([r.plan.total_cost for r in records]),
            np.log1p([r.plan.total_input_cardinality for r in records]),
            [r.plan.num_operators for r in records],
            np.log1p([float(r.requested_tokens) for r in records]),
        ]
    )


def select_flighting_jobs(
    population: list[TelemetryRecord],
    pool: list[TelemetryRecord],
    sample_size: int,
    n_clusters: int = 8,
    max_per_type: int | None = 3,
    seed: int = 0,
) -> SelectionResult:
    """Run the full four-step selection procedure on telemetry records.

    ``population`` is the whole historical workload; ``pool`` the
    pre-filtered candidates eligible for flighting. The KS quality check
    compares the log total-cost distribution of (pool, selected subset)
    against the population.
    """
    if not population or not pool:
        raise SelectionError("population and pool must be non-empty")
    if sample_size > len(pool):
        raise SelectionError("sample_size exceeds the pool size")

    population_features = _selection_features(population)
    pool_features = _selection_features(pool)
    scaler = StandardScaler().fit(population_features)

    kmeans = KMeans(n_clusters=n_clusters, seed=seed)
    population_labels = kmeans.fit_predict(scaler.transform(population_features))
    pool_labels = kmeans.predict(scaler.transform(pool_features))

    proportions = cluster_proportions(population_labels, n_clusters)
    rng = np.random.default_rng(seed)
    type_ids = np.array([r.template_id for r in pool])
    indices = stratified_sample(
        pool_labels,
        proportions,
        sample_size,
        rng,
        type_ids=type_ids,
        max_per_type=max_per_type,
    )
    if indices.size == 0:
        raise SelectionError("selection produced an empty subset")

    population_stat = population_features[:, 0]
    ks_before = ks_statistic(pool_features[:, 0], population_stat)
    ks_after = ks_statistic(pool_features[indices, 0], population_stat)

    return SelectionResult(
        selected_indices=tuple(int(i) for i in indices),
        population_labels=population_labels,
        pool_labels=pool_labels,
        selected_labels=pool_labels[indices],
        ks_before=ks_before,
        ks_after=ks_after,
    )
