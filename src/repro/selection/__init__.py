"""Workload subset selection and flight anomaly filters (Section 5.1)."""

from repro.selection.filters import (
    FilterReport,
    FlightObservation,
    apply_flight_filters,
    violates_monotonicity,
)
from repro.selection.kmeans import KMeans
from repro.selection.stratified import (
    SelectionResult,
    cluster_proportions,
    ks_statistic,
    select_flighting_jobs,
    stratified_sample,
)

__all__ = [
    "KMeans",
    "SelectionResult",
    "cluster_proportions",
    "stratified_sample",
    "ks_statistic",
    "select_flighting_jobs",
    "FlightObservation",
    "FilterReport",
    "apply_flight_filters",
    "violates_monotonicity",
]
