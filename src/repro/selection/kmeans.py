"""K-means clustering (used for workload subset selection, Section 5.1).

A small, dependency-free implementation with k-means++ initialisation,
used to divide the job population into groups before stratified
under-sampling (Figure 11).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, SelectionError

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise SelectionError("need at least one cluster")
        if max_iterations < 1:
            raise SelectionError("max_iterations must be positive")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self._seed = seed
        self.centroids_: np.ndarray | None = None
        self.inertia_: float | None = None

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> "KMeans":
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise SelectionError("points must be a 2-D matrix")
        if points.shape[0] < self.n_clusters:
            raise SelectionError("fewer points than clusters")

        rng = np.random.default_rng(self._seed)
        centroids = self._init_plus_plus(points, rng)

        for _ in range(self.max_iterations):
            labels = self._nearest(points, centroids)
            new_centroids = centroids.copy()
            for k in range(self.n_clusters):
                members = points[labels == k]
                if members.size:
                    new_centroids[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    distances = self._min_distances(points, new_centroids)
                    new_centroids[k] = points[int(np.argmax(distances))]
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < self.tolerance:
                break

        self.centroids_ = centroids
        labels = self._nearest(points, centroids)
        self.inertia_ = float(
            ((points - centroids[labels]) ** 2).sum()
        )
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise NotFittedError("KMeans used before fit")
        points = np.asarray(points, dtype=float)
        return self._nearest(points, self.centroids_)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).predict(points)

    # ------------------------------------------------------------------
    def _init_plus_plus(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = points.shape[0]
        centroids = [points[int(rng.integers(n))]]
        for _ in range(1, self.n_clusters):
            distances = self._min_distances(points, np.array(centroids))
            total = distances.sum()
            if total <= 0:
                # All points coincide with a centroid; pick uniformly.
                centroids.append(points[int(rng.integers(n))])
                continue
            probabilities = distances / total
            index = int(rng.choice(n, p=probabilities))
            centroids.append(points[index])
        return np.array(centroids)

    @staticmethod
    def _min_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        deltas = points[:, None, :] - centroids[None, :, :]
        return (deltas**2).sum(axis=2).min(axis=1)

    def _nearest(self, points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        deltas = points[:, None, :] - centroids[None, :, :]
        return (deltas**2).sum(axis=2).argmin(axis=1)
