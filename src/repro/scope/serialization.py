"""Repository persistence.

The production TASQ pipeline keeps historical telemetry in Azure Data
Lake Storage; the in-process equivalent is a single compressed ``.npz``
file holding every record's skyline plus a JSON metadata blob with the
plans. Useful for caching generated workloads between benchmark runs and
for the command-line interface.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ExecutionError
from repro.scope.operators import PartitioningMethod
from repro.scope.plan import OperatorNode, QueryPlan
from repro.scope.repository import JobRepository, TelemetryRecord
from repro.skyline.skyline import Skyline

__all__ = ["save_repository", "load_repository"]

_FORMAT_VERSION = 1


def _node_to_dict(node: OperatorNode) -> dict:
    return {
        "op_id": node.op_id,
        "kind": node.kind,
        "children": list(node.children),
        "partitioning": node.partitioning.value,
        "output_cardinality": node.output_cardinality,
        "leaf_input_cardinality": node.leaf_input_cardinality,
        "children_input_cardinality": node.children_input_cardinality,
        "average_row_length": node.average_row_length,
        "cost_subtree": node.cost_subtree,
        "cost_exclusive": node.cost_exclusive,
        "cost_total": node.cost_total,
        "num_partitions": node.num_partitions,
        "num_partitioning_columns": node.num_partitioning_columns,
        "num_sort_columns": node.num_sort_columns,
        "true_cost": node.true_cost,
    }


def _node_from_dict(data: dict) -> OperatorNode:
    return OperatorNode(
        op_id=int(data["op_id"]),
        kind=data["kind"],
        children=tuple(int(c) for c in data["children"]),
        partitioning=PartitioningMethod(data["partitioning"]),
        output_cardinality=float(data["output_cardinality"]),
        leaf_input_cardinality=float(data["leaf_input_cardinality"]),
        children_input_cardinality=float(data["children_input_cardinality"]),
        average_row_length=float(data["average_row_length"]),
        cost_subtree=float(data["cost_subtree"]),
        cost_exclusive=float(data["cost_exclusive"]),
        cost_total=float(data["cost_total"]),
        num_partitions=int(data["num_partitions"]),
        num_partitioning_columns=int(data["num_partitioning_columns"]),
        num_sort_columns=int(data["num_sort_columns"]),
        true_cost=float(data["true_cost"]),
    )


def save_repository(repository: JobRepository, path: str | Path) -> Path:
    """Write a repository to a compressed ``.npz`` file.

    Returns the path written (``.npz`` is appended if missing).
    """
    records = repository.records()
    if not records:
        raise ExecutionError("refusing to save an empty repository")

    metadata = []
    arrays: dict[str, np.ndarray] = {}
    for index, record in enumerate(records):
        metadata.append(
            {
                "job_id": record.job_id,
                "template_id": record.plan.template_id,
                "requested_tokens": record.requested_tokens,
                "submit_day": record.submit_day,
                "recurring": record.recurring,
                "nodes": [
                    _node_to_dict(node) for node in record.plan.nodes.values()
                ],
            }
        )
        arrays[f"skyline_{index}"] = record.skyline.usage

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload = json.dumps({"version": _FORMAT_VERSION, "records": metadata})
    np.savez_compressed(
        path, _metadata=np.array(payload), **arrays
    )
    return path


def load_repository(path: str | Path) -> JobRepository:
    """Load a repository previously written by :func:`save_repository`."""
    path = Path(path)
    if not path.exists():
        raise ExecutionError(f"no repository file at {path}")
    with np.load(path, allow_pickle=False) as data:
        payload = json.loads(str(data["_metadata"]))
        if payload.get("version") != _FORMAT_VERSION:
            raise ExecutionError(
                f"unsupported repository format: {payload.get('version')}"
            )
        repository = JobRepository()
        for index, meta in enumerate(payload["records"]):
            nodes = {
                int(node["op_id"]): _node_from_dict(node)
                for node in meta["nodes"]
            }
            plan = QueryPlan(
                job_id=meta["job_id"],
                nodes=nodes,
                template_id=meta["template_id"],
            )
            repository.add(
                TelemetryRecord(
                    job_id=meta["job_id"],
                    plan=plan,
                    requested_tokens=int(meta["requested_tokens"]),
                    skyline=Skyline(data[f"skyline_{index}"]),
                    submit_day=int(meta["submit_day"]),
                    recurring=bool(meta["recurring"]),
                )
            )
    return repository
