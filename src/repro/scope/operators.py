"""Physical operator catalogue for the SCOPE-like substrate.

The paper featurizes jobs with 35 physical operators and 4 partitioning
methods (Table 1, citing Zhou et al. for the operator descriptions). We
reproduce that schema with a catalogue of 35 operator kinds, each carrying
the metadata the plan generator and cost model need:

* ``arity`` — number of child inputs (0 for sources, 1 unary, 2 binary),
* ``category`` — coarse role used by the generator's grammar,
* ``cost_per_row`` — relative CPU cost per input row,
* ``selectivity`` — default output/input cardinality ratio range,
* ``blocking`` — True if the operator must consume its whole input before
  producing output (stage boundary in the execution model),
* ``exchange`` — True if the operator repartitions data across the cluster
  (always a stage boundary and the place partitioning methods apply).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "OperatorCategory",
    "PartitioningMethod",
    "OperatorSpec",
    "OPERATOR_CATALOG",
    "OPERATOR_NAMES",
    "PARTITIONING_METHODS",
    "NUM_OPERATOR_KINDS",
    "NUM_PARTITIONING_METHODS",
]


class OperatorCategory(Enum):
    """Coarse operator roles used by the plan grammar."""

    SOURCE = "source"
    FILTERING = "filtering"
    PROJECTION = "projection"
    JOIN = "join"
    AGGREGATE = "aggregate"
    SORT = "sort"
    SET = "set"
    EXCHANGE = "exchange"
    WINDOW = "window"
    UDO = "udo"
    OUTPUT = "output"
    MISC = "misc"


class PartitioningMethod(Enum):
    """The four partitioning methods of Table 1."""

    HASH = "hash"
    RANGE = "range"
    ROUND_ROBIN = "round_robin"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class OperatorSpec:
    """Static description of one physical operator kind."""

    name: str
    arity: int
    category: OperatorCategory
    cost_per_row: float
    selectivity: tuple[float, float]
    blocking: bool = False
    exchange: bool = False

    def __post_init__(self) -> None:
        if self.arity not in (0, 1, 2):
            raise ValueError(f"operator arity must be 0, 1 or 2: {self.name}")
        low, high = self.selectivity
        if not 0 < low <= high:
            raise ValueError(f"invalid selectivity range for {self.name}")


def _spec(
    name: str,
    arity: int,
    category: OperatorCategory,
    cost_per_row: float,
    selectivity: tuple[float, float],
    blocking: bool = False,
    exchange: bool = False,
) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        arity=arity,
        category=category,
        cost_per_row=cost_per_row,
        selectivity=selectivity,
        blocking=blocking,
        exchange=exchange,
    )


#: The 35 physical operators. Names follow the SCOPE operator vocabulary of
#: Zhou et al. (UDO = user-defined operator).
OPERATOR_CATALOG: dict[str, OperatorSpec] = {
    spec.name: spec
    for spec in [
        # -- sources ------------------------------------------------------
        _spec("Extract", 0, OperatorCategory.SOURCE, 1.0, (1.0, 1.0)),
        _spec("TableScan", 0, OperatorCategory.SOURCE, 0.8, (1.0, 1.0)),
        _spec("IndexScan", 0, OperatorCategory.SOURCE, 0.5, (1.0, 1.0)),
        _spec("ExternalRead", 0, OperatorCategory.SOURCE, 1.5, (1.0, 1.0)),
        # -- filtering / projection ---------------------------------------
        _spec("Filter", 1, OperatorCategory.FILTERING, 0.2, (0.05, 0.9)),
        _spec("RangeFilter", 1, OperatorCategory.FILTERING, 0.2, (0.1, 0.6)),
        _spec("Project", 1, OperatorCategory.PROJECTION, 0.1, (1.0, 1.0)),
        _spec("ComputeScalar", 1, OperatorCategory.PROJECTION, 0.3, (1.0, 1.0)),
        _spec("SequenceProject", 1, OperatorCategory.PROJECTION, 0.4, (1.0, 1.0)),
        # -- joins ----------------------------------------------------------
        _spec("HashJoin", 2, OperatorCategory.JOIN, 1.2, (0.1, 2.0), blocking=True),
        _spec("MergeJoin", 2, OperatorCategory.JOIN, 0.9, (0.1, 2.0)),
        _spec("NestedLoopJoin", 2, OperatorCategory.JOIN, 3.0, (0.05, 1.5)),
        _spec("BroadcastJoin", 2, OperatorCategory.JOIN, 1.0, (0.1, 2.0)),
        _spec("SemiJoin", 2, OperatorCategory.JOIN, 0.8, (0.05, 0.8)),
        _spec("AntiSemiJoin", 2, OperatorCategory.JOIN, 0.8, (0.05, 0.8)),
        _spec("CrossJoin", 2, OperatorCategory.JOIN, 5.0, (1.0, 3.0)),
        # -- aggregates -----------------------------------------------------
        _spec(
            "HashAggregate", 1, OperatorCategory.AGGREGATE, 1.0, (0.001, 0.3),
            blocking=True,
        ),
        _spec("StreamAggregate", 1, OperatorCategory.AGGREGATE, 0.6, (0.001, 0.3)),
        _spec(
            "LocalHashAggregate", 1, OperatorCategory.AGGREGATE, 0.8, (0.01, 0.5),
            blocking=True,
        ),
        _spec("LocalStreamAggregate", 1, OperatorCategory.AGGREGATE, 0.5, (0.01, 0.5)),
        # -- sorting / limiting ---------------------------------------------
        _spec("Sort", 1, OperatorCategory.SORT, 1.5, (1.0, 1.0), blocking=True),
        _spec("TopSort", 1, OperatorCategory.SORT, 1.2, (0.001, 0.1), blocking=True),
        _spec("Top", 1, OperatorCategory.SORT, 0.1, (0.001, 0.1)),
        # -- set operations -------------------------------------------------
        _spec("UnionAll", 2, OperatorCategory.SET, 0.1, (1.0, 2.0)),
        _spec("Union", 2, OperatorCategory.SET, 0.7, (0.5, 1.5), blocking=True),
        _spec("Intersect", 2, OperatorCategory.SET, 0.7, (0.05, 0.5), blocking=True),
        _spec("Except", 2, OperatorCategory.SET, 0.7, (0.1, 0.8), blocking=True),
        # -- exchanges ------------------------------------------------------
        _spec(
            "PartitionExchange", 1, OperatorCategory.EXCHANGE, 0.4, (1.0, 1.0),
            exchange=True,
        ),
        _spec(
            "FullMergeExchange", 1, OperatorCategory.EXCHANGE, 0.5, (1.0, 1.0),
            exchange=True,
        ),
        _spec(
            "BroadcastExchange", 1, OperatorCategory.EXCHANGE, 0.6, (1.0, 1.0),
            exchange=True,
        ),
        # -- window / UDO / output ------------------------------------------
        _spec("WindowFunction", 1, OperatorCategory.WINDOW, 1.1, (1.0, 1.0)),
        _spec("ProcessUDO", 1, OperatorCategory.UDO, 2.0, (0.2, 2.0)),
        _spec("ReduceUDO", 1, OperatorCategory.UDO, 2.5, (0.01, 1.0), blocking=True),
        _spec("CombineUDO", 2, OperatorCategory.UDO, 2.5, (0.1, 1.5), blocking=True),
        _spec("Output", 1, OperatorCategory.OUTPUT, 0.6, (1.0, 1.0)),
    ]
}

#: Fixed, deterministic operator name order used for one-hot encoding.
OPERATOR_NAMES: tuple[str, ...] = tuple(OPERATOR_CATALOG)

#: Fixed partitioning method order used for one-hot encoding.
PARTITIONING_METHODS: tuple[PartitioningMethod, ...] = tuple(PartitioningMethod)

NUM_OPERATOR_KINDS = len(OPERATOR_NAMES)
NUM_PARTITIONING_METHODS = len(PARTITIONING_METHODS)

if NUM_OPERATOR_KINDS != 35:
    raise AssertionError(
        f"operator catalogue must contain 35 operators (Table 1), "
        f"found {NUM_OPERATOR_KINDS}"
    )
