"""Query plan DAGs with compile-time estimates.

A SCOPE job is a directed acyclic graph of physical operators (Section 2).
:class:`OperatorNode` carries exactly the compile-time features of Table 1:

* continuous — estimated cardinalities (output / leaf input / children
  input), average row length, and estimated costs (subtree / operator
  exclusive / total),
* discrete — number of partitions, partitioning columns, sort columns,
* categorical — the physical operator kind and partitioning method.

:class:`QueryPlan` validates the DAG, exposes topological order, the
adjacency matrix the GNN consumes, and simple structural statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PlanError
from repro.scope.operators import (
    OPERATOR_CATALOG,
    OperatorSpec,
    PartitioningMethod,
)

__all__ = ["OperatorNode", "QueryPlan"]


@dataclass
class OperatorNode:
    """One physical operator instance in a query plan.

    ``children`` holds the ids of operators feeding this one (data flows
    child -> parent; sources have no children, the sink has no parent).
    """

    op_id: int
    kind: str
    children: tuple[int, ...] = ()
    partitioning: PartitioningMethod = PartitioningMethod.ROUND_ROBIN
    # Table 1 continuous features (all compile-time *estimates*).
    output_cardinality: float = 0.0
    leaf_input_cardinality: float = 0.0
    children_input_cardinality: float = 0.0
    average_row_length: float = 0.0
    cost_subtree: float = 0.0
    cost_exclusive: float = 0.0
    cost_total: float = 0.0
    # Table 1 discrete features.
    num_partitions: int = 1
    num_partitioning_columns: int = 0
    num_sort_columns: int = 0
    # Hidden ground truth: the operator's *actual* work in cost units.
    # Compile-time estimates (the fields above) are noisy versions of this;
    # the executor runs on true cost, the models only ever see estimates.
    # Zero means "use the estimate" (no estimation error).
    true_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in OPERATOR_CATALOG:
            raise PlanError(f"unknown operator kind: {self.kind!r}")
        if self.num_partitions < 1:
            raise PlanError("operators must have at least one partition")

    @property
    def spec(self) -> OperatorSpec:
        """The static catalogue entry for this operator's kind."""
        return OPERATOR_CATALOG[self.kind]

    @property
    def is_source(self) -> bool:
        return self.spec.arity == 0

    @property
    def starts_new_stage(self) -> bool:
        """True if this operator begins a new execution stage.

        Exchanges always repartition (network boundary); blocking
        operators must materialise their input first. Both break the
        pipelined stage in SCOPE-like engines.
        """
        return self.spec.exchange or self.spec.blocking


@dataclass
class QueryPlan:
    """A validated DAG of :class:`OperatorNode` objects.

    Parameters
    ----------
    job_id:
        Unique identifier of the job this plan belongs to.
    nodes:
        Operators keyed by ``op_id``; edges are implied by each node's
        ``children`` tuple.
    template_id:
        Identifier of the generator template the job was instantiated
        from. Recurring jobs share a template; ad-hoc jobs get a unique
        one. Used only for job grouping/selection, never as a model
        feature (TASQ's global model must cover unseen jobs).
    """

    job_id: str
    nodes: dict[int, OperatorNode]
    template_id: str = "adhoc"
    _topo_order: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise PlanError("query plan must contain at least one operator")
        for node in self.nodes.values():
            expected = node.spec.arity
            if len(node.children) != expected:
                raise PlanError(
                    f"operator {node.op_id} ({node.kind}) expects {expected} "
                    f"children, has {len(node.children)}"
                )
            for child in node.children:
                if child not in self.nodes:
                    raise PlanError(
                        f"operator {node.op_id} references missing child {child}"
                    )
        self._topo_order = self._topological_order()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _topological_order(self) -> list[int]:
        """Children-before-parents order; raises on cycles."""
        in_degree = {op_id: 0 for op_id in self.nodes}
        parents: dict[int, list[int]] = {op_id: [] for op_id in self.nodes}
        for node in self.nodes.values():
            for child in node.children:
                parents[child].append(node.op_id)
                in_degree[node.op_id] += 1

        ready = sorted(op_id for op_id, deg in in_degree.items() if deg == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for parent in parents[current]:
                in_degree[parent] -= 1
                if in_degree[parent] == 0:
                    ready.append(parent)
        if len(order) != len(self.nodes):
            raise PlanError("query plan contains a cycle")
        return order

    @property
    def topological_order(self) -> list[int]:
        """Operator ids, children before parents."""
        return list(self._topo_order)

    @property
    def num_operators(self) -> int:
        return len(self.nodes)

    @property
    def sources(self) -> list[OperatorNode]:
        """Leaf operators (Extract/TableScan/... with no children)."""
        return [n for n in self.nodes.values() if n.is_source]

    @property
    def sinks(self) -> list[OperatorNode]:
        """Operators no other operator consumes (normally one Output)."""
        consumed = {c for n in self.nodes.values() for c in n.children}
        return [n for n in self.nodes.values() if n.op_id not in consumed]

    @property
    def num_stages(self) -> int:
        """Number of execution stages (see :mod:`repro.scope.stages`)."""
        return 1 + sum(
            1
            for n in self.nodes.values()
            if n.starts_new_stage and not n.is_source
        )

    def adjacency_matrix(self) -> np.ndarray:
        """Dense adjacency matrix over topological node order.

        ``A[i, j] = 1`` if the data of node ``i`` flows into node ``j``
        (child -> parent edges). Row/column order matches
        :attr:`topological_order`, the same order used for the GNN's
        feature matrix.
        """
        index = {op_id: i for i, op_id in enumerate(self._topo_order)}
        matrix = np.zeros((len(index), len(index)), dtype=np.float64)
        for node in self.nodes.values():
            for child in node.children:
                matrix[index[child], index[node.op_id]] = 1.0
        return matrix

    def edges(self) -> list[tuple[int, int]]:
        """All (child, parent) edges."""
        return [
            (child, node.op_id)
            for node in self.nodes.values()
            for child in node.children
        ]

    # ------------------------------------------------------------------
    # aggregate estimates
    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> float:
        """Sum of exclusive operator costs (the plan's total work estimate)."""
        return float(sum(n.cost_exclusive for n in self.nodes.values()))

    @property
    def total_input_cardinality(self) -> float:
        """Total estimated rows read at the leaves."""
        return float(sum(n.output_cardinality for n in self.sources))

    def operator_counts(self) -> dict[str, int]:
        """Histogram of operator kinds (used by the categorical features)."""
        counts: dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts
