"""Historical job repository and telemetry records.

Stands in for the Cosmos job repository in Figure 4: after a job executes,
its plan, requested tokens, skyline, and run time are recorded. The TASQ
training pipeline ingests these records; the flighting harness re-executes
selected records at other allocations.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.exceptions import ExecutionError
from repro.parallel import pmap
from repro.scope.execution import ClusterExecutor
from repro.scope.generator import JobInstance
from repro.scope.plan import QueryPlan
from repro.scope.stages import StageGraph, decompose_stages
from repro.skyline.skyline import Skyline

__all__ = ["TelemetryRecord", "JobRepository", "run_workload"]


@dataclass(frozen=True)
class TelemetryRecord:
    """Everything the platform knows about one historical job execution."""

    job_id: str
    plan: QueryPlan
    requested_tokens: int
    skyline: Skyline
    submit_day: int
    recurring: bool

    @property
    def runtime(self) -> int:
        """Observed run time in seconds."""
        return self.skyline.duration

    @property
    def peak_tokens(self) -> float:
        """Peak token usage observed during the run."""
        return self.skyline.peak

    @property
    def template_id(self) -> str:
        return self.plan.template_id


class JobRepository:
    """In-memory store of :class:`TelemetryRecord` objects."""

    def __init__(self) -> None:
        self._records: dict[str, TelemetryRecord] = {}

    def add(self, record: TelemetryRecord) -> None:
        if record.job_id in self._records:
            raise ExecutionError(f"duplicate job id: {record.job_id}")
        self._records[record.job_id] = record

    def get(self, job_id: str) -> TelemetryRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise ExecutionError(f"unknown job id: {job_id}") from None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TelemetryRecord]:
        return iter(self._records.values())

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def records(
        self, predicate: Callable[[TelemetryRecord], bool] | None = None
    ) -> list[TelemetryRecord]:
        """All records, optionally filtered by ``predicate``."""
        if predicate is None:
            return list(self._records.values())
        return [r for r in self._records.values() if predicate(r)]

    def by_day(self, first_day: int, last_day: int) -> list[TelemetryRecord]:
        """Records submitted in the inclusive day range."""
        return self.records(lambda r: first_day <= r.submit_day <= last_day)

    def runtime_statistics(self) -> dict[str, float]:
        """Workload-level run time / peak token summary (Section 5 stats)."""
        if not self._records:
            raise ExecutionError("repository is empty")
        runtimes = np.array([r.runtime for r in self._records.values()])
        peaks = np.array([r.peak_tokens for r in self._records.values()])
        return {
            "jobs": float(len(runtimes)),
            "runtime_min": float(runtimes.min()),
            "runtime_median": float(np.median(runtimes)),
            "runtime_mean": float(runtimes.mean()),
            "runtime_max": float(runtimes.max()),
            "peak_tokens_min": float(peaks.min()),
            "peak_tokens_median": float(np.median(peaks)),
            "peak_tokens_mean": float(peaks.mean()),
            "peak_tokens_max": float(peaks.max()),
        }


def run_workload(
    jobs: list[JobInstance],
    executor: ClusterExecutor | None = None,
    seed: int = 0,
    workers: int = 1,
) -> JobRepository:
    """Execute every job at its requested tokens and record the telemetry.

    This is the "history builder": it plays the role of months of
    production activity, populating the repository the TASQ pipeline
    trains on. Each execution gets its own deterministic rng stream: all
    per-job seeds are drawn from the root generator *upfront*, in job
    order, so a ``workers > 1`` run (jobs executed across a process
    pool via :func:`repro.parallel.pmap`) consumes exactly the same
    streams — and produces exactly the same telemetry — as a serial one.
    """
    executor = executor or ClusterExecutor(noise_scale=0.08, straggler_rate=0.02)
    repository = JobRepository()
    root = np.random.default_rng(seed)
    job_seeds = [int(root.integers(0, 2**63)) for _ in jobs]
    records = pmap(
        partial(_execute_job, executor=executor),
        list(zip(jobs, job_seeds)),
        workers=workers,
    )
    for record in records:
        repository.add(record)
    return repository


def _execute_job(
    task: tuple[JobInstance, int], executor: ClusterExecutor
) -> TelemetryRecord:
    """Top-level (hence picklable) pmap task: execute one seeded job."""
    job, job_seed = task
    rng = np.random.default_rng(job_seed)
    graph: StageGraph = decompose_stages(job.plan)
    result = executor.execute(graph, job.requested_tokens, rng=rng)
    return TelemetryRecord(
        job_id=job.job_id,
        plan=job.plan,
        requested_tokens=job.requested_tokens,
        skyline=result.skyline,
        submit_day=job.submit_day,
        recurring=job.recurring,
    )
