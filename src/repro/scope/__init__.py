"""SCOPE-like substrate: operators, plans, workload generation, execution."""

from repro.scope.cluster import ClusterQueue, QueuedJob, QueueOutcome, QueueReport
from repro.scope.execution import ClusterExecutor, ExecutionResult
from repro.scope.generator import (
    FAMILY_NAMES,
    WORKLOAD_FAMILIES,
    JobInstance,
    WorkloadConfig,
    WorkloadGenerator,
    make_family_config,
)
from repro.scope.operators import (
    NUM_OPERATOR_KINDS,
    NUM_PARTITIONING_METHODS,
    OPERATOR_CATALOG,
    OPERATOR_NAMES,
    PARTITIONING_METHODS,
    OperatorCategory,
    OperatorSpec,
    PartitioningMethod,
)
from repro.scope.plan import OperatorNode, QueryPlan
from repro.scope.repository import JobRepository, TelemetryRecord, run_workload
from repro.scope.serialization import load_repository, save_repository
from repro.scope.signatures import (
    plan_content_signature,
    plan_signature,
    skyline_signature,
)
from repro.scope.stages import CostModel, Stage, StageGraph, decompose_stages

__all__ = [
    "OperatorCategory",
    "PartitioningMethod",
    "OperatorSpec",
    "OPERATOR_CATALOG",
    "OPERATOR_NAMES",
    "PARTITIONING_METHODS",
    "NUM_OPERATOR_KINDS",
    "NUM_PARTITIONING_METHODS",
    "OperatorNode",
    "QueryPlan",
    "CostModel",
    "Stage",
    "StageGraph",
    "decompose_stages",
    "ClusterExecutor",
    "ExecutionResult",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WORKLOAD_FAMILIES",
    "FAMILY_NAMES",
    "make_family_config",
    "JobInstance",
    "JobRepository",
    "TelemetryRecord",
    "run_workload",
    "save_repository",
    "load_repository",
    "plan_signature",
    "plan_content_signature",
    "skyline_signature",
    "ClusterQueue",
    "QueuedJob",
    "QueueOutcome",
    "QueueReport",
]
