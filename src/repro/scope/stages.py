"""Stage decomposition of query plans.

SCOPE compiles an operator DAG into *stages* (vertices): maximal pipelines
of operators executed together by a set of parallel tasks, with stage
boundaries at exchanges (repartitioning) and blocking operators. The
cluster executor schedules stage tasks onto tokens, which is what produces
the peaks and valleys of the resource skylines.

Decomposition rules (deliberately simple but faithful to the shape of the
problem):

* every source operator opens its own stage (one per input),
* binary operators open a new stage (they synchronise two inputs),
* unary operators open a new stage iff they are blocking or an exchange,
* any other unary operator joins its child's stage (pipelining).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PlanError
from repro.scope.plan import OperatorNode, QueryPlan

__all__ = ["Stage", "StageGraph", "decompose_stages", "CostModel"]

#: Hard ceiling on per-stage task count, mirroring the practical limit on
#: SCOPE vertex parallelism (the paper's peak observed allocation is 6287).
MAX_TASKS_PER_STAGE = 6400


@dataclass(frozen=True)
class CostModel:
    """Converts compile-time cost units into simulated task seconds.

    ``seconds_per_cost_unit`` calibrates how much wall-clock one unit of
    estimated operator cost takes on a single token. ``startup_seconds`` is
    the fixed scheduling/initialisation latency added to every task.
    """

    seconds_per_cost_unit: float = 3.0e-4
    startup_seconds: float = 2.0

    def task_seconds(self, stage_work: float, num_tasks: int) -> float:
        """Nominal duration of one task of a stage."""
        if num_tasks < 1:
            raise PlanError("stage must have at least one task")
        compute = stage_work * self.seconds_per_cost_unit / num_tasks
        return self.startup_seconds + compute


@dataclass
class Stage:
    """A schedulable unit: ``num_tasks`` parallel tasks of similar size."""

    stage_id: int
    operator_ids: tuple[int, ...]
    num_tasks: int
    work: float
    dependencies: tuple[int, ...] = ()

    def task_duration(self, cost_model: CostModel) -> float:
        """Nominal per-task duration in seconds."""
        return cost_model.task_seconds(self.work, self.num_tasks)


@dataclass
class StageGraph:
    """Stages of one plan plus their dependency edges."""

    job_id: str
    stages: dict[int, Stage] = field(default_factory=dict)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_work(self) -> float:
        return float(sum(s.work for s in self.stages.values()))

    @property
    def max_parallelism(self) -> int:
        """Largest task count of any single stage."""
        return max(s.num_tasks for s in self.stages.values())

    def topological_order(self) -> list[int]:
        """Stage ids, dependencies first; raises on cycles."""
        in_degree = {sid: len(s.dependencies) for sid, s in self.stages.items()}
        dependents: dict[int, list[int]] = {sid: [] for sid in self.stages}
        for sid, stage in self.stages.items():
            for dep in stage.dependencies:
                dependents[dep].append(sid)
        ready = sorted(sid for sid, deg in in_degree.items() if deg == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for dependent in dependents[current]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.stages):
            raise PlanError("stage graph contains a cycle")
        return order

    def critical_path_work(self, cost_model: CostModel) -> float:
        """Serial lower bound: longest dependency chain of task durations.

        With unlimited tokens every stage still takes at least one task
        duration, so the job cannot finish faster than the longest chain —
        this is the Amdahl-style serial fraction of the job.
        """
        finish: dict[int, float] = {}
        for sid in self.topological_order():
            stage = self.stages[sid]
            start = max((finish[d] for d in stage.dependencies), default=0.0)
            finish[sid] = start + stage.task_duration(cost_model)
        return max(finish.values())


def decompose_stages(plan: QueryPlan) -> StageGraph:
    """Group a plan's operators into stages (see module docstring)."""
    stage_of: dict[int, int] = {}
    members: dict[int, list[OperatorNode]] = {}
    next_stage = 0

    for op_id in plan.topological_order:
        node = plan.nodes[op_id]
        opens_new = (
            node.is_source
            or node.spec.arity == 2
            or node.starts_new_stage
        )
        if opens_new:
            stage_id = next_stage
            next_stage += 1
            members[stage_id] = []
        else:
            stage_id = stage_of[node.children[0]]
        stage_of[op_id] = stage_id
        members[stage_id].append(node)

    graph = StageGraph(job_id=plan.job_id)
    for stage_id, ops in members.items():
        dependencies = sorted(
            {
                stage_of[child]
                for op in ops
                for child in op.children
                if stage_of[child] != stage_id
            }
        )
        num_tasks = min(
            MAX_TASKS_PER_STAGE,
            max(op.num_partitions for op in ops),
        )
        # Execution runs on the hidden true cost when the generator set it;
        # the compile-time estimate is the fallback (zero estimation error).
        work = float(
            sum(op.true_cost if op.true_cost > 0 else op.cost_exclusive for op in ops)
        )
        graph.stages[stage_id] = Stage(
            stage_id=stage_id,
            operator_ids=tuple(op.op_id for op in ops),
            num_tasks=num_tasks,
            work=work,
            dependencies=tuple(dependencies),
        )
    return graph
