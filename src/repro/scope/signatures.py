"""Structural job signatures.

AutoToken (Sen et al., §6.2) groups *recurring* SCOPE jobs by signature —
a normalised identifier that is stable across daily instances of the same
pipeline but differs between pipelines. Our substrate's equivalent is a
hash of the plan's *structure*: operator kinds and the DAG wiring, but
none of the cardinality/cost estimates (which drift day to day).

Recurring instances generated from one template share a signature by
construction (template structure is frozen; only input sizes drift), and
ad-hoc jobs effectively get unique signatures — matching the paper's
40-60% ad-hoc rate that AutoToken cannot cover.
"""

from __future__ import annotations

import hashlib

from repro.scope.plan import QueryPlan

__all__ = ["plan_signature"]


def plan_signature(plan: QueryPlan) -> str:
    """A drift-invariant structural hash of a query plan.

    Built from each operator's kind, partitioning method, and the kinds of
    its children, in topological order. Two plans that differ only in
    estimated cardinalities, row widths, costs, or partition counts map to
    the same signature; any structural change (operator added/replaced,
    wiring changed) yields a different one.
    """
    parts = []
    for op_id in plan.topological_order:
        node = plan.nodes[op_id]
        child_kinds = ",".join(
            plan.nodes[child].kind for child in node.children
        )
        parts.append(f"{node.kind}|{node.partitioning.value}|{child_kinds}")
    digest = hashlib.sha1("\n".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]
