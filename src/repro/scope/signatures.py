"""Structural job signatures.

AutoToken (Sen et al., §6.2) groups *recurring* SCOPE jobs by signature —
a normalised identifier that is stable across daily instances of the same
pipeline but differs between pipelines. Our substrate's equivalent is a
hash of the plan's *structure*: operator kinds and the DAG wiring, but
none of the cardinality/cost estimates (which drift day to day).

Recurring instances generated from one template share a signature by
construction (template structure is frozen; only input sizes drift), and
ad-hoc jobs effectively get unique signatures — matching the paper's
40-60% ad-hoc rate that AutoToken cannot cover.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.scope.plan import QueryPlan
from repro.skyline.skyline import Skyline

__all__ = ["plan_signature", "plan_content_signature", "skyline_signature"]


def plan_signature(plan: QueryPlan) -> str:
    """A drift-invariant structural hash of a query plan.

    Built from each operator's kind, partitioning method, and the kinds of
    its children, in topological order. Two plans that differ only in
    estimated cardinalities, row widths, costs, or partition counts map to
    the same signature; any structural change (operator added/replaced,
    wiring changed) yields a different one.
    """
    parts = []
    for op_id in plan.topological_order:
        node = plan.nodes[op_id]
        child_kinds = ",".join(
            plan.nodes[child].kind for child in node.children
        )
        parts.append(f"{node.kind}|{node.partitioning.value}|{child_kinds}")
    digest = hashlib.sha1("\n".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def plan_content_signature(plan: QueryPlan) -> str:
    """A content hash of a plan: structure *plus* every numeric estimate.

    Unlike :func:`plan_signature` — deliberately drift-invariant so daily
    instances of one pipeline collide — this hash changes whenever any
    cardinality, row width, cost, or partition count changes. That makes
    it suitable for content-addressed caching (``repro.cache``), where
    plan-derived features must be recomputed when the estimates move.
    """
    parts = []
    for op_id in plan.topological_order:
        node = plan.nodes[op_id]
        children = ",".join(str(child) for child in node.children)
        parts.append(
            "|".join(
                (
                    node.kind,
                    node.partitioning.value,
                    children,
                    repr(float(node.output_cardinality)),
                    repr(float(node.leaf_input_cardinality)),
                    repr(float(node.children_input_cardinality)),
                    repr(float(node.average_row_length)),
                    repr(float(node.cost_subtree)),
                    repr(float(node.cost_exclusive)),
                    repr(float(node.cost_total)),
                    str(node.num_partitions),
                    str(node.num_partitioning_columns),
                    str(node.num_sort_columns),
                )
            )
        )
    digest = hashlib.sha1("\n".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def skyline_signature(skyline: Skyline) -> str:
    """A content hash of a skyline's usage series.

    Hashes the raw float64 bytes, so any change to any second's usage (or
    to the duration) produces a different signature. Used by
    ``repro.cache`` to key AREPAS-derived artifacts (fitted target PCCs,
    augmented observations) on the exact telemetry they came from.
    """
    usage = np.ascontiguousarray(skyline.usage, dtype=np.float64)
    digest = hashlib.sha1(usage.tobytes()).hexdigest()
    return digest[:16]
