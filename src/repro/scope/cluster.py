"""Cluster-level admission queue simulation.

The paper's introduction motivates aggressive allocation with a
cluster-level argument: "Utilizing fewer tokens reduces job wait time and
improves the overall resource availability for other jobs in the
cluster". This module makes that claim measurable: a fixed-capacity token
pool admits jobs FCFS — a job starts only when its *requested* tokens are
free (SCOPE allocates guaranteed tokens up front) and holds them for its
whole run time.

Feeding the same job stream through the queue under different allocation
policies (user defaults versus TASQ recommendations) quantifies the
queueing benefit of right-sizing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExecutionError

__all__ = ["QueuedJob", "QueueOutcome", "QueueReport", "ClusterQueue"]


@dataclass(frozen=True)
class QueuedJob:
    """One job submitted to the cluster queue.

    ``runtime`` is the job's run time *at the granted allocation* —
    callers evaluate their allocation policy (e.g. via a PCC or AREPAS)
    before submission.
    """

    job_id: str
    arrival_time: float
    tokens: int
    runtime: float

    def __post_init__(self) -> None:
        if self.tokens < 1:
            raise ExecutionError("queued jobs need at least one token")
        if self.runtime <= 0:
            raise ExecutionError("queued jobs need a positive run time")
        if self.arrival_time < 0:
            raise ExecutionError("arrival times must be non-negative")


@dataclass(frozen=True)
class QueueOutcome:
    """When one job started and finished, and what it was granted.

    ``tokens`` is the job's granted allocation — for the plain FCFS queue
    that is simply the requested size, but schedulers that choose grants
    themselves (``repro.fleet``) record the allocator's final decision
    here. ``token_seconds`` defaults to ``tokens`` held for the whole
    run; schedulers whose grants change mid-run pass the exactly
    integrated holdings instead.
    """

    job_id: str
    arrival_time: float
    start_time: float
    finish_time: float
    tokens: int
    #: Tokens held x seconds held: the job's slice of the pool.
    token_seconds: float = -1.0

    def __post_init__(self) -> None:
        if self.token_seconds < 0:
            object.__setattr__(
                self,
                "token_seconds",
                self.tokens * (self.finish_time - self.start_time),
            )

    @property
    def wait_time(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def turnaround(self) -> float:
        """Arrival-to-completion latency (wait + run)."""
        return self.finish_time - self.arrival_time

    @property
    def runtime(self) -> float:
        """Time actually spent running (start to finish)."""
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> float:
        """Turnaround normalized by run time (1.0 = no queueing delay)."""
        return self.turnaround / self.runtime


@dataclass(frozen=True)
class QueueReport:
    """Aggregate queueing statistics for one simulated stream.

    ``capacity`` is denominated in *tokens* (the guaranteed-token pool of
    the paper's Section 1), not job slots: a job occupies ``tokens`` of
    it for its whole run.
    """

    outcomes: tuple[QueueOutcome, ...]
    capacity: int

    @property
    def mean_wait(self) -> float:
        return float(np.mean([o.wait_time for o in self.outcomes]))

    @property
    def median_wait(self) -> float:
        return float(np.median([o.wait_time for o in self.outcomes]))

    @property
    def p95_wait(self) -> float:
        return self.wait_percentile(95)

    @property
    def p50_wait(self) -> float:
        return self.wait_percentile(50)

    def wait_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-job wait times."""
        return float(
            np.percentile([o.wait_time for o in self.outcomes], q)
        )

    @property
    def p50_slowdown(self) -> float:
        return self.slowdown_percentile(50)

    @property
    def p95_slowdown(self) -> float:
        return self.slowdown_percentile(95)

    def slowdown_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-job slowdowns (turnaround /
        run time; 1.0 means the job never waited)."""
        return float(
            np.percentile([o.slowdown for o in self.outcomes], q)
        )

    @property
    def mean_turnaround(self) -> float:
        return float(np.mean([o.turnaround for o in self.outcomes]))

    @property
    def makespan(self) -> float:
        return float(max(o.finish_time for o in self.outcomes))

    @property
    def total_token_seconds(self) -> float:
        """Token-seconds held across the stream (the paper's cost unit)."""
        return float(sum(o.token_seconds for o in self.outcomes))

    @property
    def utilization(self) -> float:
        """Fraction of the pool's token-seconds actually held by jobs."""
        return self.total_token_seconds / (self.capacity * self.makespan)


class ClusterQueue:
    """FCFS admission over a fixed pool of guaranteed tokens.

    Jobs are admitted strictly in arrival order (no backfilling — SCOPE's
    guaranteed-token queue is order-preserving); a job waits until the
    pool has its full request free.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ExecutionError("cluster capacity must be positive")
        self.capacity = capacity

    def run(self, jobs: list[QueuedJob]) -> QueueReport:
        """Simulate the stream and return per-job outcomes."""
        if not jobs:
            raise ExecutionError("no jobs submitted")
        oversized = [j for j in jobs if j.tokens > self.capacity]
        if oversized:
            raise ExecutionError(
                f"job {oversized[0].job_id} requests {oversized[0].tokens} "
                f"tokens but the cluster only has {self.capacity}"
            )

        pending = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        free = self.capacity
        clock = 0.0
        # Min-heap of (finish_time, tokens) for running jobs.
        running: list[tuple[float, int]] = []
        outcomes = []

        for job in pending:
            clock = max(clock, job.arrival_time)
            # Release everything finished by the current clock, then keep
            # releasing (advancing the clock) until the job fits.
            while True:
                while running and running[0][0] <= clock:
                    _, tokens = heapq.heappop(running)
                    free += tokens
                if free >= job.tokens:
                    break
                if not running:
                    raise ExecutionError(
                        "deadlock: insufficient capacity with no running jobs"
                    )
                clock = max(clock, running[0][0])
            start = clock
            finish = start + job.runtime
            free -= job.tokens
            heapq.heappush(running, (finish, job.tokens))
            outcomes.append(
                QueueOutcome(
                    job_id=job.job_id,
                    arrival_time=job.arrival_time,
                    start_time=start,
                    finish_time=finish,
                    tokens=job.tokens,
                )
            )
        return QueueReport(outcomes=tuple(outcomes), capacity=self.capacity)
