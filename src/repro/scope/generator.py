"""Synthetic SCOPE-like workload generator.

The paper trains on 85K production SCOPE jobs whose statistics are heavily
right-skewed: run times from 33 seconds to 21 hours (median ~3 minutes),
peak token usage from 1 to 6,287 (median 54). Those traces are proprietary,
so this module generates a synthetic population with the same qualitative
properties:

* jobs are operator DAGs drawn from a TPC-H-flavoured grammar (scan ->
  filter/project chains -> join tree -> aggregates -> sort/top -> output),
* leaf input sizes and plan shapes are lognormally skewed, producing
  right-skewed run-time and token distributions,
* a configurable share of jobs is *recurring*: instances of a shared
  template that differ only in input size (day-to-day data drift), the
  rest are *ad-hoc* one-off plans — matching the 40-60% ad-hoc rate the
  paper reports,
* compile-time estimates (Table 1 features) are noisy versions of the true
  costs the executor runs on, so learned models face realistic estimation
  error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.exceptions import PlanError
from repro.obs import get_registry, trace
from repro.parallel import pmap
from repro.scope.operators import PartitioningMethod
from repro.scope.plan import OperatorNode, QueryPlan

__all__ = [
    "WorkloadConfig",
    "JobInstance",
    "WorkloadGenerator",
    "WORKLOAD_FAMILIES",
    "FAMILY_NAMES",
    "make_family_config",
]


_JOIN_KINDS = (
    "HashJoin",
    "MergeJoin",
    "BroadcastJoin",
    "SemiJoin",
    "NestedLoopJoin",
    "AntiSemiJoin",
    "UnionAll",
)
_JOIN_WEIGHTS = (0.35, 0.2, 0.15, 0.1, 0.05, 0.05, 0.1)
_SOURCE_KINDS = ("Extract", "TableScan", "IndexScan", "ExternalRead")
_SOURCE_WEIGHTS = (0.45, 0.3, 0.15, 0.1)
_CHAIN_KINDS = ("Filter", "RangeFilter", "Project", "ComputeScalar", "ProcessUDO")
_CHAIN_WEIGHTS = (0.35, 0.15, 0.25, 0.15, 0.1)
_POST_KINDS = (
    "HashAggregate",
    "StreamAggregate",
    "LocalHashAggregate",
    "WindowFunction",
    "ReduceUDO",
    "Sort",
    "TopSort",
    "Top",
)
_POST_WEIGHTS = (0.25, 0.1, 0.1, 0.1, 0.1, 0.15, 0.1, 0.1)


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunable knobs of the workload population.

    The defaults are calibrated so that, with the default
    :class:`~repro.scope.stages.CostModel`, executing each job at its
    requested tokens yields run-time and peak-token distributions shaped
    like the paper's (right-skewed, median run time of a few minutes,
    median peak tokens a few dozen).

    Every structural distribution the template sampler draws from is a
    config field, so a workload *family* (streaming micro-batches, ML
    training pipelines, heavy-skew ETL, ...) is just a different
    configuration — see :data:`WORKLOAD_FAMILIES`.
    """

    #: Family label this configuration belongs to (informational).
    family: str = "tpch"
    #: Fraction of jobs instantiated from recurring templates.
    recurring_fraction: float = 0.55
    #: Number of distinct recurring templates in the population.
    num_templates: int = 40
    #: Lognormal parameters of leaf input cardinality (rows).
    leaf_rows_log_mean: float = 14.3  # median ~1.6M rows
    leaf_rows_log_sigma: float = 1.9
    #: Day-to-day input-size drift of recurring jobs (lognormal sigma).
    recurring_drift_sigma: float = 0.35
    #: Lognormal sigma of compile-time cost estimation error.
    estimation_error_sigma: float = 0.35
    #: Rows handled per partition when choosing operator parallelism.
    rows_per_partition: float = 60_000.0
    #: Cap on any operator's partition count.
    max_partitions: int = 6_400
    #: Token counts users typically request (cluster defaults).
    default_token_choices: tuple[int, ...] = (
        25, 50, 100, 150, 200, 300, 600, 1500, 4000,
    )
    default_token_weights: tuple[float, ...] = (
        0.08, 0.20, 0.30, 0.15, 0.12, 0.08, 0.04, 0.02, 0.01,
    )
    #: Distribution of join-tree width (sampled uniformly, so repeats
    #: act as weights — matching the historical hard-coded choice list).
    num_inputs_choices: tuple[int, ...] = (1, 2, 2, 3, 3, 4, 5)
    #: Half-open range of per-input unary chain lengths.
    chain_length_range: tuple[int, int] = (0, 4)
    #: Half-open range of the post-processing block length.
    post_ops_range: tuple[int, int] = (1, 4)
    #: Operator-kind mixes (aligned with the module's kind catalogs).
    join_kind_weights: tuple[float, ...] = _JOIN_WEIGHTS
    source_kind_weights: tuple[float, ...] = _SOURCE_WEIGHTS
    chain_kind_weights: tuple[float, ...] = _CHAIN_WEIGHTS
    post_kind_weights: tuple[float, ...] = _POST_WEIGHTS

    def __post_init__(self) -> None:
        if not 0 <= self.recurring_fraction <= 1:
            raise PlanError("recurring_fraction must be in [0, 1]")
        if self.num_templates < 1:
            raise PlanError("need at least one template")
        if len(self.default_token_choices) != len(self.default_token_weights):
            raise PlanError("token choices and weights must align")
        if not self.num_inputs_choices or min(self.num_inputs_choices) < 1:
            raise PlanError("num_inputs_choices must be positive")
        for low, high, label in (
            (*self.chain_length_range, "chain_length_range"),
            (*self.post_ops_range, "post_ops_range"),
        ):
            if low < 0 or high <= low:
                raise PlanError(f"{label} must be a non-empty range")
        for weights, kinds, label in (
            (self.join_kind_weights, _JOIN_KINDS, "join"),
            (self.source_kind_weights, _SOURCE_KINDS, "source"),
            (self.chain_kind_weights, _CHAIN_KINDS, "chain"),
            (self.post_kind_weights, _POST_KINDS, "post"),
        ):
            if len(weights) != len(kinds):
                raise PlanError(
                    f"{label}_kind_weights must align with the "
                    f"{len(kinds)} {label} kinds"
                )
            if abs(sum(weights) - 1.0) > 1e-6:
                raise PlanError(f"{label}_kind_weights must sum to 1")


@dataclass
class JobInstance:
    """A generated job: its plan plus submission metadata."""

    plan: QueryPlan
    requested_tokens: int
    submit_day: int
    recurring: bool

    @property
    def job_id(self) -> str:
        return self.plan.job_id


@dataclass
class _TemplateSpec:
    """Frozen random choices defining a recurring template."""

    template_id: str
    num_inputs: int
    base_leaf_rows: tuple[float, ...]
    join_kinds: tuple[str, ...]
    chain_plan: tuple[tuple[str, ...], ...]  # unary chain per input
    post_ops: tuple[str, ...]
    structure_seed: int = 0
    requested_tokens: int = 100


def _streaming_config() -> WorkloadConfig:
    """Streaming / micro-batch jobs: tiny recurring DAGs, shallow plans.

    Models the user-facing job class of the Tracie replay generator:
    almost everything is an instance of a small recurring pipeline over
    a fresh micro-batch of input, with modest parallelism requests.
    """
    return WorkloadConfig(
        family="streaming",
        recurring_fraction=0.92,
        num_templates=12,
        leaf_rows_log_mean=11.0,  # median ~60K rows per micro-batch
        leaf_rows_log_sigma=0.9,
        recurring_drift_sigma=0.20,
        rows_per_partition=30_000.0,
        default_token_choices=(10, 25, 50, 100),
        default_token_weights=(0.35, 0.40, 0.20, 0.05),
        num_inputs_choices=(1, 1, 1, 2),
        chain_length_range=(1, 4),
        post_ops_range=(1, 3),
        # Aggregation-ending pipelines; almost no sorts.
        post_kind_weights=(0.35, 0.2, 0.15, 0.1, 0.05, 0.05, 0.05, 0.05),
    )


def _ml_training_config() -> WorkloadConfig:
    """ML-training pipelines: deep UDO-heavy chains, few joins.

    Long featurize/transform chains (ProcessUDO-dominated) feeding
    reduce/aggregate steps, with large token requests — the batch job
    class whose run time is compute- rather than shuffle-bound.
    """
    return WorkloadConfig(
        family="ml_training",
        recurring_fraction=0.70,
        num_templates=8,
        leaf_rows_log_mean=13.5,
        leaf_rows_log_sigma=1.2,
        recurring_drift_sigma=0.30,
        default_token_choices=(100, 200, 300, 600, 1500),
        default_token_weights=(0.25, 0.30, 0.25, 0.15, 0.05),
        num_inputs_choices=(1, 1, 2),
        chain_length_range=(4, 9),
        post_ops_range=(2, 5),
        # Chains dominated by UDO/compute steps ...
        chain_kind_weights=(0.1, 0.05, 0.15, 0.25, 0.45),
        # ... closing with reduce/window aggregation rather than sorts.
        post_kind_weights=(0.15, 0.05, 0.1, 0.2, 0.35, 0.05, 0.05, 0.05),
    )


def _etl_skew_config() -> WorkloadConfig:
    """Heavy-skew ETL: wide ad-hoc join fan-ins over skewed inputs.

    Leaf cardinalities span many orders of magnitude (hot partitions
    next to near-empty ones), producing the ragged skylines and
    straggler-prone stages the runtime-variation study stress-tests.
    """
    return WorkloadConfig(
        family="etl_skew",
        recurring_fraction=0.35,
        num_templates=20,
        leaf_rows_log_mean=15.0,
        leaf_rows_log_sigma=2.7,
        recurring_drift_sigma=0.55,
        estimation_error_sigma=0.5,
        num_inputs_choices=(2, 3, 3, 4, 5, 6),
        chain_length_range=(0, 3),
        post_ops_range=(1, 4),
        # Aggregate/sort-heavy tails after the join tree.
        post_kind_weights=(0.3, 0.1, 0.15, 0.05, 0.05, 0.2, 0.1, 0.05),
    )


#: Declarative workload families: scenario coverage as configuration.
WORKLOAD_FAMILIES = {
    "tpch": WorkloadConfig,
    "streaming": _streaming_config,
    "ml_training": _ml_training_config,
    "etl_skew": _etl_skew_config,
}

FAMILY_NAMES = tuple(sorted(WORKLOAD_FAMILIES))


def make_family_config(family: str) -> WorkloadConfig:
    """The :class:`WorkloadConfig` preset for a named workload family."""
    try:
        factory = WORKLOAD_FAMILIES[family]
    except KeyError:
        raise PlanError(
            f"unknown workload family {family!r}; "
            f"known: {', '.join(FAMILY_NAMES)}"
        ) from None
    return factory()


class WorkloadGenerator:
    """Seeded generator of :class:`JobInstance` populations.

    Determinism model: the shared template pool is drawn once at
    construction from the root seed, and every *job* derives its own RNG
    stream from ``SeedSequence((seed, job_index))`` where ``job_index``
    is the job's absolute position in this generator's lifetime. Job
    streams therefore depend only on the seed and the index — not on how
    jobs are batched across :meth:`generate` calls or worker processes —
    so ``generate(n, workers=8)`` is bit-identical to ``workers=1``.
    """

    def __init__(self, config: WorkloadConfig | None = None, seed: int = 0) -> None:
        self.config = config or WorkloadConfig()
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._templates = [
            self._draw_template(f"T{i:03d}")
            for i in range(self.config.num_templates)
        ]
        self._job_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(
        self, num_jobs: int, start_day: int = 0, workers: int = 1
    ) -> list[JobInstance]:
        """Generate a workload of ``num_jobs`` jobs.

        Jobs are spread uniformly over submission days starting at
        ``start_day`` (one "day" per ~1000 jobs, so small workloads land on
        a single day). ``workers > 1`` synthesises jobs across a process
        pool with identical output (see the class docstring).
        """
        if num_jobs < 1:
            raise PlanError("num_jobs must be positive")
        with trace.span("scope.generate_workload", jobs=num_jobs):
            base = self._job_counter
            num_days = max(1, num_jobs // 1000)
            tasks = [
                (base + i, start_day + (i * num_days) // num_jobs)
                for i in range(num_jobs)
            ]
            jobs = pmap(
                partial(_generate_indexed, generator=self),
                tasks,
                workers=workers,
            )
            self._job_counter = base + num_jobs
            if trace.enabled:
                get_registry().counter("scope_jobs_generated").increment(
                    num_jobs
                )
        return jobs

    def generate_job(self, submit_day: int = 0) -> JobInstance:
        """Generate a single job (recurring with configured probability)."""
        job = self._job_at_index(self._job_counter, submit_day)
        self._job_counter += 1
        return job

    def _job_at_index(self, index: int, submit_day: int) -> JobInstance:
        """The job at absolute position ``index`` — a pure function of
        ``(seed, index)``, so it may run in any process in any order."""
        rng = np.random.default_rng(
            np.random.SeedSequence((self._seed, index))
        )
        recurring = rng.random() < self.config.recurring_fraction
        if recurring:
            template = self._templates[
                int(rng.integers(len(self._templates)))
            ]
            return self._instantiate(
                template, submit_day, recurring=True, rng=rng, index=index
            )
        template = self._draw_template(f"A{index:06d}", rng=rng)
        return self._instantiate(
            template, submit_day, recurring=False, rng=rng, index=index
        )

    # ------------------------------------------------------------------
    # template construction
    # ------------------------------------------------------------------
    def _draw_template(
        self, template_id: str, rng: np.random.Generator | None = None
    ) -> _TemplateSpec:
        if rng is None:
            rng = self._rng
        cfg = self.config
        num_inputs = int(rng.choice(list(cfg.num_inputs_choices)))
        base_leaf_rows = tuple(
            float(
                np.exp(
                    rng.normal(cfg.leaf_rows_log_mean, cfg.leaf_rows_log_sigma)
                )
            )
            for _ in range(num_inputs)
        )
        join_kinds = tuple(
            str(rng.choice(_JOIN_KINDS, p=cfg.join_kind_weights))
            for _ in range(num_inputs - 1)
        )
        chains = []
        for _ in range(num_inputs):
            length = int(rng.integers(*cfg.chain_length_range))
            chains.append(
                tuple(
                    str(rng.choice(_CHAIN_KINDS, p=cfg.chain_kind_weights))
                    for _ in range(length)
                )
            )
        num_post = int(rng.integers(*cfg.post_ops_range))
        post_ops = tuple(
            str(rng.choice(_POST_KINDS, p=cfg.post_kind_weights))
            for _ in range(num_post)
        )
        tokens = int(
            rng.choice(cfg.default_token_choices, p=cfg.default_token_weights)
        )
        return _TemplateSpec(
            template_id=template_id,
            num_inputs=num_inputs,
            base_leaf_rows=base_leaf_rows,
            join_kinds=join_kinds,
            chain_plan=tuple(chains),
            post_ops=post_ops,
            structure_seed=int(rng.integers(0, 2**31)),
            requested_tokens=tokens,
        )

    # ------------------------------------------------------------------
    # template instantiation
    # ------------------------------------------------------------------
    def _instantiate(
        self,
        template: _TemplateSpec,
        submit_day: int,
        recurring: bool,
        rng: np.random.Generator,
        index: int,
    ) -> JobInstance:
        cfg = self.config
        job_id = f"job-{self._seed}-{index + 1:06d}"

        # Structural choices (operator variants, selectivities, widths) are
        # frozen per template so recurring instances share one plan shape;
        # only input sizes and estimation noise vary run to run.
        struct_rng = np.random.default_rng(template.structure_seed)
        builder = _PlanBuilder(struct_rng, rng, cfg)
        drift = (
            np.exp(rng.normal(0.0, cfg.recurring_drift_sigma))
            if recurring
            else 1.0
        )

        # One source + unary chain per input.
        input_heads = []
        for leaf_rows, chain in zip(template.base_leaf_rows, template.chain_plan):
            rows = max(1.0, leaf_rows * drift)
            node_id = builder.add_source(rows)
            for kind in chain:
                node_id = builder.add_unary(kind, node_id)
            input_heads.append(node_id)

        # Left-deep join tree with exchanges before each join.
        current = input_heads[0]
        for head, join_kind in zip(input_heads[1:], template.join_kinds):
            left = builder.add_exchange(current)
            right = builder.add_exchange(head)
            current = builder.add_binary(join_kind, left, right)

        # Post-processing block (aggregates/sorts/windows).
        for kind in template.post_ops:
            if kind in ("HashAggregate", "StreamAggregate", "Sort", "TopSort"):
                current = builder.add_exchange(current)
            current = builder.add_unary(kind, current)

        current = builder.add_unary("Output", current)

        plan = QueryPlan(
            job_id=job_id,
            nodes=builder.nodes,
            template_id=template.template_id,
        )
        return JobInstance(
            plan=plan,
            requested_tokens=template.requested_tokens,
            submit_day=submit_day,
            recurring=recurring,
        )


def _generate_indexed(
    task: tuple[int, int], generator: WorkloadGenerator
) -> JobInstance:
    """Top-level (hence picklable) pmap task: one ``(index, day)`` job."""
    index, submit_day = task
    return generator._job_at_index(index, submit_day)


class _PlanBuilder:
    """Incrementally builds operator nodes with propagated estimates.

    ``rng`` drives structural choices (frozen per template); ``noise_rng``
    drives per-instance estimation error.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        noise_rng: np.random.Generator,
        config: WorkloadConfig,
    ) -> None:
        self.rng = rng
        self.noise_rng = noise_rng
        self.config = config
        self.nodes: dict[int, OperatorNode] = {}
        self._next_id = 0

    # -- helpers ---------------------------------------------------------
    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    def _partitions_for(self, rows: float) -> int:
        cfg = self.config
        return int(
            np.clip(np.ceil(rows / cfg.rows_per_partition), 1, cfg.max_partitions)
        )

    def _estimation_noise(self) -> float:
        sigma = self.config.estimation_error_sigma
        if sigma <= 0:
            return 1.0
        return float(np.exp(self.noise_rng.normal(0.0, sigma)))

    def _finalize(self, node: OperatorNode) -> int:
        """Derive cost fields and register the node.

        True cost is computed from true input rows; the Table 1 estimate
        fields get multiplicative lognormal noise on top.
        """
        spec = node.spec
        if spec.arity == 0:
            work_rows = node.output_cardinality
            subtree_children = 0.0
        else:
            work_rows = node.children_input_cardinality
            subtree_children = sum(
                self.nodes[c].cost_subtree for c in node.children
            )
        row_factor = max(0.25, node.average_row_length / 100.0)
        true_cost = max(1.0, work_rows * spec.cost_per_row * row_factor)
        noise = self._estimation_noise()
        node.true_cost = true_cost
        node.cost_exclusive = true_cost * noise
        node.cost_subtree = node.cost_exclusive + subtree_children
        # "Total" mirrors SQL-Server-style total operator cost: exclusive
        # CPU plus an IO-ish term proportional to output bytes.
        node.cost_total = node.cost_exclusive + (
            node.output_cardinality * node.average_row_length * 1e-3
        )
        self.nodes[node.op_id] = node
        return node.op_id

    # -- node constructors -------------------------------------------------
    def add_source(self, rows: float) -> int:
        kind = str(
            self.rng.choice(_SOURCE_KINDS, p=self.config.source_kind_weights)
        )
        row_length = float(np.exp(self.rng.normal(4.6, 0.5)))  # ~100 bytes
        node = OperatorNode(
            op_id=self._new_id(),
            kind=kind,
            children=(),
            output_cardinality=rows,
            leaf_input_cardinality=rows,
            children_input_cardinality=0.0,
            average_row_length=row_length,
            num_partitions=self._partitions_for(rows),
        )
        return self._finalize(node)

    def add_unary(self, kind: str, child_id: int) -> int:
        child = self.nodes[child_id]
        spec_low, spec_high = child.spec.selectivity
        del spec_low, spec_high  # child's range is irrelevant here
        node = OperatorNode(
            op_id=self._new_id(),
            kind=kind,
            children=(child_id,),
            average_row_length=child.average_row_length,
            num_partitions=child.num_partitions,
        )
        low, high = node.spec.selectivity
        selectivity = float(self.rng.uniform(low, high))
        node.children_input_cardinality = child.output_cardinality
        node.leaf_input_cardinality = child.leaf_input_cardinality
        node.output_cardinality = max(1.0, child.output_cardinality * selectivity)
        if kind in ("Sort", "TopSort"):
            node.num_sort_columns = int(self.rng.integers(1, 4))
        if kind == "Project":
            node.average_row_length = child.average_row_length * float(
                self.rng.uniform(0.3, 0.9)
            )
        return self._finalize(node)

    def add_exchange(self, child_id: int) -> int:
        child = self.nodes[child_id]
        kind = str(
            self.rng.choice(
                ["PartitionExchange", "FullMergeExchange", "BroadcastExchange"],
                p=[0.7, 0.2, 0.1],
            )
        )
        method = {
            "PartitionExchange": PartitioningMethod.HASH,
            "FullMergeExchange": PartitioningMethod.RANGE,
            "BroadcastExchange": PartitioningMethod.BROADCAST,
        }[kind]
        if self.rng.random() < 0.15:
            method = PartitioningMethod.ROUND_ROBIN
        node = OperatorNode(
            op_id=self._new_id(),
            kind=kind,
            children=(child_id,),
            partitioning=method,
            output_cardinality=child.output_cardinality,
            leaf_input_cardinality=child.leaf_input_cardinality,
            children_input_cardinality=child.output_cardinality,
            average_row_length=child.average_row_length,
            num_partitions=self._partitions_for(child.output_cardinality),
            num_partitioning_columns=int(self.rng.integers(1, 4)),
        )
        return self._finalize(node)

    def add_binary(self, kind: str, left_id: int, right_id: int) -> int:
        left = self.nodes[left_id]
        right = self.nodes[right_id]
        node = OperatorNode(
            op_id=self._new_id(),
            kind=kind,
            children=(left_id, right_id),
            average_row_length=(left.average_row_length + right.average_row_length)
            / 2.0,
            num_partitions=max(left.num_partitions, right.num_partitions),
            num_partitioning_columns=int(self.rng.integers(1, 3)),
        )
        low, high = node.spec.selectivity
        selectivity = float(self.rng.uniform(low, high))
        node.children_input_cardinality = (
            left.output_cardinality + right.output_cardinality
        )
        node.leaf_input_cardinality = (
            left.leaf_input_cardinality + right.leaf_input_cardinality
        )
        if kind == "UnionAll":
            node.output_cardinality = node.children_input_cardinality
        else:
            node.output_cardinality = max(
                1.0,
                max(left.output_cardinality, right.output_cardinality)
                * selectivity,
            )
        if kind == "MergeJoin":
            node.num_sort_columns = int(self.rng.integers(1, 3))
        return self._finalize(node)
