"""Discrete-event cluster executor.

This module stands in for the Cosmos cluster: it "runs" a job — i.e. a
:class:`~repro.scope.stages.StageGraph` — with a given token allocation and
produces the job's run time and its per-second resource skyline. Together
with the workload generator it replaces the proprietary production traces
the paper trains on, and it provides the re-execution ("flighting")
capability used for ground-truth PCCs.

Model:

* a token is a container that executes exactly one task at a time,
* a stage becomes *ready* when all stages it depends on have finished,
* tasks of ready stages are started greedily, FIFO over stage topological
  order, whenever a token is free,
* task durations are the stage's nominal duration times an optional
  lognormal jitter plus a straggler tail, so repeated executions differ
  (which is what the paper's flight-anomaly filters react to).

The simulation is event-driven (a heap of task completions), and the
skyline is recovered exactly by integrating the tasks-running step function
over one-second bins.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExecutionError
from repro.obs import get_registry, trace
from repro.scope.stages import CostModel, StageGraph
from repro.skyline.skyline import Skyline

__all__ = ["ExecutionResult", "ClusterExecutor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated job execution."""

    job_id: str
    tokens: int
    skyline: Skyline
    makespan: float
    stage_finish_times: dict[int, float]

    @property
    def runtime(self) -> int:
        """Run time in whole seconds (the skyline's duration)."""
        return self.skyline.duration


class ClusterExecutor:
    """Executes stage graphs on a simulated token pool.

    Parameters
    ----------
    cost_model:
        Conversion from plan cost units to task seconds.
    noise_scale:
        Sigma of the lognormal per-task duration jitter. Zero gives a
        fully deterministic execution.
    straggler_rate, straggler_factor:
        Probability that a task is a straggler and the factor by which its
        duration is multiplied. Stragglers make skylines ragged and are a
        major source of run-to-run variance on real clusters.
    work_noise:
        Sigma of a lognormal *per-execution* factor applied to every task
        duration. Per-task jitter averages out over many tasks; this
        global factor models day-to-day cluster conditions (data drift,
        contention) and is what makes total token-seconds vary between
        re-executions of the same job — the variance the paper's
        area-conservation analysis (Figure 12) measures.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        noise_scale: float = 0.0,
        straggler_rate: float = 0.0,
        straggler_factor: float = 3.0,
        work_noise: float = 0.0,
    ) -> None:
        if noise_scale < 0:
            raise ExecutionError("noise scale must be non-negative")
        if not 0 <= straggler_rate < 1:
            raise ExecutionError("straggler rate must be in [0, 1)")
        if straggler_factor < 1:
            raise ExecutionError("straggler factor must be >= 1")
        if work_noise < 0:
            raise ExecutionError("work noise must be non-negative")
        self.cost_model = cost_model or CostModel()
        self.noise_scale = noise_scale
        self.straggler_rate = straggler_rate
        self.straggler_factor = straggler_factor
        self.work_noise = work_noise

    # ------------------------------------------------------------------
    def execute(
        self,
        graph: StageGraph,
        tokens: int,
        rng: np.random.Generator | None = None,
    ) -> ExecutionResult:
        """Run ``graph`` with ``tokens`` guaranteed tokens.

        Raises
        ------
        ExecutionError
            If the token count is not a positive integer.
        """
        if tokens < 1:
            raise ExecutionError("token allocation must be at least 1")
        noisy = (
            self.noise_scale > 0
            or self.straggler_rate > 0
            or self.work_noise > 0
        )
        if noisy and rng is None:
            raise ExecutionError("an rng is required when noise is enabled")
        with trace.span(
            "scope.execute_job", job=graph.job_id, tokens=tokens
        ) as span:
            result = self._execute(graph, tokens, rng)
            span.set("makespan_s", round(result.makespan, 3))
            span.set("stages", len(graph.stages))
        return result

    def _execute(
        self,
        graph: StageGraph,
        tokens: int,
        rng: np.random.Generator | None,
    ) -> ExecutionResult:
        durations = self._draw_durations(graph, rng)

        pending_deps = {
            sid: len(stage.dependencies) for sid, stage in graph.stages.items()
        }
        dependents: dict[int, list[int]] = {sid: [] for sid in graph.stages}
        for sid, stage in graph.stages.items():
            for dep in stage.dependencies:
                dependents[dep].append(sid)

        remaining_tasks = {
            sid: stage.num_tasks for sid, stage in graph.stages.items()
        }
        next_task_index = {sid: 0 for sid in graph.stages}

        # FIFO queue of ready stages, in topological order for determinism.
        ready: deque[int] = deque(
            sid for sid in graph.topological_order() if pending_deps[sid] == 0
        )

        free_tokens = tokens
        clock = 0.0
        # (finish_time, sequence, stage_id) — sequence breaks ties stably.
        running: list[tuple[float, int, int]] = []
        sequence = 0
        intervals_start: list[float] = []
        intervals_end: list[float] = []
        stage_finish: dict[int, float] = {}
        stage_start: dict[int, float] = {}

        def start_tasks() -> None:
            nonlocal free_tokens, sequence
            while free_tokens > 0 and ready:
                sid = ready[0]
                index = next_task_index[sid]
                duration = durations[sid][index]
                if index == 0:
                    stage_start[sid] = clock
                next_task_index[sid] += 1
                if next_task_index[sid] == graph.stages[sid].num_tasks:
                    ready.popleft()
                heapq.heappush(running, (clock + duration, sequence, sid))
                sequence += 1
                intervals_start.append(clock)
                intervals_end.append(clock + duration)
                free_tokens -= 1

        start_tasks()
        if not running:
            raise ExecutionError(f"job {graph.job_id} has no runnable tasks")

        while running:
            finish_time, _seq, sid = heapq.heappop(running)
            clock = finish_time
            free_tokens += 1
            remaining_tasks[sid] -= 1
            if remaining_tasks[sid] == 0:
                stage_finish[sid] = clock
                for dependent in dependents[sid]:
                    pending_deps[dependent] -= 1
                    if pending_deps[dependent] == 0:
                        ready.append(dependent)
            start_tasks()

        makespan = clock
        if trace.enabled:
            # Per-stage spans live on the simulated-time track (the
            # executor's clock is virtual seconds, not wall time), and
            # event/task totals go to the process-wide registry.
            for sid, finish in stage_finish.items():
                trace.record_span(
                    "scope.stage",
                    stage_start.get(sid, 0.0),
                    finish,
                    virtual=True,
                    job=graph.job_id,
                    stage=sid,
                    tasks=graph.stages[sid].num_tasks,
                )
            registry = get_registry()
            registry.counter("scope_jobs_executed").increment()
            registry.counter("scope_events_processed").increment(sequence)
            registry.counter("scope_stages_completed").increment(
                len(stage_finish)
            )
        skyline = _intervals_to_skyline(
            np.asarray(intervals_start), np.asarray(intervals_end), makespan
        )
        return ExecutionResult(
            job_id=graph.job_id,
            tokens=tokens,
            skyline=skyline,
            makespan=makespan,
            stage_finish_times=stage_finish,
        )

    # ------------------------------------------------------------------
    def _draw_durations(
        self, graph: StageGraph, rng: np.random.Generator | None
    ) -> dict[int, np.ndarray]:
        """Per-task durations for every stage (with jitter/stragglers)."""
        durations: dict[int, np.ndarray] = {}
        execution_factor = 1.0
        if self.work_noise > 0:
            assert rng is not None
            execution_factor = float(rng.lognormal(0.0, self.work_noise))
        for sid, stage in graph.stages.items():
            nominal = stage.task_duration(self.cost_model)
            values = np.full(stage.num_tasks, nominal)
            if self.noise_scale > 0:
                assert rng is not None
                values = values * rng.lognormal(
                    0.0, self.noise_scale, stage.num_tasks
                )
            if self.straggler_rate > 0:
                assert rng is not None
                stragglers = rng.random(stage.num_tasks) < self.straggler_rate
                values = np.where(
                    stragglers, values * self.straggler_factor, values
                )
            durations[sid] = values * execution_factor
        return durations


def _intervals_to_skyline(
    starts: np.ndarray, ends: np.ndarray, makespan: float
) -> Skyline:
    """Exact average token usage per one-second bin.

    The number of running tasks is a step function changing only at task
    starts/ends; integrating it over each second gives the (possibly
    fractional) average usage, which is the discretized skyline.
    """
    duration = max(1, int(np.ceil(makespan - 1e-9)))
    events = np.concatenate([starts, ends])
    deltas = np.concatenate(
        [np.ones_like(starts), -np.ones_like(ends)]
    )
    order = np.argsort(events, kind="stable")
    times = events[order]
    counts = np.cumsum(deltas[order])

    # Piecewise-constant usage: level counts[i] on [times[i], times[i+1]).
    boundaries = np.concatenate([[0.0], times, [float(duration)]])
    levels = np.concatenate([[0.0], counts])
    widths = np.diff(boundaries)
    # Cumulative integral of usage at each boundary.
    integral = np.concatenate([[0.0], np.cumsum(levels * widths)])

    # Integral evaluated at whole seconds via interpolation on the
    # cumulative curve (piecewise linear in between boundaries).
    seconds = np.arange(duration + 1, dtype=np.float64)
    cumulative = np.interp(seconds, boundaries, integral)
    usage = np.diff(cumulative)
    usage = np.clip(usage, 0.0, None)
    return Skyline(usage)
