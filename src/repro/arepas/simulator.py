"""AREPAS: the Area Preserving Allocation Simulator (Section 3.2).

Given a job's observed resource-consumption skyline, AREPAS synthesises the
skyline the same job would have produced under a different (lower) token
allocation, under the core assumption that the *total work* — the area
under the skyline in token-seconds — stays constant.

Algorithm 1 from the paper:

1. Split the skyline into maximal contiguous sections that are entirely
   over or entirely at-or-under the new allocation threshold.
2. Sections at-or-under the threshold are copied unchanged (Figure 6).
3. Sections over the threshold are flattened to the threshold and
   lengthened so their area is preserved (Figure 7), pushing the rest of
   the skyline later and increasing the run time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.skyline.sections import split_sections
from repro.skyline.skyline import Skyline

__all__ = ["SimulationResult", "AREPAS", "simulate_skyline", "simulate_runtime"]


@dataclass(frozen=True)
class SimulationResult:
    """Output of one AREPAS simulation.

    Attributes
    ----------
    skyline:
        The simulated skyline at the new allocation.
    allocation:
        The token threshold that was simulated.
    original_runtime, simulated_runtime:
        Run times (seconds) before and after the simulation.
    sections_copied, sections_redistributed:
        How many sections were copied unchanged versus stretched.
    """

    skyline: Skyline
    allocation: float
    original_runtime: int
    simulated_runtime: int
    sections_copied: int
    sections_redistributed: int

    @property
    def slowdown(self) -> float:
        """``new_runtime / old_runtime - 1`` (the paper's slowdown metric)."""
        return self.simulated_runtime / self.original_runtime - 1.0


class AREPAS:
    """Area-preserving skyline simulator.

    Parameters
    ----------
    preserve_area_exactly:
        When True (default), the last second of a stretched section carries
        the remainder so the redistributed area matches the original area
        exactly. When False, the section length is the paper's
        ``int(area / threshold)`` right-nearest integer approximation,
        which can drop up to one threshold-second of area per section.
    """

    def __init__(self, preserve_area_exactly: bool = True) -> None:
        self.preserve_area_exactly = preserve_area_exactly

    def simulate(self, skyline: Skyline, allocation: float) -> SimulationResult:
        """Simulate ``skyline`` under a new token ``allocation``.

        Raises
        ------
        SimulationError
            If the allocation is not positive. Allocations at or above the
            peak return the skyline unchanged (nothing is cut off).
        """
        if allocation <= 0:
            raise SimulationError("simulated allocation must be positive")

        if allocation >= skyline.peak:
            return SimulationResult(
                skyline=skyline,
                allocation=float(allocation),
                original_runtime=skyline.duration,
                simulated_runtime=skyline.duration,
                sections_copied=1,
                sections_redistributed=0,
            )

        pieces: list[np.ndarray] = []
        copied = 0
        redistributed = 0
        for section in split_sections(skyline, allocation):
            if section.over:
                pieces.append(self._stretch(section.usage, allocation))
                redistributed += 1
            else:
                pieces.append(section.usage)
                copied += 1

        simulated = Skyline(np.concatenate(pieces))
        return SimulationResult(
            skyline=simulated,
            allocation=float(allocation),
            original_runtime=skyline.duration,
            simulated_runtime=simulated.duration,
            sections_copied=copied,
            sections_redistributed=redistributed,
        )

    def runtime(self, skyline: Skyline, allocation: float) -> int:
        """Simulated run time (seconds) at ``allocation``."""
        return self.simulate(skyline, allocation).simulated_runtime

    def sweep(
        self, skyline: Skyline, allocations: np.ndarray | list[float]
    ) -> list[SimulationResult]:
        """Simulate the skyline at each allocation in ``allocations``."""
        return [self.simulate(skyline, float(a)) for a in allocations]

    def _stretch(self, usage: np.ndarray, threshold: float) -> np.ndarray:
        """Flatten an over-threshold section to ``threshold`` tokens.

        The section's area is spread over ``ceil(area / threshold)`` (or the
        paper's ``int`` truncation) seconds at the threshold height; with
        exact preservation the final second carries the remainder.
        """
        area = float(usage.sum())
        if self.preserve_area_exactly:
            full_seconds = int(area // threshold)
            remainder = area - full_seconds * threshold
            stretched = np.full(full_seconds, float(threshold))
            if remainder > 1e-9:
                stretched = np.append(stretched, remainder)
            if stretched.size == 0:
                # Degenerate: section area below one threshold-second.
                stretched = np.array([area])
            return stretched
        length = max(1, int(area / threshold))
        return np.full(length, float(threshold))


_DEFAULT = AREPAS()


def simulate_skyline(skyline: Skyline, allocation: float) -> Skyline:
    """Module-level convenience: simulated skyline at ``allocation``."""
    return _DEFAULT.simulate(skyline, allocation).skyline


def simulate_runtime(skyline: Skyline, allocation: float) -> int:
    """Module-level convenience: simulated run time at ``allocation``."""
    return _DEFAULT.runtime(skyline, allocation)
