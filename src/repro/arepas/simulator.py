"""AREPAS: the Area Preserving Allocation Simulator (Section 3.2).

Given a job's observed resource-consumption skyline, AREPAS synthesises the
skyline the same job would have produced under a different (lower) token
allocation, under the core assumption that the *total work* — the area
under the skyline in token-seconds — stays constant.

Algorithm 1 from the paper:

1. Split the skyline into maximal contiguous sections that are entirely
   over or entirely at-or-under the new allocation threshold.
2. Sections at-or-under the threshold are copied unchanged (Figure 6).
3. Sections over the threshold are flattened to the threshold and
   lengthened so their area is preserved (Figure 7), pushing the rest of
   the skyline later and increasing the run time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.skyline.sections import split_sections
from repro.skyline.skyline import Skyline

__all__ = [
    "SimulationResult",
    "AREPAS",
    "simulate_skyline",
    "simulate_runtime",
    "sweep_runtimes",
]


@dataclass(frozen=True)
class SimulationResult:
    """Output of one AREPAS simulation.

    Attributes
    ----------
    skyline:
        The simulated skyline at the new allocation.
    allocation:
        The token threshold that was simulated.
    original_runtime, simulated_runtime:
        Run times (seconds) before and after the simulation.
    sections_copied, sections_redistributed:
        How many sections were copied unchanged versus stretched.
    """

    skyline: Skyline
    allocation: float
    original_runtime: int
    simulated_runtime: int
    sections_copied: int
    sections_redistributed: int

    @property
    def slowdown(self) -> float:
        """``new_runtime / old_runtime - 1`` (the paper's slowdown metric)."""
        return self.simulated_runtime / self.original_runtime - 1.0


class AREPAS:
    """Area-preserving skyline simulator.

    Parameters
    ----------
    preserve_area_exactly:
        When True (default), the last second of a stretched section carries
        the remainder so the redistributed area matches the original area
        exactly. When False, the section length is the paper's
        ``int(area / threshold)`` right-nearest integer approximation,
        which can drop up to one threshold-second of area per section.
    """

    def __init__(self, preserve_area_exactly: bool = True) -> None:
        self.preserve_area_exactly = preserve_area_exactly

    def simulate(self, skyline: Skyline, allocation: float) -> SimulationResult:
        """Simulate ``skyline`` under a new token ``allocation``.

        Raises
        ------
        SimulationError
            If the allocation is not positive. Allocations at or above the
            peak return the skyline unchanged (nothing is cut off).
        """
        if allocation <= 0:
            raise SimulationError("simulated allocation must be positive")

        if allocation >= skyline.peak:
            return SimulationResult(
                skyline=skyline,
                allocation=float(allocation),
                original_runtime=skyline.duration,
                simulated_runtime=skyline.duration,
                sections_copied=1,
                sections_redistributed=0,
            )

        # Section areas come from the skyline-level prefix sum — the same
        # arithmetic (and hence the same floating-point rounding) the
        # vectorized sweep kernel uses, keeping both paths bit-identical
        # even when area / threshold lands exactly on an integer (e.g.
        # thresholds derived as fractions of the peak).
        prefix = np.concatenate([[0.0], np.cumsum(skyline.usage)])
        pieces: list[np.ndarray] = []
        copied = 0
        redistributed = 0
        for section in split_sections(skyline, allocation):
            if section.over:
                area = float(prefix[section.end] - prefix[section.start])
                pieces.append(self._stretch(section.usage, allocation, area))
                redistributed += 1
            else:
                pieces.append(section.usage)
                copied += 1

        simulated = Skyline(np.concatenate(pieces))
        return SimulationResult(
            skyline=simulated,
            allocation=float(allocation),
            original_runtime=skyline.duration,
            simulated_runtime=simulated.duration,
            sections_copied=copied,
            sections_redistributed=redistributed,
        )

    def runtime(self, skyline: Skyline, allocation: float) -> int:
        """Simulated run time (seconds) at ``allocation``.

        Computed with the vectorized sweep kernel, which skips
        materializing the simulated skyline entirely — run-time-only
        callers (PCC target fitting, point augmentation, the what-if
        search) never pay for the stretched arrays.
        """
        if allocation <= 0:
            raise SimulationError("simulated allocation must be positive")
        return int(self.sweep_runtimes(skyline, [float(allocation)])[0])

    def sweep(
        self, skyline: Skyline, allocations: np.ndarray | list[float]
    ) -> list[SimulationResult]:
        """Simulate the skyline at each allocation in ``allocations``.

        Materializes a full :class:`SimulationResult` (including the
        simulated skyline) per allocation; use :meth:`sweep_runtimes`
        when only the run times are needed.
        """
        return [self.simulate(skyline, float(a)) for a in allocations]

    def sweep_runtimes(
        self, skyline: Skyline, allocations: np.ndarray | list[float]
    ) -> np.ndarray:
        """Simulated run times at every allocation, in one vectorized pass.

        The kernel behind the AREPAS sweep hot path. Algorithm 1 only
        needs section *areas* and *lengths* to produce a run time, and
        both fall out of prefix sums, so no per-allocation skyline is
        ever built:

        * the usage prefix sum is computed once per skyline;
        * a ``(grid, seconds)`` over-threshold mask yields every
          over-section's ``[start, end)`` via its edge transitions, and
          the prefix sum turns those into section areas with two gathers;
        * an over-section of area ``A`` stretched to threshold ``T``
          contributes ``floor(A / T)`` full seconds plus one remainder
          second when ``A`` is not a multiple of ``T`` (the paper's
          ``int(A / T)`` truncation when area preservation is off);
        * everything at or under the threshold is copied verbatim, so it
          contributes its original length — the complement of the mask.

        Hence ``runtime(T) = (duration - |over seconds|) + sum of
        stretched section lengths``, evaluated for the whole grid with
        array ops only. Results are point-for-point identical to
        ``simulate(...).simulated_runtime`` (property-tested).

        Raises
        ------
        SimulationError
            If any allocation is not positive.
        """
        grid = np.atleast_1d(np.asarray(allocations, dtype=float))
        if grid.ndim != 1:
            raise SimulationError("allocations must be a 1-D grid")
        if grid.size == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any(grid <= 0):
            raise SimulationError("simulated allocation must be positive")

        usage = skyline.usage
        duration = skyline.duration
        runtimes = np.full(grid.size, duration, dtype=np.int64)
        below_peak = grid < skyline.peak
        if not below_peak.any():
            # Allocations at/above the peak cut nothing off (identity).
            return runtimes

        thresholds = grid[below_peak]
        prefix = np.concatenate([[0.0], np.cumsum(usage)])

        # Bound the boolean mask's footprint on very long skylines by
        # processing the grid in row blocks.
        block_rows = max(1, int(8_000_000 // max(1, usage.size)))
        totals = np.empty(thresholds.size, dtype=np.int64)
        for start in range(0, thresholds.size, block_rows):
            block = thresholds[start : start + block_rows]
            totals[start : start + block_rows] = self._sweep_block(
                usage, prefix, block, duration
            )
        runtimes[below_peak] = totals
        return runtimes

    def _sweep_block(
        self,
        usage: np.ndarray,
        prefix: np.ndarray,
        thresholds: np.ndarray,
        duration: int,
    ) -> np.ndarray:
        """Run times for one block of below-peak thresholds."""
        over = usage[None, :] > thresholds[:, None]  # (rows, seconds)
        pad = np.zeros((thresholds.size, 1), dtype=bool)
        starts = over & ~np.concatenate([pad, over[:, :-1]], axis=1)
        ends = over & ~np.concatenate([over[:, 1:], pad], axis=1)

        # Per row, start/end columns are sorted and pair up one-to-one,
        # so flattening keeps sections aligned with their rows.
        row_idx, start_col = np.nonzero(starts)
        _, end_col = np.nonzero(ends)
        areas = prefix[end_col + 1] - prefix[start_col]
        section_thresholds = thresholds[row_idx]
        if self.preserve_area_exactly:
            full_seconds = np.floor_divide(areas, section_thresholds)
            remainders = areas - full_seconds * section_thresholds
            lengths = full_seconds + (remainders > 1e-9)
        else:
            # int() truncation; over-sections always have area > T, so
            # the max(1, ...) degenerate guard never binds.
            lengths = np.trunc(areas / section_thresholds)
        stretched = np.bincount(
            row_idx, weights=lengths, minlength=thresholds.size
        )
        copied_seconds = duration - over.sum(axis=1)
        return (copied_seconds + stretched).astype(np.int64)

    def _stretch(
        self, usage: np.ndarray, threshold: float, area: float | None = None
    ) -> np.ndarray:
        """Flatten an over-threshold section to ``threshold`` tokens.

        The section's area is spread over ``ceil(area / threshold)`` (or the
        paper's ``int`` truncation) seconds at the threshold height; with
        exact preservation the final second carries the remainder. Callers
        may pass a precomputed ``area`` (prefix-sum based) so the scalar
        and vectorized paths share identical rounding.
        """
        if area is None:
            area = float(usage.sum())
        if self.preserve_area_exactly:
            full_seconds = int(area // threshold)
            remainder = area - full_seconds * threshold
            stretched = np.full(full_seconds, float(threshold))
            if remainder > 1e-9:
                stretched = np.append(stretched, remainder)
            if stretched.size == 0:
                # Degenerate: section area below one threshold-second.
                stretched = np.array([area])
            return stretched
        length = max(1, int(area / threshold))
        return np.full(length, float(threshold))


_DEFAULT = AREPAS()


def simulate_skyline(skyline: Skyline, allocation: float) -> Skyline:
    """Module-level convenience: simulated skyline at ``allocation``."""
    return _DEFAULT.simulate(skyline, allocation).skyline


def simulate_runtime(skyline: Skyline, allocation: float) -> int:
    """Module-level convenience: simulated run time at ``allocation``."""
    return _DEFAULT.runtime(skyline, allocation)


def sweep_runtimes(
    skyline: Skyline, allocations: np.ndarray | list[float]
) -> np.ndarray:
    """Module-level convenience: vectorized run-time sweep over a grid."""
    return _DEFAULT.sweep_runtimes(skyline, allocations)
