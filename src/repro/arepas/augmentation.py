"""Training-data augmentation with AREPAS (Sections 3 and 4.4).

Historical telemetry records each job at a single token count. To learn the
run-time-versus-tokens relationship, TASQ synthesises additional
observations with AREPAS:

* For the NN/GNN trend models, a *sweep* of simulated run times over a
  token grid is produced and a power-law PCC is fitted to it (the fitted
  parameters become the training targets).
* For the XGBoost point model, discrete extra observations are generated at
  80% and 60% of the observed token count and — for over-allocated jobs —
  at 120% and 140% of the *peak* usage with the run time floored at the
  peak-allocation run time (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arepas.simulator import AREPAS
from repro.exceptions import SimulationError
from repro.skyline.skyline import Skyline

__all__ = [
    "AugmentedObservation",
    "augment_point_observations",
    "sweep_token_grid",
    "default_token_grid",
]


@dataclass(frozen=True)
class AugmentedObservation:
    """One (token count, run time) sample attached to a job.

    ``source`` distinguishes the actually observed sample (``"observed"``)
    from AREPAS-synthesised ones (``"simulated"``); the loss functions in
    Section 4.5 treat observed samples as first-class ground truth.
    """

    tokens: float
    runtime: float
    source: str = "simulated"

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise SimulationError("augmented token count must be positive")
        if self.runtime <= 0:
            raise SimulationError("augmented run time must be positive")


def augment_point_observations(
    skyline: Skyline,
    observed_tokens: float,
    under_fractions: tuple[float, ...] = (0.8, 0.6),
    over_fractions: tuple[float, ...] = (1.2, 1.4),
    simulator: AREPAS | None = None,
) -> list[AugmentedObservation]:
    """Generate the discrete XGBoost augmentation of Section 4.4.

    Parameters
    ----------
    skyline:
        The job's observed skyline at ``observed_tokens``.
    observed_tokens:
        The allocation the job actually ran with.
    under_fractions:
        Fractions of the observed allocation to simulate below it.
    over_fractions:
        Fractions of the *peak* usage to add above it for over-allocated
        jobs; their run time is floored at the peak-allocation run time
        (adding tokens beyond the peak cannot speed the job up).

    Returns
    -------
    list of :class:`AugmentedObservation`
        The observed sample first, then the synthetic ones.
    """
    if observed_tokens <= 0:
        raise SimulationError("observed token count must be positive")
    sim = simulator or AREPAS()

    # One kernel call covers every simulated allocation: the under-observed
    # fractions plus (for over-allocated jobs) the peak itself.
    under_tokens = [max(1.0, f * observed_tokens) for f in under_fractions]
    peak = skyline.peak
    over_allocated = observed_tokens > peak and peak > 0
    allocations = under_tokens + ([peak] if over_allocated else [])
    runtimes = (
        sim.sweep_runtimes(skyline, allocations) if allocations else []
    )

    observations = [
        AugmentedObservation(
            tokens=float(observed_tokens),
            runtime=float(skyline.duration),
            source="observed",
        )
    ]
    for tokens, runtime in zip(under_tokens, runtimes):
        observations.append(
            AugmentedObservation(tokens=tokens, runtime=float(runtime))
        )
    if over_allocated:
        # Over-allocated job: more tokens than the peak cannot help, so the
        # run time at/beyond the peak is the peak-allocation run time.
        peak_runtime = float(runtimes[-1])
        for fraction in over_fractions:
            observations.append(
                AugmentedObservation(tokens=fraction * peak, runtime=peak_runtime)
            )
    return observations


def default_token_grid(
    reference_tokens: float,
    num_points: int = 8,
    low_fraction: float = 0.2,
    high_fraction: float = 1.0,
) -> np.ndarray:
    """A geometric token grid below the reference allocation.

    The PCC is of interest *under* the observed allocation (that is where
    savings live), so the default grid spans ``low_fraction`` to
    ``high_fraction`` of the reference geometrically — matching the
    paper's flighting levels of 20%-100%.
    """
    if reference_tokens <= 0:
        raise SimulationError("reference token count must be positive")
    if num_points < 2:
        raise SimulationError("token grid needs at least two points")
    if not 0 < low_fraction < high_fraction:
        raise SimulationError("fractions must satisfy 0 < low < high")
    grid = reference_tokens * np.geomspace(low_fraction, high_fraction, num_points)
    return np.maximum(1.0, grid)


def sweep_token_grid(
    skyline: Skyline,
    grid: np.ndarray,
    observed_tokens: float | None = None,
    simulator: AREPAS | None = None,
) -> list[AugmentedObservation]:
    """Simulate a job's run time at every token count in ``grid``.

    When ``observed_tokens`` lies on the grid (within 0.5 tokens), that
    point is marked ``"observed"`` and takes the true duration instead of
    the simulated one.
    """
    sim = simulator or AREPAS()
    grid = np.asarray(grid, dtype=float)
    runtimes = sim.sweep_runtimes(skyline, grid)
    observations = []
    for tokens, runtime in zip(grid, runtimes):
        if observed_tokens is not None and abs(tokens - observed_tokens) < 0.5:
            observations.append(
                AugmentedObservation(
                    tokens=float(tokens),
                    runtime=float(skyline.duration),
                    source="observed",
                )
            )
        else:
            observations.append(
                AugmentedObservation(tokens=float(tokens), runtime=float(runtime))
            )
    return observations
