"""Validation of AREPAS against re-executed (flighted) jobs (Section 5.2).

Two questions are answered here, matching Figures 12-13 and Table 3:

1. **Does the area-preservation assumption hold?** For each job flighted at
   several token counts, compare the skyline areas of every execution pair;
   a pair *matches* when the percentage difference is within a tolerance.
   Figure 12 reports the CDF of matches over tolerance and the number of
   per-job outlier executions.

2. **How accurate are AREPAS run-time estimates?** Simulate each job from
   its reference execution down to the other flighted allocations and
   compare against the re-executed run times; Table 3 / Figure 13 report
   median and mean absolute percentage error.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.arepas.simulator import AREPAS
from repro.exceptions import SimulationError
from repro.skyline.skyline import Skyline

__all__ = [
    "area_pair_differences",
    "match_fraction_curve",
    "count_outlier_executions",
    "JobSimulationError",
    "simulation_errors",
    "error_summary",
]


def area_pair_differences(skylines: list[Skyline]) -> list[float]:
    """Pairwise percentage area differences between executions of one job.

    For ``n`` executions this yields ``C(n, 2)`` values; each is
    ``|area_i - area_j| / min(area_i, area_j)`` expressed in percent, so a
    value of 30 means one execution used 30% more token-seconds than the
    other.
    """
    if len(skylines) < 2:
        raise SimulationError("need at least two executions to compare areas")
    areas = [s.area for s in skylines]
    if min(areas) <= 0:
        raise SimulationError("executions must have positive area")
    return [
        abs(a - b) / min(a, b) * 100.0 for a, b in combinations(areas, 2)
    ]


def match_fraction_curve(
    per_job_skylines: list[list[Skyline]], tolerances: np.ndarray
) -> np.ndarray:
    """Fraction of execution pairs matching within each tolerance (Fig. 12 top).

    Parameters
    ----------
    per_job_skylines:
        One list of executed skylines per job.
    tolerances:
        Percentage tolerances at which to evaluate the CDF.

    Returns
    -------
    numpy.ndarray
        ``fraction_matching[i]`` = share of all execution pairs whose area
        difference is at most ``tolerances[i]`` percent.
    """
    diffs: list[float] = []
    for skylines in per_job_skylines:
        if len(skylines) >= 2:
            diffs.extend(area_pair_differences(skylines))
    if not diffs:
        raise SimulationError("no comparable execution pairs")
    diff_arr = np.asarray(diffs)
    tolerances = np.asarray(tolerances, dtype=float)
    return np.array([(diff_arr <= t).mean() for t in tolerances])


def count_outlier_executions(skylines: list[Skyline], tolerance: float) -> int:
    """Number of executions that disagree with the rest of their job.

    An execution is an *outlier* if its area differs by more than
    ``tolerance`` percent from the median area of the job's executions.
    Figure 12 (bottom) histograms this count per job for several
    tolerances.
    """
    if tolerance <= 0:
        raise SimulationError("tolerance must be positive")
    if len(skylines) < 2:
        return 0
    areas = np.array([s.area for s in skylines])
    median = float(np.median(areas))
    if median <= 0:
        raise SimulationError("executions must have positive area")
    deviations = np.abs(areas - median) / median * 100.0
    return int(np.count_nonzero(deviations > tolerance))


@dataclass(frozen=True)
class JobSimulationError:
    """AREPAS accuracy for one job across its flighted allocations."""

    job_id: str
    percent_errors: tuple[float, ...]

    @property
    def median_error(self) -> float:
        """Median absolute percentage error over the job's flights."""
        return float(np.median(self.percent_errors))

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.percent_errors))


def simulation_errors(
    flights: list[tuple[str, Skyline, float, list[tuple[float, float]]]],
    simulator: AREPAS | None = None,
) -> list[JobSimulationError]:
    """Per-job AREPAS run-time errors against ground-truth re-executions.

    Parameters
    ----------
    flights:
        One entry per job:
        ``(job_id, reference_skyline, reference_tokens, targets)`` where
        ``targets`` is a list of ``(tokens, true_runtime)`` pairs from
        re-executions at other allocations.
    """
    sim = simulator or AREPAS()
    results = []
    for job_id, reference, reference_tokens, targets in flights:
        if reference_tokens <= 0:
            raise SimulationError("reference token count must be positive")
        errors = []
        for tokens, true_runtime in targets:
            if true_runtime <= 0:
                raise SimulationError("true run time must be positive")
            predicted = sim.runtime(reference, tokens)
            errors.append(abs(predicted - true_runtime) / true_runtime * 100.0)
        if errors:
            results.append(
                JobSimulationError(job_id=job_id, percent_errors=tuple(errors))
            )
    return results


def error_summary(errors: list[JobSimulationError]) -> dict[str, float]:
    """Aggregate per-job errors into the Table 3 summary statistics.

    ``median_ape`` and ``mean_ape`` aggregate each job's *median* error, as
    the paper does ("per-job median percent error", Figure 13); ``worst``
    is the largest per-job median error.
    """
    if not errors:
        raise SimulationError("no simulation errors to summarise")
    per_job = np.array([e.median_error for e in errors])
    return {
        "median_ape": float(np.median(per_job)),
        "mean_ape": float(np.mean(per_job)),
        "worst": float(per_job.max()),
        "jobs": float(len(per_job)),
    }
