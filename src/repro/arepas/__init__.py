"""AREPAS: area-preserving skyline simulation and data augmentation.

Reproduces §3 of the paper — the Area-Preserving Allocation Simulator.
§3.1 argues re-running jobs or learning generative models is too
expensive; instead §3.2 / Algorithm 1 / Figures 5–8 take one observed
skyline, split it into above/below-threshold sections, and stretch each
above-threshold section so its area (token-seconds of work) is
preserved at a lower allocation, yielding the simulated skyline and run
time. `augmentation` applies this over a token grid to synthesise the
multi-allocation training data TASQ's models need (§4.4), and
`validation` reproduces the §5.2 accuracy studies (Figures 12–13,
Table 3).
"""

from repro.arepas.augmentation import (
    AugmentedObservation,
    augment_point_observations,
    default_token_grid,
    sweep_token_grid,
)
from repro.arepas.simulator import (
    AREPAS,
    SimulationResult,
    simulate_runtime,
    simulate_skyline,
    sweep_runtimes,
)
from repro.arepas.validation import (
    JobSimulationError,
    area_pair_differences,
    count_outlier_executions,
    error_summary,
    match_fraction_curve,
    simulation_errors,
)

__all__ = [
    "AREPAS",
    "SimulationResult",
    "simulate_skyline",
    "simulate_runtime",
    "sweep_runtimes",
    "AugmentedObservation",
    "augment_point_observations",
    "default_token_grid",
    "sweep_token_grid",
    "area_pair_differences",
    "match_fraction_curve",
    "count_outlier_executions",
    "JobSimulationError",
    "simulation_errors",
    "error_summary",
]
