"""AREPAS: area-preserving skyline simulation and data augmentation."""

from repro.arepas.augmentation import (
    AugmentedObservation,
    augment_point_observations,
    default_token_grid,
    sweep_token_grid,
)
from repro.arepas.simulator import (
    AREPAS,
    SimulationResult,
    simulate_runtime,
    simulate_skyline,
)
from repro.arepas.validation import (
    JobSimulationError,
    area_pair_differences,
    count_outlier_executions,
    error_summary,
    match_fraction_curve,
    simulation_errors,
)

__all__ = [
    "AREPAS",
    "SimulationResult",
    "simulate_skyline",
    "simulate_runtime",
    "AugmentedObservation",
    "augment_point_observations",
    "default_token_grid",
    "sweep_token_grid",
    "area_pair_differences",
    "match_fraction_curve",
    "count_outlier_executions",
    "JobSimulationError",
    "simulation_errors",
    "error_summary",
]
