"""Command-line interface to the TASQ reproduction.

Subcommands mirror the production workflow of Figure 4:

* ``generate`` — create a synthetic workload, execute it on the cluster
  simulator, and persist the telemetry repository,
* ``stats`` — summarise a repository (run time / token distributions),
* ``train`` — fit a PCC model on a repository and pickle it,
* ``score`` — predict PCCs and token recommendations for jobs,
* ``whatif`` — the Figure 2 token-reduction analysis,
* ``flight`` — re-execute a sample of jobs and validate AREPAS,
* ``serve`` — run the in-process allocation server over a repository,
* ``loadtest`` — drive the server with a generated workload and report
  throughput, tail latency, cache hit rate, and shed rate,
* ``fleet`` — replay a repository's jobs through the cluster-level
  global allocator (`repro.fleet`) and compare makespan / wait /
  token-hours across policies and the Default/Peak/TASQ baselines,
* ``replay`` — arrival-driven multi-tenant replay (`repro.replay`):
  seeded arrival processes feed jobs through the live allocation
  server into the shared pool, execute them, and close the loop
  through the prediction monitor (optionally retraining mid-run),
* ``trace`` — run any of the above under the observability layer
  (`repro.obs`): span tracing, the shared metrics registry, optional
  cProfile / stack sampling; emits a Chrome-loadable trace JSON and a
  human-readable report (see ``docs/observability.md``).

Example session::

    python -m repro generate --jobs 300 --out history.npz
    python -m repro train --repo history.npz --model nn --out nn.pkl
    python -m repro score --model nn.pkl --repo history.npz --limit 5
    python -m repro whatif --repo history.npz --budget 0.05
    python -m repro serve --model nn.pkl --repo history.npz
    python -m repro loadtest --jobs 200 --workers 4
    python -m repro trace loadtest --tiny
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

from repro import obs
from repro.arepas import error_summary, simulation_errors
from repro.flighting import FlightHarness, build_flighted_dataset
from repro.models import TrainConfig, build_dataset
from repro.models.gnn_model import GNNPCCModel
from repro.models.nn_model import NNPCCModel
from repro.models.xgboost_models import XGBoostPL
from repro.scope import WorkloadGenerator, run_workload
from repro.scope.serialization import load_repository, save_repository
from repro.serving import (
    AllocationServer,
    LoadGenerator,
    LoadgenConfig,
    ServerConfig,
    build_server,
)
from repro.tasq import ScoringPipeline, token_reduction_report

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    generator = WorkloadGenerator(seed=args.seed)
    jobs = generator.generate(args.jobs, workers=args.workers)
    print(f"executing {len(jobs)} jobs ...", file=sys.stderr)
    repository = run_workload(jobs, seed=args.seed + 1, workers=args.workers)
    path = save_repository(repository, args.out)
    stats = repository.runtime_statistics()
    print(f"wrote {path} ({len(repository)} records)")
    print(
        f"run time median {stats['runtime_median']:.0f}s, "
        f"peak tokens median {stats['peak_tokens_median']:.0f}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    repository = load_repository(args.repo)
    for key, value in repository.runtime_statistics().items():
        print(f"{key:>22}: {value:,.1f}")
    recurring = sum(1 for r in repository if r.recurring)
    print(f"{'recurring jobs':>22}: {recurring / len(repository):.0%}")
    return 0


_MODEL_BUILDERS = {
    "nn": lambda args: NNPCCModel(
        train_config=TrainConfig(epochs=args.epochs), seed=args.seed
    ),
    "gnn": lambda args: GNNPCCModel(
        train_config=TrainConfig(
            epochs=max(1, args.epochs // 4), batch_size=32, learning_rate=2e-3
        ),
        seed=args.seed,
    ),
    "xgboost": lambda args: XGBoostPL(seed=args.seed),
}


def _cmd_train(args: argparse.Namespace) -> int:
    repository = load_repository(args.repo)
    dataset = build_dataset(
        repository, workers=args.workers, cache=args.cache
    )
    model = _MODEL_BUILDERS[args.model](args)
    print(
        f"training {args.model} on {len(dataset)} jobs ...", file=sys.stderr
    )
    model.fit(dataset)
    with open(args.out, "wb") as handle:
        pickle.dump(model, handle)
    print(f"wrote {args.out} ({model.num_parameters() or 'n/a'} parameters)")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    with open(args.model, "rb") as handle:
        model = pickle.load(handle)
    repository = load_repository(args.repo)
    records = repository.records()
    if args.job is not None:
        records = [r for r in records if r.job_id == args.job]
        if not records:
            print(f"no job {args.job!r} in the repository", file=sys.stderr)
            return 1
    records = records[: args.limit]

    scorer = ScoringPipeline(
        model,
        improvement_threshold=args.threshold,
        max_slowdown=args.max_slowdown,
    )
    recommendations = scorer.score_batch(
        [r.plan for r in records], [r.requested_tokens for r in records]
    )
    if args.explain:
        from repro.tasq.explain import explain_recommendation

        for rec in recommendations:
            print(explain_recommendation(rec))
            print()
        return 0
    header = (
        f"{'job':<20} {'requested':>9} {'optimal':>8} "
        f"{'savings':>8} {'slowdown':>9}"
    )
    print(header)
    print("-" * len(header))
    for rec in recommendations:
        print(
            f"{rec.job_id:<20} {rec.requested_tokens:>9} "
            f"{rec.optimal_tokens:>8} {rec.token_savings:>7.0%} "
            f"{rec.predicted_slowdown:>8.1%}"
        )
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    repository = load_repository(args.repo)
    report = token_reduction_report(repository, args.budget)
    print(f"slowdown budget: {args.budget:.0%}")
    for label, fraction in report.bucket_fractions.items():
        print(f"  reduction {label:>7}: {fraction:>5.0%} of jobs")
    print(f"  mean reduction: {report.mean_reduction:.0%}")
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    repository = load_repository(args.repo)
    records = repository.records()[: args.sample]
    print(f"flighting {len(records)} jobs ...", file=sys.stderr)
    flighted = build_flighted_dataset(
        records, FlightHarness(seed=args.seed), workers=args.workers
    )
    print(
        f"{len(flighted)} jobs survived filters "
        f"({flighted.num_flights} flights)"
    )
    summary = error_summary(simulation_errors(flighted.arepas_inputs()))
    print(
        f"AREPAS error: median {summary['median_ape']:.1f}%, "
        f"mean {summary['mean_ape']:.1f}%, worst {summary['worst']:.0f}%"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    with open(args.model, "rb") as handle:
        model = pickle.load(handle)
    repository = load_repository(args.repo)
    records = repository.records()[: args.limit]

    pipeline = ScoringPipeline(
        model,
        improvement_threshold=args.threshold,
        max_slowdown=args.max_slowdown,
    )
    config = ServerConfig(
        workers=args.workers,
        max_batch_size=args.batch,
        deadline_s=args.deadline,
    )
    server = build_server(
        pipeline,
        config,
        procs=args.procs,
        repository=repository,
        metrics=obs.get_registry() if obs.enabled() else None,
    )
    topology = (
        f"{args.procs} shard processes x {config.workers} workers"
        if args.procs > 1
        else f"{config.workers} workers"
    )
    print(
        f"serving {len(records)} jobs through "
        f"{topology} (batch <= {config.max_batch_size}) ...",
        file=sys.stderr,
    )
    header = (
        f"{'job':<20} {'status':<8} {'requested':>9} {'granted':>8} "
        f"{'latency':>10}"
    )
    print(header)
    print("-" * len(header))
    with server:
        responses = []
        for record in records:
            response = server.request(record.plan, record.requested_tokens)
            responses.append((record, response))
            granted = response.tokens if response.tokens is not None else "-"
            print(
                f"{response.job_id:<20} {response.status.value:<8} "
                f"{record.requested_tokens:>9} {granted:>8} "
                f"{response.latency_s * 1e3:>8.2f}ms"
            )
        # Completed-job feedback: the repository knows each job's actual
        # run time, so replaying it exercises the full monitoring loop.
        for record, response in responses:
            server.record_completion(response, float(record.runtime))
        # Snapshot while the fleet is still up, so liveness gauges show
        # the serving state (sharded servers also pull worker deltas).
        snapshot = (
            server.metrics_snapshot()
            if args.procs > 1
            else server.metrics.snapshot()
        )
    counters, gauges = snapshot["counters"], snapshot["gauges"]
    latency = snapshot["histograms"].get("latency_s", {})
    print()
    print(f"{'responses':>24}: ", end="")
    print(
        ", ".join(
            f"{status} {counters.get(f'responses_{status}', 0)}"
            for status in ("ok", "cached", "fallback", "rejected")
        )
    )
    for quantile in ("p50", "p95", "p99"):
        value = latency.get(quantile)
        if value is not None:
            print(f"{'latency ' + quantile:>24}: {value * 1e3:.2f} ms")
    gauge_names = (
        ("shards", "shards_alive", "prep_cache_hit_rate")
        if args.procs > 1
        else (
            "recommendation_cache_hit_rate",
            "feature_cache_hit_rate",
            "monitor_rolling_median_ape",
            "monitor_needs_retraining",
            "breaker_state",
        )
    )
    for name in gauge_names:
        print(f"{name:>24}: {gauges.get(name)}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.models.xgboost_models import XGBoostPL

    if args.tiny:
        # Smoke-test scale: small enough for CI, still exercises every
        # instrumented layer (generator, executor, fitting, scoring,
        # serving) when run under `python -m repro trace`.
        args.jobs = min(args.jobs, 30)
        args.requests = min(args.requests, 60)
        args.workers = min(args.workers, 2)
        args.clients = min(args.clients, 2)

    generator = WorkloadGenerator(seed=args.seed)
    jobs = generator.generate(args.jobs)
    print(
        f"building {len(jobs)}-job history + model (seed {args.seed}) ...",
        file=sys.stderr,
    )
    repository = run_workload(jobs, seed=args.seed + 1)
    model = XGBoostPL(seed=args.seed).fit(build_dataset(repository))

    config = ServerConfig(
        workers=args.workers,
        max_batch_size=args.batch,
        rate_limit_rps=args.rate_limit,
        breaker_recovery_s=1.0,
    )
    server = build_server(
        ScoringPipeline(model),
        config,
        procs=args.procs,
        repository=repository,
        metrics=obs.get_registry() if obs.enabled() else None,
    )
    loadgen = LoadGenerator(
        jobs,
        LoadgenConfig(
            requests=args.requests,
            clients=args.clients,
            arrival_rate=args.arrival_rate,
            seed=args.seed,
            slo_p95_s=args.slo_p95,
            slo_p99_s=args.slo_p99,
        ),
    )
    shard_stats = None
    with server:
        print(f"cold pass: {args.requests} requests ...", file=sys.stderr)
        cold = loadgen.run(server)
        print("== cold pass (empty caches) ==")
        print(cold.render())
        print()
        print("warm pass: same schedule ...", file=sys.stderr)
        warm = loadgen.run(server)
        print("== warm pass (caches populated) ==")
        print(warm.render())
        if args.procs > 1:
            shard_stats = server.stats()

    print()
    if shard_stats is None:
        gauges = server.metrics.snapshot()["gauges"]
        print(
            f"recommendation cache hit rate (lifetime): "
            f"{gauges['recommendation_cache_hit_rate']:.1%} · "
            f"feature cache: {gauges['feature_cache_hit_rate']:.1%} · "
            f"breaker: {gauges['breaker_state']}"
        )
    else:
        prep = shard_stats["prep_cache"]["hit_rate"]
        prep_text = f"{prep:.1%}" if prep is not None else "n/a"
        print(f"parent prep cache hit rate: {prep_text}")
        for entry in shard_stats["shards"]:
            cache = entry.get("recommendation_cache", {})
            rate = cache.get("hit_rate")
            rate_text = f"{rate:.1%}" if rate is not None else "n/a"
            print(
                f"  shard {entry['shard']}: recommendation cache "
                f"{rate_text} ({cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses)"
            )
    # Latency SLOs (when configured) gate the exit code so CI can fail
    # a run on either pass.
    return 1 if (cold.slo_violations or warm.slo_violations) else 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import POLICY_NAMES, compare_policies, score_usable

    repository = load_repository(args.repo)
    records = [
        r
        for r in repository.records()
        if args.min_tokens <= r.requested_tokens <= args.max_tokens
    ]
    records = records[: args.limit]
    if not records:
        print("no jobs in the requested token range", file=sys.stderr)
        return 1

    if args.model is not None:
        with open(args.model, "rb") as handle:
            model = pickle.load(handle)
    else:
        print(
            f"no --model given: fitting XGBoostPL on {len(repository)} "
            "historical jobs ...",
            file=sys.stderr,
        )
        model = XGBoostPL(seed=args.seed).fit(build_dataset(repository))

    scorer = ScoringPipeline(
        model,
        improvement_threshold=args.threshold,
        max_slowdown=args.max_slowdown,
    )
    scored = len(records)
    records, recommendations = score_usable(scorer, records)
    if len(records) < scored:
        print(
            f"skipped {scored - len(records)} job(s) with an increasing "
            "predicted PCC",
            file=sys.stderr,
        )
    if not records:
        print("no scorable jobs in the requested range", file=sys.stderr)
        return 1

    policies = (
        POLICY_NAMES if args.policy == "all" else (args.policy,)
    )
    comparison = compare_policies(
        records,
        recommendations,
        capacity=args.cluster_cap,
        policies=policies,
        arrival_mean_s=args.arrival_mean,
        seed=args.seed,
        slowdown_floor=args.slowdown_floor,
        deadline_slack=args.deadline_slack,
    )
    print(
        f"{comparison.jobs} jobs, cluster cap "
        f"{comparison.capacity} tokens, seed {comparison.seed}"
    )
    print(comparison.render())
    if args.out is not None:
        args.out.write_text(
            json.dumps(comparison.to_json(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"(comparison written to {args.out})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.replay import (
        ArrivalSpec,
        ReplayConfig,
        ReplayEngine,
        default_tenants,
        load_trace,
        split_round_robin,
    )
    from repro.replay.tenants import TenantSpec

    if args.arrival == "trace":
        if args.trace_file is None:
            print(
                "replay: --arrival trace needs --trace-file",
                file=sys.stderr,
            )
            return 2
        shares = split_round_robin(
            load_trace(args.trace_file), args.tenants
        )
        tenants = tuple(
            TenantSpec(
                name=base.name,
                family=base.family,
                arrival=ArrivalSpec(kind="trace", trace=share),
                slo_slowdown=args.slo_slowdown,
            )
            for base, share in zip(default_tenants(args.tenants), shares)
            if share
        )
        if not tenants:
            print("replay: trace file has no timestamps", file=sys.stderr)
            return 2
    else:
        tenants = default_tenants(
            args.tenants,
            arrival=ArrivalSpec(
                kind=args.arrival, mean_gap_s=args.mean_gap
            ),
            slo_slowdown=args.slo_slowdown,
        )
    if args.family is not None:
        tenants = tuple(
            TenantSpec(
                name=t.name,
                family=args.family,
                arrival=t.arrival,
                slo_slowdown=t.slo_slowdown,
            )
            for t in tenants
        )

    if args.tiny:
        args.duration = 120.0
        args.bootstrap_jobs = 15
    config = ReplayConfig(
        duration_s=args.duration,
        policy=args.policy,
        seed=args.seed,
        capacity=args.capacity,
        bootstrap_jobs=args.bootstrap_jobs,
        slowdown_floor=args.slowdown_floor,
        admission=args.admission,
        retrain=args.retrain,
        promotion=args.promotion,
        risk=args.risk,
        workers=args.workers,
    )
    print(
        f"replaying {args.duration:,.0f}s of {args.arrival} arrivals "
        f"across {len(tenants)} tenant(s) under policy {args.policy} ...",
        file=sys.stderr,
    )
    report = ReplayEngine(config, tenants).run()
    to_stdout = args.out is not None and str(args.out) == "-"
    # With --out -, stdout carries only the JSON so it pipes cleanly;
    # the human table moves to stderr.
    print(report.render(), file=sys.stderr if to_stdout else sys.stdout)
    if args.out is not None:
        payload = (
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        )
        if to_stdout:
            print(payload, end="")
        else:
            args.out.write_text(payload)
            print(f"(report written to {args.out})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run another subcommand under the observability layer."""
    from repro.obs.profiling import SamplingProfiler, SpanProfiler
    from repro.obs.reporting import (
        folded_span_stacks,
        render_report,
        write_chrome_trace,
    )

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        print(
            "trace: name a subcommand to instrument, e.g. "
            "`python -m repro trace loadtest --tiny`",
            file=sys.stderr,
        )
        return 2
    if rest[0] == "trace":
        print("trace: traced runs cannot nest", file=sys.stderr)
        return 2
    inner = build_parser().parse_args(rest)

    obs.reset_registry()
    obs.trace.reset()
    obs.enable(capacity=args.span_capacity)
    profiler = SpanProfiler(top=args.profile_top) if args.profile else None
    sampler = (
        SamplingProfiler(interval_s=args.sample_interval)
        if args.sample
        else None
    )
    code = 0
    try:
        if sampler is not None:
            sampler.start()
        if profiler is not None:
            with profiler.attach(None):
                code = int(inner.func(inner))
        else:
            code = int(inner.func(inner))
    finally:
        if sampler is not None:
            sampler.stop()
        obs.disable()

    trace_path = write_chrome_trace(obs.trace, args.trace_out)
    report = render_report(
        obs.trace,
        obs.get_registry(),
        profile_text=profiler.cpu_report if profiler is not None else None,
    )
    print()
    print(f"=== observability report · trace written to {trace_path} ===")
    print(report)
    if args.report_out is not None:
        args.report_out.write_text(report + "\n")
        print(f"(report also written to {args.report_out})")
    if args.folded_out is not None:
        lines = (
            sampler.folded()
            if sampler is not None
            else folded_span_stacks(obs.trace)
        )
        args.folded_out.write_text("\n".join(lines) + "\n")
        source = "sampled" if sampler is not None else "span-tree"
        print(f"({source} folded stacks written to {args.folded_out})")
    return code


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TASQ reproduction: optimal resource allocation "
        "for big data analytics (EDBT 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate",
        aliases=["simulate"],
        help="generate + execute (simulate) a workload",
    )
    generate.add_argument("--jobs", type=int, default=300)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=Path, required=True)
    generate.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for synthesis/execution (1 = serial)",
    )
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="summarise a repository")
    stats.add_argument("--repo", type=Path, required=True)
    stats.set_defaults(func=_cmd_stats)

    train = sub.add_parser("train", help="train a PCC model")
    train.add_argument("--repo", type=Path, required=True)
    train.add_argument(
        "--model", choices=sorted(_MODEL_BUILDERS), default="nn"
    )
    train.add_argument("--epochs", type=int, default=60)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", type=Path, required=True)
    train.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for dataset construction (1 = serial)",
    )
    train.add_argument(
        "--cache", type=Path, default=None,
        help="artifact-cache directory; warm re-runs skip AREPAS sweeps",
    )
    train.set_defaults(func=_cmd_train)

    score = sub.add_parser("score", help="score jobs with a trained model")
    score.add_argument("--model", type=Path, required=True)
    score.add_argument("--repo", type=Path, required=True)
    score.add_argument("--job", type=str, default=None)
    score.add_argument("--limit", type=int, default=10)
    score.add_argument("--threshold", type=float, default=0.01)
    score.add_argument("--max-slowdown", type=float, default=None)
    score.add_argument(
        "--explain", action="store_true",
        help="print the full PCC chart and explanation per job",
    )
    score.set_defaults(func=_cmd_score)

    whatif = sub.add_parser("whatif", help="token-reduction analysis (Fig 2)")
    whatif.add_argument("--repo", type=Path, required=True)
    whatif.add_argument("--budget", type=float, default=0.0)
    whatif.set_defaults(func=_cmd_whatif)

    flight = sub.add_parser("flight", help="flight jobs, validate AREPAS")
    flight.add_argument("--repo", type=Path, required=True)
    flight.add_argument("--sample", type=int, default=25)
    flight.add_argument("--seed", type=int, default=0)
    flight.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for the flight sweep (1 = serial)",
    )
    flight.set_defaults(func=_cmd_flight)

    serve = sub.add_parser(
        "serve", help="replay a repository through the allocation server"
    )
    serve.add_argument("--model", type=Path, required=True)
    serve.add_argument("--repo", type=Path, required=True)
    serve.add_argument("--limit", type=int, default=50)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--batch", type=int, default=8)
    serve.add_argument("--deadline", type=float, default=None)
    serve.add_argument("--threshold", type=float, default=0.01)
    serve.add_argument("--max-slowdown", type=float, default=None)
    serve.add_argument(
        "--procs", type=int, default=1,
        help="shard processes (1 = single-process server); each shard "
        "runs its own worker pool and private caches",
    )
    serve.set_defaults(func=_cmd_serve)

    loadtest = sub.add_parser(
        "loadtest", help="generate a workload and load-test the server"
    )
    loadtest.add_argument("--jobs", type=int, default=200)
    loadtest.add_argument("--requests", type=int, default=400)
    loadtest.add_argument("--workers", type=int, default=4)
    loadtest.add_argument("--clients", type=int, default=4)
    loadtest.add_argument("--batch", type=int, default=8)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--rate-limit", type=float, default=None,
        help="admitted requests/second (token bucket); default unlimited",
    )
    loadtest.add_argument(
        "--arrival-rate", type=float, default=None,
        help="open-loop arrival rate; default closed-loop clients",
    )
    loadtest.add_argument(
        "--tiny", action="store_true",
        help="smoke-test scale (30 jobs / 60 requests); used by CI",
    )
    loadtest.add_argument(
        "--procs", type=int, default=1,
        help="shard processes (1 = single-process server)",
    )
    loadtest.add_argument(
        "--slo-p95", type=float, default=None,
        help="p95 latency SLO in seconds; violations fail the run",
    )
    loadtest.add_argument(
        "--slo-p99", type=float, default=None,
        help="p99 latency SLO in seconds; violations fail the run",
    )
    loadtest.set_defaults(func=_cmd_loadtest)

    fleet = sub.add_parser(
        "fleet",
        help="compare cluster-level global allocation policies",
        description="Replay a repository's jobs through the fleet "
        "scheduler under a shared token cap and compare cluster-wide "
        "makespan / wait time / token-hours across allocation policies "
        "and the Default/Peak/per-job-TASQ baselines (docs/fleet.md). "
        "Runs are fully seeded and reproducible.",
    )
    fleet.add_argument("--repo", type=Path, required=True)
    fleet.add_argument(
        "--model", type=Path, default=None,
        help="pickled PCC model; omitted = fit XGBoostPL on the repo",
    )
    fleet.add_argument(
        "--cluster-cap", type=int, default=None,
        help="shared token pool size; default = the stream's largest "
        "single request",
    )
    fleet.add_argument(
        "--policy",
        choices=["all", "water_filling", "knapsack", "deadline"],
        default="all",
        help="global allocation policy to evaluate (default: all)",
    )
    fleet.add_argument("--limit", type=int, default=200)
    fleet.add_argument("--min-tokens", type=int, default=2)
    fleet.add_argument("--max-tokens", type=int, default=600)
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument(
        "--arrival-mean", type=float, default=15.0,
        help="mean inter-arrival gap (seconds) of the Poisson stream",
    )
    fleet.add_argument("--threshold", type=float, default=10.0)
    fleet.add_argument("--max-slowdown", type=float, default=0.10)
    fleet.add_argument(
        "--slowdown-floor", type=float, default=0.25,
        help="protective SLO: never squeeze a job beyond this predicted "
        "slowdown versus its request",
    )
    fleet.add_argument(
        "--deadline-slack", type=float, default=0.25,
        help="deadline policy: per-job deadline as (1+slack) x predicted "
        "run time at the requested tokens",
    )
    fleet.add_argument(
        "--out", type=Path, default=None,
        help="also write the comparison as JSON to this path",
    )
    fleet.set_defaults(func=_cmd_fleet)

    replay = sub.add_parser(
        "replay",
        help="arrival-driven multi-tenant replay (closed serving loop)",
        description="Generate seeded multi-tenant arrival streams, ask "
        "the live allocation server for a recommendation per arriving "
        "job, admit it into the shared token pool, execute it on the "
        "cluster simulator, and feed the observed run time back into "
        "the prediction monitor (docs/replay.md). Identical seeds give "
        "bit-identical reports at any --workers setting.",
    )
    replay.add_argument(
        "--arrival",
        choices=["poisson", "diurnal", "bursty", "trace"],
        default="poisson",
        help="arrival process family (default: poisson)",
    )
    replay.add_argument(
        "--trace-file", type=Path, default=None,
        help="timestamps for --arrival trace, one per line",
    )
    replay.add_argument(
        "--tenants", type=int, default=3,
        help="number of tenants (families rotate tpch/streaming/"
        "ml_training/etl_skew)",
    )
    replay.add_argument(
        "--family",
        choices=["tpch", "streaming", "ml_training", "etl_skew"],
        default=None,
        help="force every tenant onto one workload family",
    )
    replay.add_argument(
        "--duration", type=float, default=900.0,
        help="virtual seconds of arrivals to generate (default 900)",
    )
    replay.add_argument(
        "--mean-gap", type=float, default=30.0,
        help="per-tenant mean inter-arrival gap in seconds (default 30)",
    )
    replay.add_argument(
        "--policy",
        choices=[
            "default", "peak", "tasq",
            "water_filling", "knapsack", "deadline",
        ],
        default="water_filling",
        help="allocation regime (default: water_filling)",
    )
    replay.add_argument(
        "--admission", choices=["fcfs", "backfill"], default="fcfs",
        help="queue order: strict FCFS or EASY backfill",
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--capacity", type=int, default=None,
        help="shared token pool; default = the largest single request",
    )
    replay.add_argument("--bootstrap-jobs", type=int, default=120)
    replay.add_argument("--slowdown-floor", type=float, default=0.25)
    replay.add_argument(
        "--slo-slowdown", type=float, default=2.0,
        help="per-tenant SLO: attained when slowdown <= this factor",
    )
    replay.add_argument(
        "--retrain", action="store_true",
        help="refit + hot-swap the model when the drift monitor fires",
    )
    replay.add_argument(
        "--promotion", choices=("immediate", "shadow"),
        default="immediate",
        help="how a retrained model deploys: immediate hot-swap, or "
        "shadow champion-challenger gated on accuracy + coverage "
        "(docs/uncertainty.md)",
    )
    replay.add_argument(
        "--risk", type=float, default=None,
        help="risk level in (0, 1) for recommendations and deadline "
        "floors; e.g. 0.9 = SLOs hold at the q90 of predicted run time "
        "(default: point estimates)",
    )
    replay.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for the bootstrap (output identical "
        "at any value)",
    )
    replay.add_argument(
        "--tiny", action="store_true",
        help="smoke-test scale: 120s window, 15 bootstrap jobs "
        "(overrides --duration/--bootstrap-jobs)",
    )
    replay.add_argument(
        "--out", type=Path, default=None,
        help="write the report as JSON to this path ('-' = stdout)",
    )
    replay.set_defaults(func=_cmd_replay)

    traced = sub.add_parser(
        "trace",
        help="run another subcommand under tracing/metrics/profiling",
        description="Run any repro subcommand with the observability "
        "layer enabled; writes a chrome://tracing JSON and prints a "
        "span/metric report (docs/observability.md).",
    )
    traced.add_argument(
        "--trace-out", type=Path, default=Path("trace.json"),
        help="where to write the Chrome-loadable trace (default trace.json)",
    )
    traced.add_argument(
        "--report-out", type=Path, default=None,
        help="also write the printed report to this file",
    )
    traced.add_argument(
        "--folded-out", type=Path, default=None,
        help="write flamegraph-compatible folded stacks to this file",
    )
    traced.add_argument(
        "--profile", action="store_true",
        help="run the whole command under cProfile (deterministic)",
    )
    traced.add_argument("--profile-top", type=int, default=20)
    traced.add_argument(
        "--sample", action="store_true",
        help="run the wall-clock sampling profiler alongside tracing",
    )
    traced.add_argument("--sample-interval", type=float, default=0.005)
    traced.add_argument(
        "--span-capacity", type=int, default=65536,
        help="ring-buffer size for recorded spans",
    )
    traced.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="the subcommand (and its flags) to run instrumented",
    )
    traced.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        return 0
