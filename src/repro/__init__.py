"""TASQ reproduction: optimal resource allocation for big data analytics.

A full reimplementation of the EDBT 2022 paper *"Towards Optimal Resource
Allocation for Big Data Analytics"* (Pimpley et al., Microsoft): the TASQ
pipeline for predicting performance characteristic curves (PCCs) of
analytical jobs, the AREPAS area-preserving skyline simulator for training
data augmentation, XGBoost/NN/GNN prediction models with constrained loss
functions, and a SCOPE-like cluster substrate that stands in for the
proprietary Microsoft production traces.

Quickstart::

    from repro import (
        WorkloadGenerator, run_workload, TrainingPipeline, ScoringPipeline,
    )

    jobs = WorkloadGenerator(seed=0).generate(200)
    repository = run_workload(jobs, seed=0)
    trained = TrainingPipeline().run(repository)
    scorer = ScoringPipeline(trained.get("nn"))
    recommendation = scorer.score(jobs[0].plan, jobs[0].requested_tokens)
    print(recommendation.optimal_tokens, recommendation.predicted_slowdown)
"""

from repro.arepas import AREPAS, simulate_runtime, simulate_skyline
from repro.exceptions import ReproError
from repro.flighting import FlightHarness, build_flighted_dataset
from repro import obs
from repro.models import (
    GNNPCCModel,
    NNPCCModel,
    XGBoostPL,
    XGBoostSS,
    build_dataset,
    evaluate_model,
)
from repro.pcc import PowerLawPCC, fit_power_law, optimal_tokens
from repro.scope import (
    ClusterExecutor,
    JobRepository,
    QueryPlan,
    WorkloadGenerator,
    run_workload,
)
from repro.serving import (
    AllocationServer,
    LoadGenerator,
    MetricsRegistry,
    ServerConfig,
)
from repro.skyline import Skyline
from repro.tasq import (
    ScoringPipeline,
    TokenRecommendation,
    TrainingPipeline,
    token_reduction_report,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "obs",
    "Skyline",
    "AREPAS",
    "simulate_skyline",
    "simulate_runtime",
    "PowerLawPCC",
    "fit_power_law",
    "optimal_tokens",
    "QueryPlan",
    "WorkloadGenerator",
    "ClusterExecutor",
    "JobRepository",
    "run_workload",
    "build_dataset",
    "evaluate_model",
    "XGBoostSS",
    "XGBoostPL",
    "NNPCCModel",
    "GNNPCCModel",
    "FlightHarness",
    "build_flighted_dataset",
    "TrainingPipeline",
    "ScoringPipeline",
    "TokenRecommendation",
    "token_reduction_report",
    "AllocationServer",
    "ServerConfig",
    "MetricsRegistry",
    "LoadGenerator",
    "__version__",
]
