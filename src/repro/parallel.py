"""Deterministic parallel execution for the offline pipeline.

The offline path (workload synthesis -> cluster execution -> AREPAS
sweeps -> featurization -> model fitting) is embarrassingly parallel at
the per-job / per-model granularity, but naive multiprocessing breaks the
two guarantees the reproduction is built on:

* **Determinism** — results must be bit-identical whether a stage runs in
  one process or eight. :func:`pmap` preserves input order regardless of
  completion order, and :func:`spawn_seeds` derives independent per-task
  RNG streams from one root seed via :class:`numpy.random.SeedSequence`,
  so the *same* streams drive both the serial and the parallel path.
* **Observability** — ``repro.obs`` spans and metrics are process-local.
  When tracing is enabled, each worker records into its own (freshly
  reset) tracer/registry, ships the buffered spans and metric state back
  with its chunk results, and the parent merges them
  (:meth:`~repro.obs.tracing.Tracer.merge_spans`,
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_state`), so a traced
  ``--workers 8`` run produces one coherent trace.

Start method: workers are created with the ``fork`` context where the
platform offers it (Linux/macOS CPython builds; cheap, inherits the
loaded modules) and fall back to ``spawn`` elsewhere. Nothing in the
offline path depends on the choice — task functions receive all state as
pickled arguments, and per-process randomness (including Python's hash
randomization) is never used to derive results.

Failure behaviour is graceful: ``workers <= 1``, a single-item input, or
any failure to stand up the process pool (sandboxed environments,
resource limits) degrades to an in-process serial loop that produces the
identical result.
"""

from __future__ import annotations

import math
import multiprocessing
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.obs import get_registry, trace

__all__ = [
    "START_METHOD",
    "resolve_workers",
    "spawn_seeds",
    "pmap",
]

#: The multiprocessing start method used for worker pools. ``fork`` where
#: available (POSIX), ``spawn`` otherwise; see the module docstring.
START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value to a positive worker count.

    ``None`` and values ``<= 0`` mean "use every available core".
    """
    if workers is None or workers <= 0:
        return multiprocessing.cpu_count()
    return int(workers)


def spawn_seeds(entropy, num: int) -> list[np.random.SeedSequence]:
    """``num`` independent child seed sequences from one root entropy.

    ``entropy`` may be an int or a tuple of ints (e.g. ``(seed, epoch)``).
    Children depend only on the root entropy and their spawn index, so the
    i-th task gets the same stream no matter how tasks are partitioned
    into chunks or processes.
    """
    if num < 0:
        raise ValueError("cannot spawn a negative number of seeds")
    return np.random.SeedSequence(entropy).spawn(num)


# ----------------------------------------------------------------------
# worker plumbing
# ----------------------------------------------------------------------
# Installed once per worker process by the pool initializer; chunk tasks
# then only ship the (small) per-item payloads.
_WORKER_FN: Callable | None = None


def _init_worker(fn: Callable, obs_enabled: bool) -> None:
    global _WORKER_FN
    _WORKER_FN = fn
    # Under `fork` the child inherits the parent's span buffer and metric
    # registry; drop that inherited state so the worker ships back only
    # what *it* recorded. Under `spawn` these start empty anyway.
    trace.reset()
    get_registry().reset()
    if obs_enabled:
        trace.enable()
    else:
        trace.disable()


def _run_chunk(items: Sequence):
    """Run one chunk in the worker; return results plus buffered obs state."""
    assert _WORKER_FN is not None, "worker initializer did not run"
    results = [_WORKER_FN(item) for item in items]
    spans = None
    if trace.enabled:
        spans = trace.spans()
        trace.reset()
    # Metrics (counters/histograms, e.g. cache hit rates) ship even when
    # tracing is off — they are cheap and callers expect registry totals
    # to be identical between serial and parallel runs.
    metrics = get_registry().dump_state()
    get_registry().reset()
    return results, spans, metrics


def _merge_worker_obs(spans, metrics) -> None:
    if spans:
        trace.merge_spans(spans)
    if metrics:
        get_registry().merge_state(metrics)


def pmap(
    fn: Callable,
    items: Iterable,
    workers: int = 1,
    chunk_size: int | None = None,
) -> list:
    """Ordered parallel map over ``items`` with a process pool.

    Semantically identical to ``[fn(item) for item in items]`` — results
    come back in input order — but chunks of items are dispatched to a
    pool of ``workers`` processes. ``fn`` must be picklable (a top-level
    function or a :func:`functools.partial` over one); it is shipped once
    per worker via the pool initializer, so large bound arguments (a
    dataset, an executor) are not re-pickled per item.

    Falls back to the serial loop when ``workers <= 1``, when there are
    fewer than two items, or when the pool cannot be created or dies
    (e.g. fork blocked by a sandbox) — with a warning in the last case.
    When ``repro.obs`` tracing is enabled, worker spans and metrics are
    merged back into the parent tracer/registry (see module docstring).
    """
    items = list(items)
    workers = min(resolve_workers(workers), max(1, len(items)))
    if workers <= 1 or len(items) < 2:
        return [fn(item) for item in items]

    if chunk_size is None:
        # ~4 chunks per worker balances scheduling slack against
        # per-chunk pickling overhead.
        chunk_size = max(1, math.ceil(len(items) / (workers * 4)))
    chunks = [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]

    try:
        context = multiprocessing.get_context(START_METHOD)
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(fn, trace.enabled),
        ) as pool:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            out: list = []
            for future in futures:
                results, spans, metrics = future.result()
                _merge_worker_obs(spans, metrics)
                out.extend(results)
            return out
    except (OSError, PermissionError, BrokenProcessPool) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); falling back to serial "
            "execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]
