"""Operator-level featurization (Table 1, GNN input).

Each operator becomes a fixed-width vector laid out per
:data:`~repro.features.schema.OPERATOR_SCHEMA`:

``[log1p(continuous) | discrete | one-hot operator kind | one-hot
partitioning]``

and a plan becomes an ``N x P_O`` matrix with rows in topological order —
the same order as the adjacency matrix from
:meth:`repro.scope.plan.QueryPlan.adjacency_matrix`.
"""

from __future__ import annotations

import numpy as np

from repro.features.schema import OPERATOR_SCHEMA, FeatureSchema
from repro.scope.plan import OperatorNode, QueryPlan

__all__ = ["operator_vector", "plan_feature_matrix"]


def operator_vector(
    node: OperatorNode, schema: FeatureSchema = OPERATOR_SCHEMA
) -> np.ndarray:
    """Featurize a single operator into a ``P_O``-width vector."""
    vector = np.zeros(schema.operator_dim, dtype=np.float64)

    continuous = np.array(
        [getattr(node, name) for name in schema.continuous], dtype=float
    )
    vector[schema.continuous_slice()] = np.log1p(np.clip(continuous, 0.0, None))

    vector[schema.discrete_slice()] = [
        float(getattr(node, name)) for name in schema.discrete
    ]

    kind_index = schema.operator_kinds.index(node.kind)
    vector[schema.operator_kind_slice()][kind_index] = 1.0

    part_index = schema.partitioning_methods.index(node.partitioning)
    vector[schema.partitioning_slice()][part_index] = 1.0
    return vector


def plan_feature_matrix(
    plan: QueryPlan, schema: FeatureSchema = OPERATOR_SCHEMA
) -> np.ndarray:
    """Featurize a plan into an ``N x P_O`` matrix in topological order."""
    rows = [
        operator_vector(plan.nodes[op_id], schema)
        for op_id in plan.topological_order
    ]
    return np.vstack(rows)
