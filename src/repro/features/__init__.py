"""Featurization: Table 1 schema, operator/job/graph feature extraction."""

from repro.features.encoders import StandardScaler, TargetScaler, log1p_continuous
from repro.features.graph_features import (
    GraphSample,
    normalized_adjacency,
    plan_to_graph_sample,
)
from repro.features.job_features import (
    job_feature_matrix,
    job_feature_names,
    job_vector,
)
from repro.features.operator_features import operator_vector, plan_feature_matrix
from repro.features.schema import (
    CONTINUOUS_FEATURES,
    DISCRETE_FEATURES,
    JOB_EXTRA_FEATURES,
    OPERATOR_SCHEMA,
    FeatureSchema,
)

__all__ = [
    "FeatureSchema",
    "OPERATOR_SCHEMA",
    "CONTINUOUS_FEATURES",
    "DISCRETE_FEATURES",
    "JOB_EXTRA_FEATURES",
    "operator_vector",
    "plan_feature_matrix",
    "job_vector",
    "job_feature_matrix",
    "job_feature_names",
    "GraphSample",
    "normalized_adjacency",
    "plan_to_graph_sample",
    "StandardScaler",
    "TargetScaler",
    "log1p_continuous",
]
