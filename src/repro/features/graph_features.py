"""Graph representation for the GNN (Section 4.3, "Graph representation").

The query plan's DAG is represented by its adjacency matrix; the GCN layer
consumes the symmetrically normalised variant of Kipf & Welling:

    A_hat = D^{-1/2} (A + A^T + I) D^{-1/2}

We symmetrise the DAG's adjacency (information should flow both along and
against the data-flow edges during neighbourhood aggregation) and add
self-loops before normalising.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FeaturizationError
from repro.features.operator_features import plan_feature_matrix
from repro.features.schema import OPERATOR_SCHEMA, FeatureSchema
from repro.scope.plan import QueryPlan

__all__ = [
    "normalized_adjacency",
    "GraphSample",
    "plan_to_graph_sample",
    "graph_sample_from_matrix",
]


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetrically normalised adjacency with self-loops (GCN style)."""
    adjacency = np.asarray(adjacency, dtype=float)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise FeaturizationError("adjacency must be a square matrix")
    n = adjacency.shape[0]
    symmetric = np.clip(adjacency + adjacency.T, 0.0, 1.0) + np.eye(n)
    degrees = symmetric.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return symmetric * inv_sqrt[:, None] * inv_sqrt[None, :]


@dataclass(frozen=True)
class GraphSample:
    """One GNN input: node features plus normalised adjacency."""

    node_features: np.ndarray  # N x P_O
    adjacency: np.ndarray  # N x N, normalised

    def __post_init__(self) -> None:
        n_nodes = self.node_features.shape[0]
        if self.adjacency.shape != (n_nodes, n_nodes):
            raise FeaturizationError(
                "node features and adjacency disagree on node count"
            )

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])


def plan_to_graph_sample(
    plan: QueryPlan, schema: FeatureSchema = OPERATOR_SCHEMA
) -> GraphSample:
    """Featurize a plan for the GNN: (node matrix, normalised adjacency)."""
    return graph_sample_from_matrix(plan_feature_matrix(plan, schema), plan)


def graph_sample_from_matrix(
    matrix: np.ndarray, plan: QueryPlan
) -> GraphSample:
    """Build a GNN sample from an already-computed operator feature matrix."""
    adjacency = normalized_adjacency(plan.adjacency_matrix())
    return GraphSample(node_features=matrix, adjacency=adjacency)
