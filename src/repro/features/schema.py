"""Feature schema (Tables 1 and 2).

Operator-level features come in three groups, each with its own
pre-processing (Table 1):

* continuous (float) — estimated cardinalities (output / leaf input /
  children input), average row length, estimated costs (subtree /
  exclusive / total); log-transformed because they span many orders of
  magnitude,
* discrete (integer counts) — number of partitions, partitioning columns,
  sort columns,
* categorical (one-hot) — 35 physical operator kinds and 4 partitioning
  methods.

The fixed layout defined here is shared by the operator-level matrices the
GNN consumes and the aggregated job-level vectors for XGBoost/NN
(Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scope.operators import (
    NUM_OPERATOR_KINDS,
    NUM_PARTITIONING_METHODS,
    OPERATOR_NAMES,
    PARTITIONING_METHODS,
)

__all__ = [
    "CONTINUOUS_FEATURES",
    "DISCRETE_FEATURES",
    "FeatureSchema",
    "OPERATOR_SCHEMA",
    "JOB_EXTRA_FEATURES",
]

#: Table 1 continuous features, in layout order.
CONTINUOUS_FEATURES: tuple[str, ...] = (
    "output_cardinality",
    "leaf_input_cardinality",
    "children_input_cardinality",
    "average_row_length",
    "cost_subtree",
    "cost_exclusive",
    "cost_total",
)

#: Table 1 discrete features, in layout order.
DISCRETE_FEATURES: tuple[str, ...] = (
    "num_partitions",
    "num_partitioning_columns",
    "num_sort_columns",
)

#: Structural features appended only at the job level (Section 4.3:
#: "The number of operators and stages are included as features as well").
JOB_EXTRA_FEATURES: tuple[str, ...] = ("num_operators", "num_stages")


@dataclass(frozen=True)
class FeatureSchema:
    """Column layout of an operator-level feature vector."""

    continuous: tuple[str, ...]
    discrete: tuple[str, ...]
    operator_kinds: tuple[str, ...]
    partitioning_methods: tuple[str, ...]

    @property
    def num_continuous(self) -> int:
        return len(self.continuous)

    @property
    def num_discrete(self) -> int:
        return len(self.discrete)

    @property
    def num_categorical(self) -> int:
        return len(self.operator_kinds) + len(self.partitioning_methods)

    @property
    def operator_dim(self) -> int:
        """Width of one operator's feature vector (P_O in the paper)."""
        return self.num_continuous + self.num_discrete + self.num_categorical

    @property
    def job_dim(self) -> int:
        """Width of the aggregated job-level vector (P_J in the paper)."""
        return self.operator_dim + len(JOB_EXTRA_FEATURES)

    def continuous_slice(self) -> slice:
        return slice(0, self.num_continuous)

    def discrete_slice(self) -> slice:
        start = self.num_continuous
        return slice(start, start + self.num_discrete)

    def operator_kind_slice(self) -> slice:
        start = self.num_continuous + self.num_discrete
        return slice(start, start + len(self.operator_kinds))

    def partitioning_slice(self) -> slice:
        start = (
            self.num_continuous + self.num_discrete + len(self.operator_kinds)
        )
        return slice(start, start + len(self.partitioning_methods))

    def column_names(self) -> list[str]:
        """Human-readable names for every feature column."""
        names = list(self.continuous) + list(self.discrete)
        names.extend(f"op:{kind}" for kind in self.operator_kinds)
        names.extend(f"part:{m.value}" for m in self.partitioning_methods)
        return names


#: The canonical schema used throughout the repo.
OPERATOR_SCHEMA = FeatureSchema(
    continuous=CONTINUOUS_FEATURES,
    discrete=DISCRETE_FEATURES,
    operator_kinds=OPERATOR_NAMES,
    partitioning_methods=PARTITIONING_METHODS,
)

if OPERATOR_SCHEMA.operator_dim != (
    len(CONTINUOUS_FEATURES)
    + len(DISCRETE_FEATURES)
    + NUM_OPERATOR_KINDS
    + NUM_PARTITIONING_METHODS
):
    raise AssertionError("feature schema layout is inconsistent")
