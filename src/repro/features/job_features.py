"""Aggregated job-level featurization (Table 2, XGBoost/NN input).

XGBoost and the feed-forward NN need one fixed-width vector per job, so
operator-level features are aggregated (Section 4.3):

* continuous and discrete variables — aggregated by **mean** over the
  plan's operators,
* categorical variables — aggregated by **frequency count** (how many
  operators of each kind / partitioning method the plan contains),
* plus the number of operators and the number of stages.
"""

from __future__ import annotations

import numpy as np

from repro.features.operator_features import plan_feature_matrix
from repro.features.schema import JOB_EXTRA_FEATURES, OPERATOR_SCHEMA, FeatureSchema
from repro.scope.plan import QueryPlan

__all__ = [
    "job_vector",
    "job_vector_from_matrix",
    "job_feature_matrix",
    "job_feature_names",
]


def job_vector(
    plan: QueryPlan, schema: FeatureSchema = OPERATOR_SCHEMA
) -> np.ndarray:
    """Aggregate a plan into a ``P_J``-width job-level vector."""
    return job_vector_from_matrix(plan_feature_matrix(plan, schema), plan, schema)


def job_vector_from_matrix(
    matrix: np.ndarray, plan: QueryPlan, schema: FeatureSchema = OPERATOR_SCHEMA
) -> np.ndarray:
    """Aggregate an already-computed operator feature matrix.

    Lets callers that need both the job vector and the GNN graph sample
    (e.g. :func:`repro.tasq.pipeline.featurize`) run the per-operator
    featurization once instead of once per representation.
    """
    vector = np.zeros(schema.job_dim, dtype=np.float64)

    numeric = slice(0, schema.num_continuous + schema.num_discrete)
    vector[numeric] = matrix[:, numeric].mean(axis=0)

    categorical = slice(schema.num_continuous + schema.num_discrete,
                        schema.operator_dim)
    vector[categorical] = matrix[:, categorical].sum(axis=0)

    vector[schema.operator_dim] = float(plan.num_operators)
    vector[schema.operator_dim + 1] = float(plan.num_stages)
    return vector


def job_feature_matrix(
    plans: list[QueryPlan], schema: FeatureSchema = OPERATOR_SCHEMA
) -> np.ndarray:
    """Stack job vectors for a list of plans into an ``M x P_J`` matrix."""
    return np.vstack([job_vector(plan, schema) for plan in plans])


def job_feature_names(schema: FeatureSchema = OPERATOR_SCHEMA) -> list[str]:
    """Column names of the job-level vector, for debugging/reporting."""
    return schema.column_names() + list(JOB_EXTRA_FEATURES)
