"""Feature scaling utilities.

Small fit/transform encoders in the scikit-learn style, implemented on
numpy. Used to standardise feature matrices before NN/GNN training and to
scale the PCC parameters so neither dominates the loss (Section 4.5).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FeaturizationError, NotFittedError

__all__ = ["StandardScaler", "log1p_continuous", "TargetScaler"]


def log1p_continuous(values: np.ndarray) -> np.ndarray:
    """``log(1 + x)`` transform for heavy-tailed non-negative features."""
    values = np.asarray(values, dtype=float)
    if np.any(values < 0):
        raise FeaturizationError("log1p transform requires non-negative values")
    return np.log1p(values)


class StandardScaler:
    """Column-wise standardisation to zero mean / unit variance.

    Constant columns (zero variance) are left centred but unscaled, so
    one-hot columns that never fire do not produce NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise FeaturizationError("scaler expects a 2-D matrix")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        self.scale_ = std
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler used before fit")
        matrix = np.asarray(matrix, dtype=float)
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler used before fit")
        return np.asarray(matrix, dtype=float) * self.scale_ + self.mean_


class TargetScaler:
    """Scales the two PCC parameters to comparable magnitudes.

    Section 4.5 (LF1): "The parameters are scaled so that neither of the
    two would dominate the loss function." We divide each target column by
    its training-set mean absolute value. Working in ``(a, log b)`` space,
    combined with the sign-constrained model heads, is what guarantees the
    predicted curve is monotonically non-increasing after unscaling.
    """

    def __init__(self) -> None:
        self.scale_: np.ndarray | None = None

    def fit(self, targets: np.ndarray) -> "TargetScaler":
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 2:
            raise FeaturizationError("target scaler expects a 2-D matrix")
        scale = np.abs(targets).mean(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, targets: np.ndarray) -> np.ndarray:
        if self.scale_ is None:
            raise NotFittedError("TargetScaler used before fit")
        return np.asarray(targets, dtype=float) / self.scale_

    def fit_transform(self, targets: np.ndarray) -> np.ndarray:
        return self.fit(targets).transform(targets)

    def inverse_transform(self, targets: np.ndarray) -> np.ndarray:
        if self.scale_ is None:
            raise NotFittedError("TargetScaler used before fit")
        return np.asarray(targets, dtype=float) * self.scale_
