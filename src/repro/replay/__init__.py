"""Arrival-driven multi-tenant workload replay (closed serving loop).

Jobs arrive from seeded per-tenant arrival processes, get a live token
recommendation from the :class:`~repro.serving.server.AllocationServer`,
are admitted into the shared pool by the
:class:`~repro.fleet.scheduler.FleetScheduler`, execute on the cluster
simulator, and report their observed run time back through the
:class:`~repro.tasq.monitoring.PredictionMonitor` — optionally
triggering retraining and a hot model swap mid-replay. See
``docs/replay.md`` and ``python -m repro replay``.
"""

from repro.replay.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    arrival_times,
    load_trace,
    split_round_robin,
)
from repro.replay.engine import (
    REPLAY_POLICIES,
    ReplayConfig,
    ReplayEngine,
    run_replay,
)
from repro.replay.report import ReplayReport, TenantStats, build_report
from repro.replay.tenants import TenantSpec, default_tenants

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "arrival_times",
    "load_trace",
    "split_round_robin",
    "TenantSpec",
    "default_tenants",
    "REPLAY_POLICIES",
    "ReplayConfig",
    "ReplayEngine",
    "run_replay",
    "ReplayReport",
    "TenantStats",
    "build_report",
]
