"""Replay outcome aggregation: per-tenant statistics and timelines.

Everything in a :class:`ReplayReport` is a *virtual-time* quantity
(arrival/start/finish clocks of the simulated cluster), never wall
time — which is what makes identically seeded replays bit-identical
regardless of host speed or worker count. :meth:`ReplayReport.signature`
hashes the canonical JSON form so tests can assert exactly that.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReplayError
from repro.scope.cluster import QueueOutcome, QueueReport

__all__ = ["TenantStats", "ReplayReport", "build_report"]


@dataclass(frozen=True)
class TenantStats:
    """Queueing statistics for one tenant's slice of the replay."""

    tenant: str
    family: str
    arrived: int
    completed: int
    rejected: int
    mean_wait: float
    p50_wait: float
    p95_wait: float
    p50_slowdown: float
    p95_slowdown: float
    #: Fraction of completed jobs whose slowdown met the tenant's SLO.
    slo_attainment: float

    def to_json(self) -> dict:
        return {
            "family": self.family,
            "arrived": self.arrived,
            "completed": self.completed,
            "rejected": self.rejected,
            "mean_wait_s": round(self.mean_wait, 6),
            "p50_wait_s": round(self.p50_wait, 6),
            "p95_wait_s": round(self.p95_wait, 6),
            "p50_slowdown": round(self.p50_slowdown, 6),
            "p95_slowdown": round(self.p95_slowdown, 6),
            "slo_attainment": round(self.slo_attainment, 6),
        }


@dataclass(frozen=True)
class ReplayReport:
    """Everything one seeded replay produced, cluster-wide."""

    policy: str
    admission: str
    capacity: int
    seed: int
    duration_s: float
    arrived: int
    completed: int
    rejected: int
    makespan: float
    mean_wait: float
    p50_wait: float
    p95_wait: float
    p50_slowdown: float
    p95_slowdown: float
    utilization: float
    peak_committed_tokens: int
    reallocations: int
    backfills: int
    retrain_events: int
    #: Server answer mix: status value -> count.
    response_mix: tuple[tuple[str, int], ...]
    tenants: tuple[TenantStats, ...]
    #: Pool utilization per timeline bin (committed token-seconds over
    #: capacity x bin width), covering [0, makespan].
    utilization_timeline: tuple[float, ...]
    #: Rolling median APE of the deployed model, sampled over the
    #: completion sequence (prediction-error drift; None until the
    #: monitor has observations).
    drift_timeline: tuple[float | None, ...]

    def to_json(self) -> dict:
        return {
            "policy": self.policy,
            "admission": self.admission,
            "capacity_tokens": self.capacity,
            "seed": self.seed,
            "duration_s": round(self.duration_s, 6),
            "arrived": self.arrived,
            "completed": self.completed,
            "rejected": self.rejected,
            "makespan_s": round(self.makespan, 6),
            "mean_wait_s": round(self.mean_wait, 6),
            "p50_wait_s": round(self.p50_wait, 6),
            "p95_wait_s": round(self.p95_wait, 6),
            "p50_slowdown": round(self.p50_slowdown, 6),
            "p95_slowdown": round(self.p95_slowdown, 6),
            "utilization": round(self.utilization, 6),
            "peak_committed_tokens": self.peak_committed_tokens,
            "reallocations": self.reallocations,
            "backfills": self.backfills,
            "retrain_events": self.retrain_events,
            "responses": dict(self.response_mix),
            "tenants": {t.tenant: t.to_json() for t in self.tenants},
            "utilization_timeline": [
                round(u, 6) for u in self.utilization_timeline
            ],
            "drift_timeline": [
                None if d is None else round(d, 6)
                for d in self.drift_timeline
            ],
        }

    def signature(self) -> str:
        """Content hash of the canonical JSON form (determinism probe)."""
        payload = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        lines = [
            f"policy {self.policy} · admission {self.admission} · "
            f"capacity {self.capacity} tokens · seed {self.seed}",
            f"arrived {self.arrived} = completed {self.completed} "
            f"+ rejected {self.rejected} · makespan "
            f"{self.makespan:,.0f}s · utilization {self.utilization:.0%}",
            f"wait p50/p95 {self.p50_wait:,.1f}/{self.p95_wait:,.1f}s · "
            f"slowdown p50/p95 {self.p50_slowdown:.2f}/"
            f"{self.p95_slowdown:.2f} · backfills {self.backfills} · "
            f"reallocations {self.reallocations} · "
            f"retrains {self.retrain_events}",
            "",
        ]
        header = (
            f"{'tenant':<12} {'family':<12} {'jobs':>5} {'rej':>4} "
            f"{'mean wait':>10} {'p95 wait':>9} {'p95 slow':>9} "
            f"{'SLO':>5}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for t in self.tenants:
            lines.append(
                f"{t.tenant:<12} {t.family:<12} {t.arrived:>5} "
                f"{t.rejected:>4} {t.mean_wait:>10,.1f} "
                f"{t.p95_wait:>9,.1f} {t.p95_slowdown:>9.2f} "
                f"{t.slo_attainment:>5.0%}"
            )
        return "\n".join(lines)


def utilization_timeline(
    outcomes: list[QueueOutcome], capacity: int, bins: int = 24
) -> tuple[float, ...]:
    """Committed-token share of the pool per makespan bin.

    Integrates each job's (granted tokens x overlap) into equal-width
    bins over ``[0, makespan]``. Grants topped up mid-run are credited
    at their final level — a bounded approximation the fleet report's
    exact ``token_seconds`` totals keep honest.
    """
    if not outcomes:
        return ()
    makespan = max(o.finish_time for o in outcomes)
    if makespan <= 0:
        return ()
    edges = np.linspace(0.0, makespan, bins + 1)
    held = np.zeros(bins)
    for o in outcomes:
        overlap = np.clip(
            np.minimum(o.finish_time, edges[1:])
            - np.maximum(o.start_time, edges[:-1]),
            0.0,
            None,
        )
        held += o.tokens * overlap
    width = makespan / bins
    return tuple(float(h / (capacity * width)) for h in held)


def downsample(
    series: list[float | None], points: int = 48
) -> tuple[float | None, ...]:
    """Thin a long per-completion series to at most ``points`` samples,
    always keeping the final value."""
    if len(series) <= points:
        return tuple(series)
    idx = np.unique(
        np.linspace(0, len(series) - 1, points).astype(int)
    )
    return tuple(series[i] for i in idx)


def build_report(
    *,
    policy: str,
    admission: str,
    capacity: int,
    seed: int,
    duration_s: float,
    outcomes_by_tenant: dict[str, list[QueueOutcome]],
    tenant_meta: dict[str, tuple[str, float]],
    arrivals_by_tenant: dict[str, int],
    rejected_by_tenant: dict[str, int],
    peak_committed_tokens: int,
    reallocations: int,
    backfills: int,
    retrain_events: int,
    response_counts: dict[str, int],
    drift_series: list[float | None],
    timeline_bins: int = 24,
) -> ReplayReport:
    """Assemble the report from the engine's raw accounting.

    ``tenant_meta`` maps tenant name to ``(family, slo_slowdown)``.
    """
    all_outcomes = [
        o for outs in outcomes_by_tenant.values() for o in outs
    ]
    if not all_outcomes:
        raise ReplayError("replay completed no jobs; nothing to report")
    cluster = QueueReport(
        outcomes=tuple(
            sorted(all_outcomes, key=lambda o: (o.start_time, o.job_id))
        ),
        capacity=capacity,
    )

    tenants = []
    for name in sorted(outcomes_by_tenant):
        outs = outcomes_by_tenant[name]
        family, slo = tenant_meta[name]
        if outs:
            slice_report = QueueReport(
                outcomes=tuple(outs), capacity=capacity
            )
            stats = TenantStats(
                tenant=name,
                family=family,
                arrived=arrivals_by_tenant.get(name, 0),
                completed=len(outs),
                rejected=rejected_by_tenant.get(name, 0),
                mean_wait=slice_report.mean_wait,
                p50_wait=slice_report.p50_wait,
                p95_wait=slice_report.p95_wait,
                p50_slowdown=slice_report.p50_slowdown,
                p95_slowdown=slice_report.p95_slowdown,
                slo_attainment=float(
                    np.mean([o.slowdown <= slo for o in outs])
                ),
            )
        else:
            stats = TenantStats(
                tenant=name,
                family=family,
                arrived=arrivals_by_tenant.get(name, 0),
                completed=0,
                rejected=rejected_by_tenant.get(name, 0),
                mean_wait=0.0,
                p50_wait=0.0,
                p95_wait=0.0,
                p50_slowdown=0.0,
                p95_slowdown=0.0,
                slo_attainment=0.0,
            )
        tenants.append(stats)

    return ReplayReport(
        policy=policy,
        admission=admission,
        capacity=capacity,
        seed=seed,
        duration_s=duration_s,
        arrived=sum(arrivals_by_tenant.values()),
        completed=len(all_outcomes),
        rejected=sum(rejected_by_tenant.values()),
        makespan=cluster.makespan,
        mean_wait=cluster.mean_wait,
        p50_wait=cluster.p50_wait,
        p95_wait=cluster.p95_wait,
        p50_slowdown=cluster.p50_slowdown,
        p95_slowdown=cluster.p95_slowdown,
        utilization=cluster.utilization,
        peak_committed_tokens=peak_committed_tokens,
        reallocations=reallocations,
        backfills=backfills,
        retrain_events=retrain_events,
        response_mix=tuple(sorted(response_counts.items())),
        tenants=tuple(tenants),
        utilization_timeline=utilization_timeline(
            all_outcomes, capacity, bins=timeline_bins
        ),
        drift_timeline=downsample(drift_series),
    )
