"""Arrival-driven multi-tenant replay with a closed serving loop.

The engine stitches the repo's layers into the loop a production
deployment runs continuously (the outer cycle of the paper's Figure 4):

.. code-block:: text

     seeded arrivals        AllocationServer          FleetScheduler
    (per tenant)  ──job──►  recommend tokens  ──demand──►  admit/grant
         ▲                      │    ▲                        │
         │                      │    │ refresh_model()        ▼
         │               PredictionMonitor ◄──observe──  ClusterExecutor
         │                      │        (actual run time at the grant)
         └── retrain hook ◄─────┘  (optional: refit + hot-swap + reset)

Determinism contract: every random choice (arrival gaps, generated
plans, execution noise) comes from a substream derived from the replay
seed, all virtual-time events are processed in a total order
``(time, tenant, job)``, and the server is driven synchronously — so
one seed yields one bit-identical :class:`~repro.replay.report
.ReplayReport`, independent of host speed or the ``workers`` setting
(workers only parallelize the bootstrap, which is itself bit-identical
by the generator's pure-function-of-(seed, index) design).

The paper's regimes map onto admission like so: ``default`` holds the
user request, ``peak`` is the clairvoyant per-job baseline (exactly the
observed peak), ``tasq`` holds the server's per-job recommendation, and
the fleet policies (``water_filling`` / ``knapsack`` / ``deadline``)
let the global allocator squeeze grants between an SLO floor and the
server's recommendation. Degraded (fallback) answers always admit at a
fixed grant — their flat PCC carries no squeeze information.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReplayError
from repro.fleet import POLICY_NAMES, FleetJob, FleetScheduler, JobDemand
from repro.fleet.allocator import DeadlineAwarePolicy
from repro.models import build_dataset
from repro.models.xgboost_models import XGBoostPL
from repro.obs import trace
from repro.pcc.intervals import tokens_within_slowdown_at_risk
from repro.pcc.optimal import tokens_for_slowdown
from repro.replay.arrivals import arrival_times
from repro.replay.report import ReplayReport, build_report
from repro.replay.tenants import TenantSpec, default_tenants
from repro.scope.cluster import QueueOutcome
from repro.scope.execution import ClusterExecutor
from repro.scope.generator import (
    JobInstance,
    WorkloadGenerator,
    make_family_config,
)
from repro.scope.repository import JobRepository, TelemetryRecord, run_workload
from repro.scope.stages import decompose_stages
from repro.serving import (
    AllocationServer,
    PromotionGate,
    ServerConfig,
    build_server,
)
from repro.serving.server import ResponseStatus, ServeResponse
from repro.tasq import ScoringPipeline
from repro.tasq.model_store import ModelStore
from repro.tasq.monitoring import PredictionMonitor

__all__ = ["REPLAY_POLICIES", "ReplayConfig", "ReplayEngine", "run_replay"]

#: Baseline regimes plus every global-allocator policy.
REPLAY_POLICIES = ("default", "peak", "tasq") + POLICY_NAMES

_MODEL_NAME = "replay-pl"


@dataclass(frozen=True)
class ReplayConfig:
    """Everything that parameterizes one replay run."""

    #: Virtual seconds of arrivals to generate.
    duration_s: float = 900.0
    policy: str = "water_filling"
    seed: int = 0
    #: Shared token pool; None derives the largest single request.
    capacity: int | None = None
    #: Historical jobs executed up-front to train the serving model.
    bootstrap_jobs: int = 120
    #: Fleet-policy SLO: never squeeze a job beyond this predicted
    #: slowdown versus its request.
    slowdown_floor: float = 0.25
    #: Deadline policy: per-job deadline as (1+slack) x predicted run
    #: time at the requested tokens.
    deadline_slack: float = 0.25
    admission: str = "fcfs"
    #: Top up running jobs from idle tokens (fleet policies only).
    reallocate_running: bool = True
    #: Refit + hot-swap the model when the drift monitor fires.
    retrain: bool = False
    #: How a retrained model reaches serving: "immediate" hot-swaps it
    #: on the spot; "shadow" stages it as a champion-challenger and
    #: only the promotion gate's verdict deploys it.
    promotion: str = "immediate"
    #: Risk level for recommendations and deadline floors (None = point
    #: estimates; see ``docs/uncertainty.md``). Enables quantile heads
    #: on the serving model.
    risk: float | None = None
    #: Drift monitor tuning (short replays need a shorter fuse than the
    #: serving default).
    drift_window: int = 60
    drift_threshold: float = 50.0
    drift_patience: int = 10
    drift_min_observations: int = 20
    #: Process-pool size for the bootstrap (bit-identical at any value).
    workers: int = 1
    timeline_bins: int = 24

    def __post_init__(self) -> None:
        if self.policy not in REPLAY_POLICIES:
            raise ReplayError(
                f"unknown replay policy {self.policy!r}; "
                f"known: {', '.join(REPLAY_POLICIES)}"
            )
        if self.duration_s <= 0:
            raise ReplayError("replay duration must be positive")
        if self.bootstrap_jobs < 10:
            raise ReplayError(
                "bootstrapping a model needs at least 10 jobs"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ReplayError("cluster capacity must be positive")
        if not 0 <= self.slowdown_floor:
            raise ReplayError("slowdown floor must be non-negative")
        if self.promotion not in ("immediate", "shadow"):
            raise ReplayError(
                f"unknown promotion mode {self.promotion!r}; "
                "known: immediate, shadow"
            )
        if self.risk is not None and not 0.0 < self.risk < 1.0:
            raise ReplayError("risk must be inside (0, 1)")


@dataclass
class _Arrival:
    """One merged-timeline event: a job arriving for a tenant."""

    time: float
    tenant_index: int
    job: JobInstance
    exec_seed: int
    #: Queue-level id; tenant-prefixed so tenants can never collide.
    ref: str = field(init=False)

    def __post_init__(self) -> None:
        self.ref = f"t{self.tenant_index}/{self.job.job_id}"


class ReplayEngine:
    """Runs one seeded replay; see the module docstring for the loop."""

    def __init__(
        self,
        config: ReplayConfig | None = None,
        tenants: tuple[TenantSpec, ...] | None = None,
    ) -> None:
        self.config = config or ReplayConfig()
        self.tenants = tenants or default_tenants(3)
        if not self.tenants:
            raise ReplayError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ReplayError("tenant names must be unique")
        # Executor shared by bootstrap history and replay executions:
        # per-task jitter, stragglers, and a day-to-day work factor the
        # bootstrap-trained model has never seen at replay scale.
        self.executor = ClusterExecutor(
            noise_scale=0.08, straggler_rate=0.02, work_noise=0.10
        )
        self._retrain_count = 0
        #: Per-tenant outcomes of the last run (benchmark introspection;
        #: deliberately not part of the hashed ReplayReport).
        self.outcomes_by_tenant_: dict[str, list[QueueOutcome]] = {}

    @property
    def _wants_intervals(self) -> bool:
        """Quantile heads are needed for risk floors and shadow gating."""
        return (
            self.config.risk is not None
            or self.config.promotion == "shadow"
        )

    def _fit_model(self, repository: JobRepository, seed: int) -> XGBoostPL:
        return XGBoostPL(
            seed=seed, quantile_heads=self._wants_intervals
        ).fit(build_dataset(repository, workers=self.config.workers))

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _bootstrap(self) -> tuple[AllocationServer, JobRepository]:
        """Build history, train the initial model, start the server."""
        cfg = self.config
        with trace.span("replay.bootstrap", jobs=cfg.bootstrap_jobs):
            generator = WorkloadGenerator(seed=cfg.seed)
            jobs = generator.generate(
                cfg.bootstrap_jobs, workers=cfg.workers
            )
            repository = run_workload(
                jobs,
                executor=self.executor,
                seed=cfg.seed + 1,
                workers=cfg.workers,
            )
            model = self._fit_model(repository, cfg.seed)
            store = ModelStore()
            store.register(_MODEL_NAME, model, {"bootstrap": True})
            monitor = PredictionMonitor(
                window=cfg.drift_window,
                error_threshold=cfg.drift_threshold,
                patience=cfg.drift_patience,
                min_observations=cfg.drift_min_observations,
            )
            # One synchronous worker, batch size 1, and an effectively
            # disabled breaker: every request resolves before the next
            # is issued, so the serving path is a deterministic function
            # of the request sequence (scoring failures still degrade to
            # the fallback answer, per request).
            server = build_server(
                ScoringPipeline(model, risk=cfg.risk),
                ServerConfig(
                    workers=1,
                    max_batch_size=1,
                    max_batch_wait_s=0.0,
                    breaker_failure_threshold=10**9,
                ),
                procs=1,
                store=store,
                model_name=_MODEL_NAME,
                repository=repository,
                monitor=monitor,
            )
            return server, repository

    def _tenant_seed(self, index: int) -> int:
        # Distinct from the bootstrap generator's seed (cfg.seed) and
        # from every other tenant; job ids embed the generator seed, so
        # distinct seeds also keep raw job ids unique.
        return self.config.seed * 1009 + 17 * (index + 1)

    def _arrivals(self) -> list[_Arrival]:
        """Seeded arrival timeline across all tenants, time-ordered."""
        cfg = self.config
        events: list[_Arrival] = []
        for index, tenant in enumerate(self.tenants):
            rng = np.random.default_rng(
                np.random.SeedSequence((cfg.seed, 7, index))
            )
            times = arrival_times(tenant.arrival, cfg.duration_s, rng)
            if times.size == 0:
                continue
            split = (
                int(np.searchsorted(times, tenant.shift_at_s))
                if tenant.shift_at_s is not None
                else times.size
            )
            jobs: list[JobInstance] = []
            if split > 0:
                generator = WorkloadGenerator(
                    config=make_family_config(tenant.family),
                    seed=self._tenant_seed(index),
                )
                jobs.extend(
                    generator.generate(split, workers=cfg.workers)
                )
            if split < times.size:
                # Post-shift jobs come from an independent generator (a
                # disjoint seed stream) so the pre-shift timeline is
                # bit-identical to the no-shift run up to the shift.
                shifted = WorkloadGenerator(
                    config=make_family_config(tenant.shift_family),
                    seed=self._tenant_seed(index) + 500009,
                )
                jobs.extend(
                    shifted.generate(
                        times.size - split, workers=cfg.workers
                    )
                )
            events.extend(
                _Arrival(
                    time=float(t),
                    tenant_index=index,
                    job=job,
                    exec_seed=0,
                )
                for t, job in zip(times, jobs)
            )
        if not events:
            raise ReplayError(
                "no arrivals in the replay window; lengthen --duration "
                "or shorten the inter-arrival gap"
            )
        events.sort(key=lambda e: (e.time, e.tenant_index, e.job.job_id))
        # Per-event execution seeds, drawn in merged order so the
        # timeline (not the host) defines every noise stream.
        root = np.random.default_rng(
            np.random.SeedSequence((cfg.seed, 11))
        )
        for event in events:
            event.exec_seed = int(root.integers(0, 2**63))
        return events

    def _capacity(self, events: list[_Arrival]) -> int:
        if self.config.capacity is not None:
            return self.config.capacity
        return max(e.job.requested_tokens for e in events)

    # ------------------------------------------------------------------
    # per-job policy mapping
    # ------------------------------------------------------------------
    def _admit(
        self,
        event: _Arrival,
        response: ServeResponse,
        capacity: int,
        executions: dict[str, TelemetryRecord],
    ) -> FleetJob | None:
        """Map one server answer to a fleet demand (None = reject)."""
        cfg = self.config
        job = event.job
        requested = min(job.requested_tokens, capacity)
        if response.recommendation is None:  # REJECTED: shed upstream
            return None
        pcc = response.recommendation.pcc

        def runtime_fn(tokens: int, _event=event, _req=requested) -> float:
            # Re-seedable closure: the same tokens always replays the
            # same execution, and the skyline is kept for retraining.
            result = self.executor.execute(
                decompose_stages(_event.job.plan),
                tokens,
                rng=np.random.default_rng(_event.exec_seed),
            )
            executions[_event.ref] = TelemetryRecord(
                job_id=_event.ref,
                plan=_event.job.plan,
                requested_tokens=_req,
                skyline=result.skyline,
                submit_day=_event.job.submit_day,
                recurring=_event.job.recurring,
            )
            return result.makespan

        model_backed = response.status in (
            ResponseStatus.OK,
            ResponseStatus.CACHED,
        )
        if cfg.policy == "default":
            # The raw user request is the policy; a request larger than
            # the whole pool is shed (the run loop counts it rejected).
            lo = hi = job.requested_tokens
        elif cfg.policy == "tasq":
            lo = hi = min(capacity, response.recommendation.optimal_tokens)
        elif cfg.policy == "peak":
            # Clairvoyant: observe the run at the request, then hold
            # exactly its peak for the observed duration.
            makespan = runtime_fn(requested)
            peak = executions[event.ref].skyline.peak
            lo = hi = min(capacity, max(1, int(math.ceil(peak))))
            return FleetJob(
                job_id=event.ref,
                arrival_time=event.time,
                demand=JobDemand(
                    job_id=event.ref, pcc=pcc, min_tokens=lo, max_tokens=hi
                ),
                runtime_fn=lambda tokens, _m=makespan: _m,
            )
        elif not model_backed:
            # Fallback answers carry a flat PCC — no information to
            # squeeze on; admit at the degraded recommendation as-is.
            lo = hi = min(capacity, response.tokens or requested)
        else:
            floor = tokens_for_slowdown(pcc, requested, cfg.slowdown_floor)
            interval = response.recommendation.pcc_interval
            if (
                cfg.risk is not None
                and interval is not None
                and not interval.is_degenerate
            ):
                # Strengthen the SLO floor to the risk quantile: enough
                # tokens that the slowdown budget holds with
                # probability ``risk``, not merely in expectation.
                risk_floor = tokens_within_slowdown_at_risk(
                    interval, cfg.risk, requested, cfg.slowdown_floor
                )
                if risk_floor is not None:
                    floor = max(floor, risk_floor)
            lo = min(capacity, min(requested, max(1, floor)))
            # The recommendation is also the grant ceiling: past the
            # knee every extra token buys less than the pipeline's
            # improvement threshold, so filling grants up to the raw
            # request would re-create exactly the over-allocation the
            # paper measures (and hand the Default baseline a pool that
            # fleet policies have already wasted).
            hi = max(
                lo, min(capacity, response.recommendation.optimal_tokens)
            )

        deadline = None
        if cfg.policy == "deadline" and model_backed:
            deadline = float(
                (1.0 + cfg.deadline_slack)
                * response.recommendation.predicted_runtime_at_requested
            )
        return FleetJob(
            job_id=event.ref,
            arrival_time=event.time,
            demand=JobDemand(
                job_id=event.ref,
                pcc=pcc,
                min_tokens=lo,
                max_tokens=hi,
                deadline=deadline,
                pcc_interval=(
                    response.recommendation.pcc_interval
                    if model_backed
                    else None
                ),
            ),
            runtime_fn=runtime_fn,
        )

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def _observe(
        self,
        outcome: QueueOutcome,
        responses: dict[str, ServeResponse],
        grants: dict[str, int],
        server: AllocationServer,
        drift_series: list[float | None],
        history: JobRepository,
        executions: dict[str, TelemetryRecord],
    ) -> None:
        """Close the loop for one finished job."""
        response = responses[outcome.job_id]
        if (
            response.recommendation is not None
            and outcome.runtime > 0
        ):
            # Hold the model accountable at the allocation the job
            # actually ran with, not at the recommendation it may have
            # been squeezed away from.
            granted = grants[outcome.job_id]
            rec = response.recommendation
            response = dataclasses.replace(
                response,
                recommendation=dataclasses.replace(
                    rec,
                    optimal_tokens=granted,
                    predicted_runtime_at_optimal=float(
                        rec.pcc.runtime(granted)
                    ),
                ),
            )
        server.record_completion(response, float(outcome.runtime))
        drift_series.append(server.monitor.rolling_median_ape)
        if (
            self.config.retrain
            and server.monitor.needs_retraining
            and not server.has_challenger
        ):
            self._retrain(server, history, executions)

    def _retrain(
        self,
        server: AllocationServer,
        history: JobRepository,
        executions: dict[str, TelemetryRecord],
    ) -> None:
        """Refit on bootstrap + replayed telemetry; deploy per config.

        ``promotion="immediate"`` registers + hot-swaps + resets on the
        spot; ``promotion="shadow"`` stages the refit model as a
        challenger — it shadow-scores live traffic and only the
        promotion gate's verdict deploys it (the champion monitor is
        *not* reset, so a rejected challenger leaves the drift signal
        armed for another attempt).
        """
        self._retrain_count += 1
        with trace.span(
            "replay.retrain", round=self._retrain_count,
            observed=len(executions),
        ):
            merged = JobRepository()
            for record in history:
                merged.add(record)
            for ref in sorted(executions):
                merged.add(executions[ref])
            model = self._fit_model(
                merged, self.config.seed + self._retrain_count
            )
            if self.config.promotion == "shadow":
                server.stage_challenger(
                    model,
                    gate=PromotionGate(
                        min_observations=self.config
                        .drift_min_observations,
                    ),
                )
                return
            assert server._store is not None
            server._store.register(
                _MODEL_NAME, model, {"retrain": self._retrain_count}
            )
            server.refresh_model()
            server.monitor.reset()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self) -> ReplayReport:
        cfg = self.config
        server, history = self._bootstrap()
        events = self._arrivals()
        capacity = self._capacity(events)

        fleet_policy: str | DeadlineAwarePolicy = (
            cfg.policy if cfg.policy in POLICY_NAMES else "water_filling"
        )
        if cfg.policy == "deadline" and cfg.risk is not None:
            fleet_policy = DeadlineAwarePolicy(risk=cfg.risk)
        scheduler = FleetScheduler(
            capacity,
            policy=fleet_policy,
            # Baselines are fixed-grant by definition; only the fleet
            # policies may spend idle tokens on running jobs.
            reallocate_running=(
                cfg.reallocate_running and cfg.policy in POLICY_NAMES
            ),
            admission=cfg.admission,
        )
        stream = scheduler.stream()

        responses: dict[str, ServeResponse] = {}
        grants: dict[str, int] = {}
        executions: dict[str, TelemetryRecord] = {}
        tenant_of: dict[str, str] = {}
        arrivals_by_tenant: dict[str, int] = {
            t.name: 0 for t in self.tenants
        }
        rejected_by_tenant: dict[str, int] = {
            t.name: 0 for t in self.tenants
        }
        outcomes_by_tenant: dict[str, list[QueueOutcome]] = {
            t.name: [] for t in self.tenants
        }
        response_counts: dict[str, int] = {}
        drift_series: list[float | None] = []

        def flush(completed: list[QueueOutcome]) -> None:
            for outcome in completed:
                grants[outcome.job_id] = outcome.tokens
                outcomes_by_tenant[tenant_of[outcome.job_id]].append(
                    outcome
                )
                self._observe(
                    outcome, responses, grants, server,
                    drift_series, history, executions,
                )

        with server, trace.span(
            "replay.loop", events=len(events), policy=cfg.policy
        ):
            for event in events:
                tenant = self.tenants[event.tenant_index]
                arrivals_by_tenant[tenant.name] += 1
                tenant_of[event.ref] = tenant.name
                # 1) everything that finished before this arrival is
                #    observed first — feedback precedes the next
                #    recommendation, exactly as in production.
                flush(stream.advance(event.time))
                # 2) recommend
                response = server.request(
                    event.job.plan, event.job.requested_tokens
                )
                responses[event.ref] = response
                response_counts[response.status.value] = (
                    response_counts.get(response.status.value, 0) + 1
                )
                # 3) admit (or shed)
                fleet_job = self._admit(
                    event, response, capacity, executions
                )
                if (
                    fleet_job is None
                    or fleet_job.demand.min_tokens > capacity
                ):
                    rejected_by_tenant[tenant.name] += 1
                    continue
                stream.submit(fleet_job)
            # 4) run the tail out
            flush(stream.drain())

        fleet_report = stream.report()
        self.outcomes_by_tenant_ = outcomes_by_tenant
        return build_report(
            policy=cfg.policy,
            admission=cfg.admission,
            capacity=capacity,
            seed=cfg.seed,
            duration_s=cfg.duration_s,
            outcomes_by_tenant=outcomes_by_tenant,
            tenant_meta={
                t.name: (t.family, t.slo_slowdown) for t in self.tenants
            },
            arrivals_by_tenant=arrivals_by_tenant,
            rejected_by_tenant=rejected_by_tenant,
            peak_committed_tokens=fleet_report.peak_committed_tokens,
            reallocations=fleet_report.reallocations,
            backfills=fleet_report.backfills,
            retrain_events=self._retrain_count,
            response_counts=response_counts,
            drift_series=drift_series,
            timeline_bins=cfg.timeline_bins,
        )


def run_replay(
    config: ReplayConfig | None = None,
    tenants: tuple[TenantSpec, ...] | None = None,
) -> ReplayReport:
    """Convenience wrapper: build an engine and run it once."""
    return ReplayEngine(config, tenants).run()
