"""Tenant profiles: who submits jobs, what kind, and how often.

A tenant bundles a workload family (``repro.scope.generator``'s
declarative :data:`~repro.scope.generator.WORKLOAD_FAMILIES`), an
arrival process, and a per-tenant slowdown SLO. The replay engine gives
each tenant its own deterministic generator and arrival substream, so
tenants are statistically independent but jointly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReplayError
from repro.replay.arrivals import ArrivalSpec
from repro.scope.generator import FAMILY_NAMES

__all__ = ["TenantSpec", "default_tenants"]

#: Family rotation used when tenants are auto-named (tpch first: it is
#: the repo's canonical workload and the one the bootstrap model sees).
_FAMILY_ROTATION = ("tpch", "streaming", "ml_training", "etl_skew")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload profile."""

    name: str
    #: Workload family key (see ``repro.scope.WORKLOAD_FAMILIES``).
    family: str = "tpch"
    arrival: ArrivalSpec = ArrivalSpec()
    #: SLO: a completed job attains its SLO when its slowdown
    #: (turnaround / run time) is at most this factor.
    slo_slowdown: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ReplayError("tenants need a name")
        if self.family not in FAMILY_NAMES:
            raise ReplayError(
                f"unknown workload family {self.family!r}; "
                f"known: {', '.join(FAMILY_NAMES)}"
            )
        if self.slo_slowdown < 1:
            raise ReplayError("slowdown SLOs below 1 are unattainable")


def default_tenants(
    count: int,
    arrival: ArrivalSpec | None = None,
    slo_slowdown: float = 2.0,
) -> tuple[TenantSpec, ...]:
    """``count`` tenants cycling through the workload families.

    All tenants share one arrival *spec*; the engine still hands each
    its own random substream, so their realized timelines differ.
    """
    if count < 1:
        raise ReplayError("need at least one tenant")
    arrival = arrival or ArrivalSpec()
    return tuple(
        TenantSpec(
            name=f"tenant-{i}",
            family=_FAMILY_ROTATION[i % len(_FAMILY_ROTATION)],
            arrival=arrival,
            slo_slowdown=slo_slowdown,
        )
        for i in range(count)
    )
