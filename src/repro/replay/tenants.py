"""Tenant profiles: who submits jobs, what kind, and how often.

A tenant bundles a workload family (``repro.scope.generator``'s
declarative :data:`~repro.scope.generator.WORKLOAD_FAMILIES`), an
arrival process, and a per-tenant slowdown SLO. The replay engine gives
each tenant its own deterministic generator and arrival substream, so
tenants are statistically independent but jointly reproducible.

A tenant may also declare a mid-stream **workload shift**
(``shift_family`` + ``shift_at_s``): jobs arriving after the shift time
are drawn from a different family generator, which is how the drift
benchmarks inject a distribution change the bootstrap-trained model has
never seen (see ``docs/uncertainty.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReplayError
from repro.replay.arrivals import ArrivalSpec
from repro.scope.generator import FAMILY_NAMES

__all__ = ["TenantSpec", "default_tenants"]

#: Family rotation used when tenants are auto-named (tpch first: it is
#: the repo's canonical workload and the one the bootstrap model sees).
_FAMILY_ROTATION = ("tpch", "streaming", "ml_training", "etl_skew")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload profile."""

    name: str
    #: Workload family key (see ``repro.scope.WORKLOAD_FAMILIES``).
    family: str = "tpch"
    arrival: ArrivalSpec = ArrivalSpec()
    #: SLO: a completed job attains its SLO when its slowdown
    #: (turnaround / run time) is at most this factor.
    slo_slowdown: float = 2.0
    #: Optional mid-stream workload shift: jobs arriving at or after
    #: ``shift_at_s`` virtual seconds come from ``shift_family``
    #: instead of ``family``. Both must be set together.
    shift_family: str | None = None
    shift_at_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ReplayError("tenants need a name")
        if self.family not in FAMILY_NAMES:
            raise ReplayError(
                f"unknown workload family {self.family!r}; "
                f"known: {', '.join(FAMILY_NAMES)}"
            )
        if self.slo_slowdown < 1:
            raise ReplayError("slowdown SLOs below 1 are unattainable")
        if (self.shift_family is None) != (self.shift_at_s is None):
            raise ReplayError(
                "shift_family and shift_at_s must be set together"
            )
        if self.shift_family is not None:
            if self.shift_family not in FAMILY_NAMES:
                raise ReplayError(
                    f"unknown shift family {self.shift_family!r}; "
                    f"known: {', '.join(FAMILY_NAMES)}"
                )
            if self.shift_at_s <= 0:
                raise ReplayError("shift time must be positive")


def default_tenants(
    count: int,
    arrival: ArrivalSpec | None = None,
    slo_slowdown: float = 2.0,
) -> tuple[TenantSpec, ...]:
    """``count`` tenants cycling through the workload families.

    All tenants share one arrival *spec*; the engine still hands each
    its own random substream, so their realized timelines differ.
    """
    if count < 1:
        raise ReplayError("need at least one tenant")
    arrival = arrival or ArrivalSpec()
    return tuple(
        TenantSpec(
            name=f"tenant-{i}",
            family=_FAMILY_ROTATION[i % len(_FAMILY_ROTATION)],
            arrival=arrival,
            slo_slowdown=slo_slowdown,
        )
        for i in range(count)
    )
