"""Seeded arrival processes for the multi-tenant replay harness.

Every process is a pure function of ``(spec, duration, rng)`` — the
replay engine hands each tenant its own deterministic substream, so the
full arrival timeline is reproducible bit-for-bit from the replay seed.

Four families:

* ``poisson`` — homogeneous Poisson: i.i.d. exponential gaps.
* ``diurnal`` — inhomogeneous Poisson whose rate follows a sinusoidal
  day/night cycle (``period_s``, peak-to-mean swing ``amplitude``),
  realized by Lewis-Shedler thinning against the peak rate.
* ``bursty`` — a two-state Markov-modulated Poisson process: calm
  stretches at the base rate broken by bursts at ``burst_factor`` times
  the base rate, ``burst_fraction`` of the time.
* ``trace`` — replay of explicit timestamps (e.g. parsed from a
  production trace file); no randomness at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import ReplayError

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "arrival_times",
    "load_trace",
    "split_round_robin",
]

ARRIVAL_KINDS = ("poisson", "diurnal", "bursty", "trace")


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of one tenant's arrival process."""

    kind: str = "poisson"
    #: Mean inter-arrival gap (seconds) — the base rate is ``1 / gap``.
    mean_gap_s: float = 30.0
    #: Diurnal cycle length (seconds).
    period_s: float = 600.0
    #: Diurnal swing: rate(t) = base * (1 + amplitude * sin(...)),
    #: so 0 degenerates to plain Poisson; must stay below 1.
    amplitude: float = 0.6
    #: Burst-state rate multiplier (bursty only).
    burst_factor: float = 6.0
    #: Long-run fraction of time spent bursting.
    burst_fraction: float = 0.15
    #: Mean length of one burst (seconds).
    burst_mean_s: float = 60.0
    #: Explicit timestamps (trace replay only), non-decreasing.
    trace: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ReplayError(
                f"unknown arrival kind {self.kind!r}; "
                f"known: {', '.join(ARRIVAL_KINDS)}"
            )
        if self.mean_gap_s <= 0:
            raise ReplayError("mean inter-arrival gap must be positive")
        if not 0 <= self.amplitude < 1:
            raise ReplayError("diurnal amplitude must be in [0, 1)")
        if self.period_s <= 0:
            raise ReplayError("diurnal period must be positive")
        if self.burst_factor < 1:
            raise ReplayError("burst factor must be at least 1")
        if not 0 <= self.burst_fraction < 1:
            raise ReplayError("burst fraction must be in [0, 1)")
        if self.burst_mean_s <= 0:
            raise ReplayError("burst length must be positive")
        if self.kind == "trace":
            if not self.trace:
                raise ReplayError("trace arrivals need timestamps")
            times = np.asarray(self.trace, dtype=float)
            if (times < 0).any() or (np.diff(times) < 0).any():
                raise ReplayError(
                    "trace timestamps must be non-negative and sorted"
                )


def arrival_times(
    spec: ArrivalSpec, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """All arrival timestamps in ``[0, duration_s)`` for one tenant."""
    if duration_s <= 0:
        raise ReplayError("replay duration must be positive")
    if spec.kind == "poisson":
        times = _poisson(1.0 / spec.mean_gap_s, duration_s, rng)
    elif spec.kind == "diurnal":
        times = _diurnal(spec, duration_s, rng)
    elif spec.kind == "bursty":
        times = _bursty(spec, duration_s, rng)
    else:  # trace
        trace = np.asarray(spec.trace, dtype=float)
        times = trace[trace < duration_s]
    return times


def _poisson(
    rate: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    # Draw gaps in slabs (cheaper than one-at-a-time) until past the end.
    expected = max(16, int(rate * duration_s * 1.5))
    gaps = rng.exponential(1.0 / rate, size=expected)
    times = np.cumsum(gaps)
    while times.size and times[-1] < duration_s:
        more = np.cumsum(
            rng.exponential(1.0 / rate, size=expected)
        )
        times = np.concatenate([times, times[-1] + more])
    return times[times < duration_s]


def _diurnal(
    spec: ArrivalSpec, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    base = 1.0 / spec.mean_gap_s
    peak = base * (1.0 + spec.amplitude)
    candidates = _poisson(peak, duration_s, rng)
    # Thin each candidate by the instantaneous relative rate. The
    # uniforms are drawn in candidate order, so the realization is a
    # pure function of the rng stream.
    keep_p = (
        base
        * (
            1.0
            + spec.amplitude
            * np.sin(2.0 * np.pi * candidates / spec.period_s)
        )
        / peak
    )
    return candidates[rng.random(candidates.size) < keep_p]


def _bursty(
    spec: ArrivalSpec, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    base = 1.0 / spec.mean_gap_s
    burst_rate = base * spec.burst_factor
    # Sojourn means chosen so the long-run burst-time share is
    # burst_fraction: mean_calm = mean_burst * (1 - f) / f.
    mean_burst = spec.burst_mean_s
    mean_calm = mean_burst * (1.0 - spec.burst_fraction) / max(
        spec.burst_fraction, 1e-9
    )
    times: list[float] = []
    clock = 0.0
    bursting = False
    while clock < duration_s:
        sojourn = float(
            rng.exponential(mean_burst if bursting else mean_calm)
        )
        end = min(duration_s, clock + sojourn)
        rate = burst_rate if bursting else base
        t = clock
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                break
            times.append(t)
        clock += sojourn
        bursting = not bursting
    return np.asarray(times, dtype=float)


def load_trace(path: str | Path) -> tuple[float, ...]:
    """Parse a trace file: one non-negative timestamp per line.

    Blank lines and ``#`` comments are ignored; timestamps are sorted.
    """
    values: list[float] = []
    for lineno, raw in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = float(line)
        except ValueError:
            raise ReplayError(
                f"{path}:{lineno}: not a timestamp: {line!r}"
            ) from None
        if value < 0:
            raise ReplayError(f"{path}:{lineno}: negative timestamp")
        values.append(value)
    if not values:
        raise ReplayError(f"{path}: trace file has no timestamps")
    return tuple(sorted(values))


def split_round_robin(
    times: tuple[float, ...], parts: int
) -> list[tuple[float, ...]]:
    """Deal one trace's timestamps across ``parts`` tenants, in order."""
    if parts < 1:
        raise ReplayError("need at least one tenant")
    return [tuple(times[i::parts]) for i in range(parts)]
