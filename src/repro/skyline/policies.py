"""Resource allocation policies (Figure 1).

The paper contrasts three baseline policies against TASQ's optimal
allocation:

* **Default allocation** — a static, cluster-wide default token count,
  independent of the job (what most SCOPE users pick today).
* **Peak allocation** — allocate the job's peak usage upfront (AutoToken).
* **Adaptive peak allocation** — start at the peak and progressively give
  up tokens so the allocation tracks the *remaining* peak (the step-shaped
  envelope in Figure 1).

Each policy maps a skyline to a per-second *allocation curve*; the
difference between the curve and the skyline is the over-allocation that
TASQ tries to recover.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SkylineError
from repro.skyline.skyline import Skyline

__all__ = [
    "AllocationPolicy",
    "DefaultAllocation",
    "PeakAllocation",
    "AdaptivePeakAllocation",
    "PolicyReport",
    "evaluate_policy",
]


class AllocationPolicy(ABC):
    """A rule mapping a job's skyline to a per-second token allocation."""

    #: Human-readable name used in benchmark output.
    name: str = "policy"

    @abstractmethod
    def allocation_curve(self, skyline: Skyline) -> np.ndarray:
        """Per-second allocation granted to the job."""

    def total_allocated(self, skyline: Skyline) -> float:
        """Token-seconds granted over the job's lifetime."""
        return float(self.allocation_curve(skyline).sum())


class DefaultAllocation(AllocationPolicy):
    """A static, job-independent default token count.

    Figure 1's example job uses fewer than 80 tokens but receives 125 by
    default; this class models that flat dashed line.
    """

    name = "default"

    def __init__(self, tokens: float) -> None:
        if tokens <= 0:
            raise SkylineError("default token count must be positive")
        self.tokens = float(tokens)

    def allocation_curve(self, skyline: Skyline) -> np.ndarray:
        return np.full(skyline.duration, self.tokens)


class PeakAllocation(AllocationPolicy):
    """Allocate the job's peak usage for its entire lifetime (AutoToken)."""

    name = "peak"

    def allocation_curve(self, skyline: Skyline) -> np.ndarray:
        return np.full(skyline.duration, skyline.peak)


class AdaptivePeakAllocation(AllocationPolicy):
    """Track the peak of the job's *remaining* lifetime.

    Models the adaptive policy of Bag et al. [9]: tokens released once the
    job can no longer need them are never re-acquired, producing the
    monotonically non-increasing staircase of Figure 1. Our idealised
    version assumes perfect knowledge of the remaining skyline.
    """

    name = "adaptive-peak"

    def allocation_curve(self, skyline: Skyline) -> np.ndarray:
        # Reverse running maximum = peak of the suffix starting at each second.
        reversed_max = np.maximum.accumulate(skyline.usage[::-1])
        return reversed_max[::-1].copy()


@dataclass(frozen=True)
class PolicyReport:
    """Over-allocation accounting for one policy on one job."""

    policy: str
    total_allocated: float
    total_used: float
    wasted: float

    @property
    def waste_fraction(self) -> float:
        """Fraction of granted token-seconds that went unused."""
        if self.total_allocated == 0:
            return 0.0
        return self.wasted / self.total_allocated


def evaluate_policy(policy: AllocationPolicy, skyline: Skyline) -> PolicyReport:
    """Quantify a policy's over-allocation on one job (Figure 1).

    Usage above the allocation curve is counted as used-at-capacity: a job
    cannot actually consume more than it was granted, so waste is always
    non-negative.
    """
    curve = policy.allocation_curve(skyline)
    used = np.minimum(skyline.usage, curve)
    wasted = float(np.clip(curve - skyline.usage, 0.0, None).sum())
    return PolicyReport(
        policy=policy.name,
        total_allocated=float(curve.sum()),
        total_used=float(used.sum()),
        wasted=wasted,
    )
