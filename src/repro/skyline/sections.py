"""Skyline sectioning and utilization bands.

Two related decompositions of a skyline are used in the paper:

* **Threshold sections** (Section 3.2, Algorithm 1): contiguous chunks that
  are entirely at-or-under or entirely over a candidate allocation. These
  drive the AREPAS simulator — over-allocation sections are copied verbatim
  and under-allocated sections are stretched.

* **Utilization bands** (Figure 5): regions colour-coded by how much of the
  allocated capacity is in use (near-minimum / low / moderate-high), used to
  visualise savings potential for peaky versus flat jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import SkylineError
from repro.skyline.skyline import Skyline

__all__ = [
    "Section",
    "split_sections",
    "UtilizationBand",
    "BandSegment",
    "classify_bands",
    "band_time_fractions",
]


@dataclass(frozen=True)
class Section:
    """A contiguous skyline chunk relative to an allocation threshold.

    Attributes
    ----------
    start, end:
        Half-open second interval ``[start, end)`` in the original skyline.
    usage:
        Usage values for the interval.
    over:
        True if the section's usage exceeds the threshold (its first value
        is above the threshold; by construction the whole section then is).
    """

    start: int
    end: int
    usage: np.ndarray
    over: bool

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def area(self) -> float:
        return float(self.usage.sum())


def split_sections(skyline: Skyline, threshold: float) -> list[Section]:
    """Split a skyline into maximal runs entirely over / not-over ``threshold``.

    This is lines 1-4 of Algorithm 1: boundaries fall wherever the sign of
    ``usage - threshold`` changes. Seconds with usage exactly equal to the
    threshold count as *not over* (they fit under the new allocation).
    """
    if threshold <= 0:
        raise SkylineError("threshold must be positive")
    usage = skyline.usage
    over_mask = usage > threshold
    boundaries = [0]
    boundaries.extend(
        int(i) for i in np.nonzero(over_mask[1:] != over_mask[:-1])[0] + 1
    )
    boundaries.append(len(usage))

    sections = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        sections.append(
            Section(
                start=start,
                end=end,
                usage=usage[start:end].copy(),
                over=bool(over_mask[start]),
            )
        )
    return sections


class UtilizationBand(Enum):
    """Colour-coded utilization levels from Figure 5."""

    MINIMUM = "minimum"  # red: near-minimum utilization
    LOW = "low"  # pink: low utilization
    HIGH = "high"  # green: moderate-to-high utilization


@dataclass(frozen=True)
class BandSegment:
    """A contiguous run of seconds falling in one utilization band."""

    start: int
    end: int
    band: UtilizationBand

    @property
    def duration(self) -> int:
        return self.end - self.start


def classify_bands(
    skyline: Skyline,
    allocation: float | None = None,
    low_cutoff: float = 0.25,
    high_cutoff: float = 0.5,
) -> list[BandSegment]:
    """Classify each second of a skyline into utilization bands.

    Utilization is measured against ``allocation`` (defaults to the peak).
    Seconds using at most ``low_cutoff`` of the allocation are *minimum*
    (red), those between the cutoffs are *low* (pink), and the rest are
    *high* (green) — mirroring Figure 5's colour coding.
    """
    if allocation is None:
        allocation = skyline.peak
    if allocation <= 0:
        raise SkylineError("allocation must be positive")
    if not 0 < low_cutoff < high_cutoff <= 1:
        raise SkylineError("cutoffs must satisfy 0 < low < high <= 1")

    utilization = skyline.usage / allocation
    bands = np.where(
        utilization <= low_cutoff,
        0,
        np.where(utilization <= high_cutoff, 1, 2),
    )
    order = [UtilizationBand.MINIMUM, UtilizationBand.LOW, UtilizationBand.HIGH]

    segments = []
    start = 0
    for i in range(1, len(bands) + 1):
        if i == len(bands) or bands[i] != bands[start]:
            segments.append(
                BandSegment(start=start, end=i, band=order[int(bands[start])])
            )
            start = i
    return segments


def band_time_fractions(
    skyline: Skyline,
    allocation: float | None = None,
    low_cutoff: float = 0.25,
    high_cutoff: float = 0.5,
) -> dict[UtilizationBand, float]:
    """Fraction of run time spent in each utilization band.

    Peaky jobs (Figure 5a) spend most of their time in the red/pink bands;
    flat jobs (Figure 5b) in the green band.
    """
    segments = classify_bands(skyline, allocation, low_cutoff, high_cutoff)
    totals = {band: 0 for band in UtilizationBand}
    for segment in segments:
        totals[segment.band] += segment.duration
    duration = skyline.duration
    return {band: seconds / duration for band, seconds in totals.items()}
