"""Skyline data structures, sectioning, and allocation policies."""

from repro.skyline.policies import (
    AdaptivePeakAllocation,
    AllocationPolicy,
    DefaultAllocation,
    PeakAllocation,
    PolicyReport,
    evaluate_policy,
)
from repro.skyline.sections import (
    BandSegment,
    Section,
    UtilizationBand,
    band_time_fractions,
    classify_bands,
    split_sections,
)
from repro.skyline.skyline import Skyline

__all__ = [
    "Skyline",
    "Section",
    "split_sections",
    "UtilizationBand",
    "BandSegment",
    "classify_bands",
    "band_time_fractions",
    "AllocationPolicy",
    "DefaultAllocation",
    "PeakAllocation",
    "AdaptivePeakAllocation",
    "PolicyReport",
    "evaluate_policy",
]
