"""Skyline data structures, sectioning, and allocation policies.

Reproduces the skyline half of the paper's motivation and simulator
input: §1 / Figure 1 (per-second token-usage skylines and the Default,
Peak, and Adaptive-Peak allocation policies whose over-allocation gap
motivates TASQ) and §3.2 / Figure 5 (splitting a skyline into
contiguous sections above/below the allocation threshold, plus the
utilization bands used to characterise peaky vs flat jobs). The
sections computed here are the unit AREPAS (`repro.arepas`) stretches
when simulating a lower allocation.
"""

from repro.skyline.policies import (
    AdaptivePeakAllocation,
    AllocationPolicy,
    DefaultAllocation,
    PeakAllocation,
    PolicyReport,
    evaluate_policy,
)
from repro.skyline.sections import (
    BandSegment,
    Section,
    UtilizationBand,
    band_time_fractions,
    classify_bands,
    split_sections,
)
from repro.skyline.skyline import Skyline

__all__ = [
    "Skyline",
    "Section",
    "split_sections",
    "UtilizationBand",
    "BandSegment",
    "classify_bands",
    "band_time_fractions",
    "AllocationPolicy",
    "DefaultAllocation",
    "PeakAllocation",
    "AdaptivePeakAllocation",
    "PolicyReport",
    "evaluate_policy",
]
