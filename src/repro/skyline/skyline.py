"""Resource-usage skylines.

The paper represents a job's resource usage as a *skyline*: the time series
of tokens in use, discretized at one-second granularity (Section 1 and
Section 3.2). A 1x1 cell in the skyline plot is one *token-second*, and the
area under the skyline is the total work performed by the job.

:class:`Skyline` is an immutable wrapper around a non-negative integer-ish
numpy vector, one entry per second, providing the geometric quantities the
rest of the system needs: area, peak, duration, utilization statistics, and
resampling helpers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import SkylineError

__all__ = ["Skyline"]


class Skyline:
    """A job's per-second token usage.

    Parameters
    ----------
    usage:
        Token usage per second. Values must be finite and non-negative.
        Fractional values are allowed (the cluster simulator can report
        average usage within a second) but most workflows use integers.

    Notes
    -----
    Instances are immutable: the underlying array is copied on construction
    and flagged read-only, so skylines can be shared safely between the
    repository, the AREPAS simulator, and validation code.
    """

    __slots__ = ("_usage",)

    def __init__(self, usage: Sequence[float] | np.ndarray) -> None:
        arr = np.asarray(usage, dtype=np.float64).copy()
        if arr.ndim != 1:
            raise SkylineError(f"skyline must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise SkylineError("skyline must contain at least one second of usage")
        if not np.all(np.isfinite(arr)):
            raise SkylineError("skyline contains non-finite values")
        if np.any(arr < 0):
            raise SkylineError("skyline contains negative token usage")
        arr.setflags(write=False)
        self._usage = arr

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def usage(self) -> np.ndarray:
        """The read-only per-second usage vector."""
        return self._usage

    def __len__(self) -> int:
        return int(self._usage.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self._usage)

    def __getitem__(self, index: int | slice) -> float | np.ndarray:
        return self._usage[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Skyline):
            return NotImplemented
        return self._usage.shape == other._usage.shape and bool(
            np.allclose(self._usage, other._usage)
        )

    def __hash__(self) -> int:
        return hash((self._usage.size, self._usage.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Skyline(duration={self.duration}s, peak={self.peak:.0f}, "
            f"area={self.area:.0f} token-s)"
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """Job run time in seconds (length of the skyline)."""
        return int(self._usage.size)

    @property
    def area(self) -> float:
        """Total token-seconds: the area under the skyline."""
        return float(self._usage.sum())

    @property
    def peak(self) -> float:
        """Peak token usage over the job's lifetime."""
        return float(self._usage.max())

    @property
    def mean_usage(self) -> float:
        """Average token usage per second."""
        return float(self._usage.mean())

    def utilization(self, allocation: float) -> float:
        """Fraction of the allocated token-seconds actually used.

        ``area / (allocation * duration)``; an allocation below the mean
        usage yields a value above 1, signalling under-allocation.
        """
        if allocation <= 0:
            raise SkylineError("allocation must be positive")
        return self.area / (allocation * self.duration)

    def over_allocation(self, allocation: float) -> float:
        """Wasted token-seconds under a static ``allocation``.

        Seconds where usage exceeds the allocation contribute zero waste
        (the job would not actually receive more than the allocation, but
        historical skylines can record over-use; see the flight filters in
        Section 5.1).
        """
        if allocation <= 0:
            raise SkylineError("allocation must be positive")
        return float(np.clip(allocation - self._usage, 0.0, None).sum())

    def fraction_above(self, threshold: float) -> float:
        """Fraction of the run time with usage strictly above ``threshold``."""
        return float(np.count_nonzero(self._usage > threshold)) / self.duration

    def peakiness(self) -> float:
        """Coefficient of variation of usage: high for peaky jobs.

        Figure 5 distinguishes *peaky* skylines (deep valleys, brief peaks)
        from *flatter* ones. The coefficient of variation (std/mean) is a
        convenient scalar summary: flat skylines score near zero.
        """
        mean = self.mean_usage
        if mean == 0:
            return 0.0
        return float(self._usage.std() / mean)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def clipped(self, allocation: float) -> "Skyline":
        """Return a copy with usage clipped at ``allocation``."""
        if allocation <= 0:
            raise SkylineError("allocation must be positive")
        return Skyline(np.minimum(self._usage, allocation))

    def concatenate(self, other: "Skyline") -> "Skyline":
        """Return the skyline of this job followed immediately by ``other``."""
        return Skyline(np.concatenate([self._usage, other._usage]))

    def rounded(self) -> "Skyline":
        """Return a copy with usage rounded to whole tokens."""
        return Skyline(np.rint(self._usage))

    def with_noise(self, rng: np.random.Generator, scale: float = 0.05) -> "Skyline":
        """Return a noisy copy, modelling run-to-run cluster variance.

        Each second's usage is scaled by a lognormal factor with the given
        ``scale`` (sigma of the underlying normal). Used by the flighting
        harness so repeated executions of the same job do not match exactly,
        which is what makes the paper's anomaly filters meaningful.
        """
        if scale < 0:
            raise SkylineError("noise scale must be non-negative")
        if scale == 0:
            return self
        factors = rng.lognormal(mean=0.0, sigma=scale, size=self._usage.size)
        return Skyline(self._usage * factors)

    @classmethod
    def from_segments(cls, segments: Iterable[tuple[int, float]]) -> "Skyline":
        """Build a skyline from ``(duration_seconds, tokens)`` segments.

        Convenient for constructing the toy examples of Figures 6 and 7.
        """
        parts: list[np.ndarray] = []
        for duration, tokens in segments:
            if duration <= 0:
                raise SkylineError("segment duration must be positive")
            parts.append(np.full(int(duration), float(tokens)))
        if not parts:
            raise SkylineError("at least one segment is required")
        return cls(np.concatenate(parts))
