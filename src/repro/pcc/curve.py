"""The performance characteristic curve (PCC).

Section 4.1 models a job's run time as a power law of its token
allocation:

    runtime(A) = b * A^a

with scalar parameters ``a`` (the exponent; Amdahl's law is the special
case ``a = -1``) and ``b`` (the scale). The PCC is monotonically
non-increasing exactly when the signs of ``a`` and ``b`` are inconsistent
— in the practically relevant regime ``b > 0`` and ``a <= 0``.

In log-log space the power law is the straight line
``log(runtime) = log(b) + a * log(A)`` (Figure 9), which is what both the
fitting code and the learned models work with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FittingError

__all__ = ["PowerLawPCC"]


@dataclass(frozen=True)
class PowerLawPCC:
    """An immutable power-law PCC with parameters ``a`` and ``b``.

    Parameters
    ----------
    a:
        The exponent. Non-positive for well-behaved jobs.
    b:
        The scale, in seconds at one token. Must be positive (a job
        cannot have a non-positive run time).
    """

    a: float
    b: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.a) or not np.isfinite(self.b):
            raise FittingError("PCC parameters must be finite")
        if self.b <= 0:
            raise FittingError("PCC scale parameter b must be positive")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def runtime(self, tokens: float | np.ndarray) -> float | np.ndarray:
        """Predicted run time (seconds) at the given token count(s)."""
        tokens_arr = np.asarray(tokens, dtype=float)
        if np.any(tokens_arr <= 0):
            raise FittingError("token counts must be positive")
        result = self.b * np.power(tokens_arr, self.a)
        if np.isscalar(tokens) or tokens_arr.ndim == 0:
            return float(result)
        return result

    def log_runtime(self, log_tokens: float | np.ndarray) -> float | np.ndarray:
        """The PCC in log-log space: ``log b + a * log A``."""
        return np.log(self.b) + self.a * np.asarray(log_tokens, dtype=float)

    def slope(self, tokens: float) -> float:
        """d(runtime)/d(tokens) at ``tokens``: ``a * b * A^(a-1)``."""
        if tokens <= 0:
            raise FittingError("token counts must be positive")
        return self.a * self.b * tokens ** (self.a - 1.0)

    def relative_improvement(self, tokens: float) -> float:
        """Fractional run-time reduction from one additional token.

        ``-f'(A)/f(A) = -a / A``: the marginal-gain quantity that the
        optimal-allocation threshold of Section 2.1/4.4 is applied to.
        """
        if tokens <= 0:
            raise FittingError("token counts must be positive")
        return -self.a / tokens

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def is_non_increasing(self) -> bool:
        """True when run time never increases with more tokens.

        With ``b > 0`` enforced, this is simply ``a <= 0`` — the paper's
        "signs of a and b are inconsistent" condition.
        """
        return self.a <= 0

    def speedup(self, from_tokens: float, to_tokens: float) -> float:
        """Run-time ratio ``runtime(from) / runtime(to)``."""
        return float(self.runtime(from_tokens) / self.runtime(to_tokens))

    def parameters(self) -> tuple[float, float]:
        """``(a, b)`` as a plain tuple."""
        return (self.a, self.b)

    def log_parameters(self) -> tuple[float, float]:
        """``(a, log b)`` — the regression/learning target space."""
        return (self.a, float(np.log(self.b)))

    @classmethod
    def from_log_parameters(cls, a: float, log_b: float) -> "PowerLawPCC":
        """Construct from ``(a, log b)``; inverse of :meth:`log_parameters`."""
        return cls(a=float(a), b=float(np.exp(log_b)))

    @classmethod
    def amdahl(cls, single_token_runtime: float) -> "PowerLawPCC":
        """The Amdahl special case ``a = -1`` (perfectly parallel work)."""
        return cls(a=-1.0, b=single_token_runtime)
