"""Prediction intervals over power-law PCCs, and the ``risk`` knob.

"Runtime Variation in Big Data Analytics" (PAPERS.md) shows big-data run
times are distributions; a single predicted PCC silently over-promises.
A :class:`PCCInterval` carries three power-law curves — the q10 / q50 /
q90 predictions of the run-time distribution at every token count — so
downstream consumers can ask for *risk-adjusted* answers: "how many
tokens so that, with probability 0.9, the run time meets the deadline?"

Two invariants make the triple safe to consume (see
``docs/uncertainty.md`` for the full specification):

* **ordering** — for every allocation ``A >= 1`` the curves satisfy
  ``lo.runtime(A) <= mid.runtime(A) <= hi.runtime(A)``. For power laws
  on ``A >= 1`` this is equivalent to elementwise ordering of the log
  parameters (``a_lo <= a_mid <= a_hi`` and
  ``log b_lo <= log b_mid <= log b_hi``), which the constructor
  enforces. :meth:`PCCInterval.from_quantiles` repairs independently
  fitted quantile curves into this form (the *crossing fix*), anchoring
  each clamped curve at the job's reference allocation so its fitted
  run time there is preserved.
* **closure under risk interpolation** — linear blends of ``(a, log b)``
  are again power laws, so :func:`pcc_at_risk` can interpolate between
  the median and a tail curve with a z-score weight and hand back an
  ordinary :class:`~repro.pcc.curve.PowerLawPCC` every existing decision
  path (optimal tokens, deadline search, fleet floors) already accepts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri

from repro.exceptions import FittingError
from repro.pcc.curve import PowerLawPCC

__all__ = [
    "INTERVAL_QUANTILES",
    "PCCInterval",
    "pcc_at_risk",
    "tokens_within_slowdown_at_risk",
]

#: The three quantiles an interval represents, lo / mid / hi.
INTERVAL_QUANTILES = (0.1, 0.5, 0.9)

#: z-score of the hi quantile: risk weights are normalised so that
#: ``risk=0.9`` lands exactly on the hi curve.
_Z_HI = float(ndtri(INTERVAL_QUANTILES[2]))


@dataclass(frozen=True)
class PCCInterval:
    """q10 / q50 / q90 run-time curves for one job.

    ``mid`` is the ordinary point-estimate PCC (everything that ignores
    uncertainty keeps consuming it unchanged); ``lo`` and ``hi`` bound
    the predicted run-time distribution at nominal 80% coverage.
    """

    lo: PowerLawPCC
    mid: PowerLawPCC
    hi: PowerLawPCC

    def __post_init__(self) -> None:
        tol = 1e-9
        a = [self.lo.a, self.mid.a, self.hi.a]
        log_b = [np.log(self.lo.b), np.log(self.mid.b), np.log(self.hi.b)]
        if not (a[0] <= a[1] + tol and a[1] <= a[2] + tol):
            raise FittingError(
                "interval curves must have ordered exponents "
                f"(a_lo={a[0]:+.4f}, a_mid={a[1]:+.4f}, a_hi={a[2]:+.4f}); "
                "use PCCInterval.from_quantiles to repair crossings"
            )
        if not (log_b[0] <= log_b[1] + tol and log_b[1] <= log_b[2] + tol):
            raise FittingError(
                "interval curves must have ordered scales "
                "(log b_lo <= log b_mid <= log b_hi); "
                "use PCCInterval.from_quantiles to repair crossings"
            )

    @classmethod
    def degenerate(cls, mid: PowerLawPCC) -> "PCCInterval":
        """An interval collapsed onto the point estimate (zero width)."""
        return cls(lo=mid, mid=mid, hi=mid)

    @property
    def is_degenerate(self) -> bool:
        """True when the interval carries no uncertainty information."""
        return self.lo == self.mid == self.hi

    @classmethod
    def from_quantiles(
        cls,
        lo: PowerLawPCC,
        mid: PowerLawPCC,
        hi: PowerLawPCC,
        reference_tokens: float = 1.0,
    ) -> "PCCInterval":
        """Build an interval from independently fitted quantile curves.

        Independently fitted q10/q90 curves can cross the median (and
        each other) — the same failure mode that makes ~27% of XGBoost
        PL point curves increase. The crossing fix projects them onto
        the ordered parameter cone around ``mid``:

        * ``hi``'s exponent is clamped into ``[a_mid, 0]`` (never
          steeper than the median; never increasing when the median is
          valid) and ``lo``'s to at most ``a_mid``;
        * a clamped curve is re-anchored so its run time at
          ``reference_tokens`` (where the quantile fit actually looked)
          is unchanged;
        * scales are then clamped so ``log b_lo <= log b_mid <=
          log b_hi``, which can only *widen* the interval.
        """
        if reference_tokens <= 0:
            raise FittingError("reference token count must be positive")
        log_ref = float(np.log(max(reference_tokens, 1.0)))
        a_mid, lb_mid = mid.log_parameters()

        def reanchor(a_old: float, lb_old: float, a_new: float) -> float:
            # Preserve runtime at the reference: lb + a*log_ref constant.
            return lb_old + (a_old - a_new) * log_ref

        a_hi, lb_hi = hi.log_parameters()
        a_hi_new = max(a_hi, a_mid)
        if a_mid <= 0.0:
            a_hi_new = min(a_hi_new, 0.0)
        if a_hi_new != a_hi:
            lb_hi = reanchor(a_hi, lb_hi, a_hi_new)
            a_hi = a_hi_new
        lb_hi = max(lb_hi, lb_mid)

        a_lo, lb_lo = lo.log_parameters()
        a_lo_new = min(a_lo, a_mid)
        if a_lo_new != a_lo:
            lb_lo = reanchor(a_lo, lb_lo, a_lo_new)
            a_lo = a_lo_new
        lb_lo = min(lb_lo, lb_mid)

        return cls(
            lo=PowerLawPCC.from_log_parameters(a_lo, lb_lo),
            mid=mid,
            hi=PowerLawPCC.from_log_parameters(a_hi, lb_hi),
        )

    def runtime_interval(
        self, tokens: float
    ) -> tuple[float, float, float]:
        """``(lo, mid, hi)`` predicted run times at one allocation."""
        return (
            float(self.lo.runtime(tokens)),
            float(self.mid.runtime(tokens)),
            float(self.hi.runtime(tokens)),
        )


def _risk_weight(risk: float) -> float:
    """Signed interpolation weight: 0 at the median, +1 at q90, -1 at q10."""
    if not 0.0 < risk < 1.0:
        raise FittingError("risk must be inside (0, 1)")
    return float(ndtri(risk)) / _Z_HI


def pcc_at_risk(interval: PCCInterval, risk: float) -> PowerLawPCC:
    """The power-law curve at one risk level of the predicted interval.

    ``risk=0.5`` returns the median curve exactly; ``risk=0.9`` the hi
    curve; ``risk=0.1`` the lo curve. Intermediate (and extrapolated)
    levels interpolate linearly in ``(a, log b)`` with the normalised
    z-score weight ``w = ndtri(risk) / ndtri(0.9)`` — the exact level
    set under a Gaussian model of ``log(runtime)``, and a monotone,
    closed-form family regardless. When the median curve is
    non-increasing the blended exponent is clamped to ``a <= 0`` so
    extrapolation beyond q90 cannot manufacture an increasing PCC.
    """
    w = _risk_weight(risk)
    a_mid, lb_mid = interval.mid.log_parameters()
    if w >= 0:
        a_t, lb_t = interval.hi.log_parameters()
    else:
        a_t, lb_t = interval.lo.log_parameters()
        w = -w
    a = a_mid + w * (a_t - a_mid)
    log_b = lb_mid + w * (lb_t - lb_mid)
    if a_mid <= 0.0:
        a = min(a, 0.0)
    return PowerLawPCC.from_log_parameters(a, log_b)


def tokens_within_slowdown_at_risk(
    interval: PCCInterval,
    risk: float,
    reference_tokens: float,
    max_slowdown: float,
) -> int | None:
    """Smallest allocation whose *risk-quantile* run time stays within
    ``(1 + max_slowdown)`` of the **expected** run time at the reference.

    The point-estimate floor (:func:`repro.pcc.optimal
    .tokens_for_slowdown`) promises ``E[runtime(A)] <= (1 + s) *
    E[runtime(ref)]``; this risk-adjusted floor strengthens it to the
    risk quantile: ``Q_risk[runtime(A)] <= (1 + s) * E[runtime(ref)]``,
    i.e. the slowdown SLO holds with probability ``risk``, not merely in
    expectation. Closed form for power laws: with the risk curve
    ``(a_r, log b_r)`` and bound ``B = log(1+s) + log mid.runtime(ref)``,
    the constraint is ``log A >= (log b_r - B) / (-a_r)``.

    Returns None when no finite allocation satisfies the bound (a flat
    risk curve above the bound, or an astronomically distant boundary).
    """
    if reference_tokens <= 0:
        raise FittingError("reference token count must be positive")
    if max_slowdown < 0:
        raise FittingError("max slowdown must be non-negative")
    risk_pcc = pcc_at_risk(interval, risk)
    bound = float(
        np.log1p(max_slowdown)
        + interval.mid.log_runtime(np.log(reference_tokens))
    )
    a_r, lb_r = risk_pcc.log_parameters()
    if lb_r <= bound:  # already within budget at a single token
        return 1
    if a_r >= 0:  # flat (or invalid) risk curve above the bound: hopeless
        return None
    log_boundary = (lb_r - bound) / (-a_r)
    if log_boundary > 700.0:  # exp() overflows: no finite allocation fits
        return None
    return max(1, int(np.ceil(np.exp(log_boundary) - 1e-9)))
