"""Performance characteristic curves: representation, fitting, decisions.

Reproduces the PCC core of the paper: §2 / Figure 3 (run time as a
monotonically non-increasing function of allocated tokens, its elbow,
and the optimal allocation chosen by a marginal-improvement threshold),
§4.1 / Figure 9 (the power-law form ``runtime = b * tokens**a`` with
``a <= 0``, fitted by least squares in log-log space), and §2.3's
observation that the curve family is platform-specific
(`repro.pcc.families` adds Amdahl and shifted-power-law alternatives).
"""

from repro.pcc.curve import PowerLawPCC
from repro.pcc.families import (
    AmdahlPCC,
    PCCFamily,
    ShiftedPowerLawPCC,
    fit_family,
)
from repro.pcc.intervals import (
    INTERVAL_QUANTILES,
    PCCInterval,
    pcc_at_risk,
    tokens_within_slowdown_at_risk,
)
from repro.pcc.fitting import (
    fit_from_skyline,
    fit_observations,
    fit_power_law,
    fit_quality,
)
from repro.pcc.optimal import find_elbow, optimal_tokens, tokens_for_slowdown

__all__ = [
    "PowerLawPCC",
    "PCCInterval",
    "INTERVAL_QUANTILES",
    "pcc_at_risk",
    "tokens_within_slowdown_at_risk",
    "PCCFamily",
    "AmdahlPCC",
    "ShiftedPowerLawPCC",
    "fit_family",
    "fit_power_law",
    "fit_observations",
    "fit_from_skyline",
    "fit_quality",
    "optimal_tokens",
    "tokens_for_slowdown",
    "find_elbow",
]
