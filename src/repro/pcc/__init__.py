"""Performance characteristic curves: representation, fitting, decisions."""

from repro.pcc.curve import PowerLawPCC
from repro.pcc.families import (
    AmdahlPCC,
    PCCFamily,
    ShiftedPowerLawPCC,
    fit_family,
)
from repro.pcc.fitting import (
    fit_from_skyline,
    fit_observations,
    fit_power_law,
    fit_quality,
)
from repro.pcc.optimal import find_elbow, optimal_tokens, tokens_for_slowdown

__all__ = [
    "PowerLawPCC",
    "PCCFamily",
    "AmdahlPCC",
    "ShiftedPowerLawPCC",
    "fit_family",
    "fit_power_law",
    "fit_observations",
    "fit_from_skyline",
    "fit_quality",
    "optimal_tokens",
    "tokens_for_slowdown",
    "find_elbow",
]
