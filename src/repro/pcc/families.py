"""Alternative PCC function families (Section 2.3).

The paper notes that the *specific* mathematical form of the PCC is a
platform-specific choice — a power law for SCOPE tokens, other forms for
other platforms — while the methodology (fit a small parametric curve,
learn its parameters) is general. This module provides two alternatives
to :class:`~repro.pcc.curve.PowerLawPCC` so the choice can be evaluated:

* :class:`AmdahlPCC` — ``runtime = S + P / A`` (Amdahl's law): a serial
  floor plus perfectly divisible work. Two parameters, captures the
  high-token plateau the pure power law cannot.
* :class:`ShiftedPowerLawPCC` — ``runtime = b * A^a + c``: the paper's
  power law plus a non-negative floor. Three parameters; strictly
  generalises both of the above.

All families share the tiny :class:`PCCFamily` protocol (fit /
runtime / is_non_increasing), so fit-quality comparisons are uniform —
see ``benchmarks/test_ablation_pcc_families.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np
from scipy import optimize

from repro.exceptions import FittingError
from repro.pcc.curve import PowerLawPCC
from repro.pcc.fitting import fit_power_law

__all__ = ["PCCFamily", "AmdahlPCC", "ShiftedPowerLawPCC", "fit_family"]


@runtime_checkable
class PCCFamily(Protocol):
    """What any PCC representation must provide."""

    def runtime(self, tokens):  # pragma: no cover - protocol signature
        ...

    @property
    def is_non_increasing(self) -> bool:  # pragma: no cover
        ...


def _validate_observations(
    tokens: np.ndarray, runtimes: np.ndarray, min_points: int
) -> tuple[np.ndarray, np.ndarray]:
    tokens = np.asarray(tokens, dtype=float)
    runtimes = np.asarray(runtimes, dtype=float)
    if tokens.shape != runtimes.shape or tokens.ndim != 1:
        raise FittingError("tokens and runtimes must be equal-length vectors")
    if tokens.size < min_points:
        raise FittingError(f"need at least {min_points} observations")
    if np.any(tokens <= 0) or np.any(runtimes <= 0):
        raise FittingError("tokens and runtimes must be positive")
    if np.unique(tokens).size < min_points:
        raise FittingError(f"need {min_points} distinct token counts")
    return tokens, runtimes


@dataclass(frozen=True)
class AmdahlPCC:
    """``runtime = S + P / A`` with non-negative serial/parallel parts."""

    serial: float
    parallel: float

    def __post_init__(self) -> None:
        if self.serial < 0 or self.parallel < 0:
            raise FittingError("Amdahl parts must be non-negative")
        if self.serial == 0 and self.parallel == 0:
            raise FittingError("Amdahl curve needs some work")

    def runtime(self, tokens):
        tokens_arr = np.asarray(tokens, dtype=float)
        if np.any(tokens_arr <= 0):
            raise FittingError("token counts must be positive")
        result = self.serial + self.parallel / tokens_arr
        if np.isscalar(tokens) or tokens_arr.ndim == 0:
            return float(result)
        return result

    @property
    def is_non_increasing(self) -> bool:
        return True  # by construction: parallel >= 0

    @classmethod
    def fit(cls, tokens: np.ndarray, runtimes: np.ndarray) -> "AmdahlPCC":
        """Non-negative least squares on the basis ``[1, 1/A]``."""
        tokens, runtimes = _validate_observations(tokens, runtimes, 2)
        design = np.column_stack([np.ones_like(tokens), 1.0 / tokens])
        coefficients, _ = optimize.nnls(design, runtimes)
        serial, parallel = float(coefficients[0]), float(coefficients[1])
        if serial == 0 and parallel == 0:
            raise FittingError("degenerate Amdahl fit")
        return cls(serial=serial, parallel=parallel)


@dataclass(frozen=True)
class ShiftedPowerLawPCC:
    """``runtime = b * A^a + c`` with ``b > 0``, ``a <= 0``, ``c >= 0``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.b <= 0:
            raise FittingError("scale b must be positive")
        if self.a > 0:
            raise FittingError("exponent a must be non-positive")
        if self.c < 0:
            raise FittingError("floor c must be non-negative")

    def runtime(self, tokens):
        tokens_arr = np.asarray(tokens, dtype=float)
        if np.any(tokens_arr <= 0):
            raise FittingError("token counts must be positive")
        result = self.b * np.power(tokens_arr, self.a) + self.c
        if np.isscalar(tokens) or tokens_arr.ndim == 0:
            return float(result)
        return result

    @property
    def is_non_increasing(self) -> bool:
        return True  # a <= 0 and c constant

    @classmethod
    def fit(
        cls, tokens: np.ndarray, runtimes: np.ndarray
    ) -> "ShiftedPowerLawPCC":
        """Bounded nonlinear least squares, seeded by the plain power law."""
        tokens, runtimes = _validate_observations(tokens, runtimes, 3)
        seed = fit_power_law(tokens, runtimes)
        x0 = np.array([min(seed.a, -1e-6), seed.b, 0.0])

        def residuals(params):
            a, b, c = params
            return b * np.power(tokens, a) + c - runtimes

        result = optimize.least_squares(
            residuals,
            x0,
            bounds=([-5.0, 1e-9, 0.0], [0.0, np.inf, np.inf]),
            max_nfev=200,
        )
        a, b, c = result.x
        return cls(a=float(min(a, 0.0)), b=float(max(b, 1e-9)),
                   c=float(max(c, 0.0)))


def fit_family(
    family: str, tokens: np.ndarray, runtimes: np.ndarray
) -> PCCFamily:
    """Fit a PCC of the named family (``power_law``/``amdahl``/``shifted``)."""
    if family == "power_law":
        return fit_power_law(tokens, runtimes)
    if family == "amdahl":
        return AmdahlPCC.fit(tokens, runtimes)
    if family == "shifted":
        return ShiftedPowerLawPCC.fit(tokens, runtimes)
    raise FittingError(f"unknown PCC family: {family!r}")
