"""Fitting power-law PCCs to (tokens, run time) observations.

Because a power law is linear in log-log space (Figure 9), fitting reduces
to ordinary least squares on ``log(runtime) ~ log(tokens)``. Weighted
variants let the caller up-weight the actually observed point relative to
AREPAS-simulated ones.
"""

from __future__ import annotations

import numpy as np

from repro.arepas.augmentation import AugmentedObservation
from repro.exceptions import FittingError
from repro.obs import get_registry, trace
from repro.pcc.curve import PowerLawPCC

__all__ = ["fit_power_law", "fit_observations", "fit_from_skyline", "fit_quality"]


def fit_power_law(
    tokens: np.ndarray,
    runtimes: np.ndarray,
    weights: np.ndarray | None = None,
) -> PowerLawPCC:
    """Least-squares power-law fit in log-log space.

    Parameters
    ----------
    tokens, runtimes:
        Positive observation vectors of equal length (>= 2 distinct token
        values are required to identify the slope).
    weights:
        Optional per-observation weights.

    Raises
    ------
    FittingError
        On degenerate inputs (non-positive values, fewer than two distinct
        token counts).
    """
    tokens = np.asarray(tokens, dtype=float)
    runtimes = np.asarray(runtimes, dtype=float)
    if tokens.shape != runtimes.shape or tokens.ndim != 1:
        raise FittingError("tokens and runtimes must be equal-length vectors")
    if tokens.size < 2:
        raise FittingError("need at least two observations to fit a PCC")
    if np.any(tokens <= 0) or np.any(runtimes <= 0):
        raise FittingError("tokens and runtimes must be positive")
    if np.unique(tokens).size < 2:
        raise FittingError("need at least two distinct token counts")

    x = np.log(tokens)
    y = np.log(runtimes)
    if weights is None:
        w = np.ones_like(x)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != x.shape or np.any(w < 0) or w.sum() == 0:
            raise FittingError("weights must be non-negative and not all zero")

    w_sum = w.sum()
    x_mean = (w * x).sum() / w_sum
    y_mean = (w * y).sum() / w_sum
    var_x = (w * (x - x_mean) ** 2).sum()
    if var_x <= 0:
        raise FittingError("token counts are not distinguishable in log space")
    cov_xy = (w * (x - x_mean) * (y - y_mean)).sum()
    a = cov_xy / var_x
    log_b = y_mean - a * x_mean
    if trace.enabled:
        get_registry().counter("pcc_power_law_fits").increment()
    return PowerLawPCC.from_log_parameters(a, log_b)


def fit_observations(
    observations: list[AugmentedObservation],
    observed_weight: float = 1.0,
) -> PowerLawPCC:
    """Fit a PCC to augmented observations.

    ``observed_weight`` (>= 1) multiplies the weight of samples whose
    source is ``"observed"``, keeping the true telemetry point first-class
    relative to simulated ones (Section 4's pitfall discussion).
    """
    if observed_weight < 1:
        raise FittingError("observed_weight must be at least 1")
    tokens = np.array([o.tokens for o in observations])
    runtimes = np.array([o.runtime for o in observations])
    weights = np.array(
        [observed_weight if o.source == "observed" else 1.0 for o in observations]
    )
    return fit_power_law(tokens, runtimes, weights)


def fit_from_skyline(
    skyline,
    reference_tokens: float,
    grid: np.ndarray | None = None,
) -> PowerLawPCC:
    """End-to-end: AREPAS-sweep a skyline and fit the PCC (Section 3 + 4).

    This is the labelling step of the TASQ training pipeline: one observed
    run of the job is enough to synthesise the whole curve.
    """
    from repro.arepas.augmentation import default_token_grid, sweep_token_grid

    if grid is None:
        grid = default_token_grid(reference_tokens)
    with trace.span("pcc.fit_from_skyline") as span:
        observations = sweep_token_grid(
            skyline, grid, observed_tokens=reference_tokens
        )
        span.set("points", len(observations))
        return fit_observations(observations)


def fit_quality(
    pcc: PowerLawPCC, tokens: np.ndarray, runtimes: np.ndarray
) -> dict[str, float]:
    """Goodness-of-fit diagnostics in log-log space.

    Returns R^2 and the median/max absolute percentage error of the fitted
    run times against the provided observations.
    """
    tokens = np.asarray(tokens, dtype=float)
    runtimes = np.asarray(runtimes, dtype=float)
    predicted = np.asarray(pcc.runtime(tokens), dtype=float)
    ape = np.abs(predicted - runtimes) / runtimes * 100.0

    y = np.log(runtimes)
    residual = y - np.log(predicted)
    total = y - y.mean()
    ss_res = float((residual**2).sum())
    ss_tot = float((total**2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return {
        "r_squared": r_squared,
        "median_ape": float(np.median(ape)),
        "max_ape": float(ape.max()),
    }
