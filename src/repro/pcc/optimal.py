"""Choosing the optimal token allocation from a PCC (Section 2.1).

Given a job's PCC, the *optimal* allocation is the smallest token count
whose marginal performance gain still clears a user/administrator
threshold — e.g. "require at least 1% run-time improvement per additional
token". Related utilities find the curve's elbow (Figure 3) and the
cheapest allocation meeting a slowdown budget relative to a reference
allocation (the Figure 2 what-if analysis).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FittingError
from repro.pcc.curve import PowerLawPCC

__all__ = [
    "optimal_tokens",
    "tokens_for_slowdown",
    "find_elbow",
]


def optimal_tokens(
    pcc: PowerLawPCC,
    improvement_threshold: float = 0.01,
    min_tokens: int = 1,
    max_tokens: int | None = None,
) -> int:
    """Smallest allocation whose marginal gain still meets the threshold.

    The paper's termination condition: stop adding tokens once one more
    token no longer improves run time by at least
    ``improvement_threshold`` (fractionally). For a power law the relative
    improvement per token is ``-a / A``, so the closed form is
    ``A* = -a / threshold``, clamped to ``[min_tokens, max_tokens]``.

    Raises
    ------
    FittingError
        If the threshold is not positive or the PCC is increasing (no
        allocation beyond the minimum ever helps — the minimum is
        returned for flat curves, but an *increasing* curve signals an
        upstream modeling bug worth surfacing).
    """
    if improvement_threshold <= 0:
        raise FittingError("improvement threshold must be positive")
    if min_tokens < 1:
        raise FittingError("min_tokens must be at least 1")
    if not pcc.is_non_increasing:
        raise FittingError(
            "optimal allocation is undefined for an increasing PCC"
        )

    ideal = -pcc.a / improvement_threshold
    tokens = max(min_tokens, int(np.floor(ideal)))
    if max_tokens is not None:
        tokens = min(tokens, max_tokens)
    return tokens


def tokens_for_slowdown(
    pcc: PowerLawPCC,
    reference_tokens: float,
    max_slowdown: float,
    min_tokens: int = 1,
) -> int:
    """Cheapest allocation within a slowdown budget of the reference.

    Finds the smallest integer ``A`` such that
    ``runtime(A) <= (1 + max_slowdown) * runtime(reference_tokens)``.
    ``max_slowdown = 0`` asks for no estimated performance loss at all;
    0.05 and 0.10 are the 5%/10% loss scenarios of Figure 2.

    For the power law the bound solves in closed form:
    ``A >= reference * (1 + max_slowdown)^(1/a)`` (for ``a < 0``).
    """
    if reference_tokens <= 0:
        raise FittingError("reference token count must be positive")
    if max_slowdown < 0:
        raise FittingError("slowdown budget must be non-negative")
    if not pcc.is_non_increasing:
        raise FittingError("slowdown search requires a non-increasing PCC")

    if pcc.a == 0:
        # Flat curve: any allocation achieves the reference run time.
        return max(min_tokens, 1)

    ideal = reference_tokens * (1.0 + max_slowdown) ** (1.0 / pcc.a)
    tokens = int(np.ceil(ideal - 1e-9))
    return max(min_tokens, min(tokens, int(np.ceil(reference_tokens))))


def find_elbow(
    tokens: np.ndarray, runtimes: np.ndarray
) -> tuple[float, float]:
    """Locate the elbow of an empirical PCC (the red marker in Figure 3).

    Uses the standard maximum-distance-to-chord ("kneedle"-style)
    criterion on the normalised curve: the elbow is the point farthest
    from the straight line joining the curve's endpoints.

    Returns
    -------
    tuple
        ``(tokens_at_elbow, runtime_at_elbow)``.
    """
    tokens = np.asarray(tokens, dtype=float)
    runtimes = np.asarray(runtimes, dtype=float)
    if tokens.shape != runtimes.shape or tokens.size < 3:
        raise FittingError("need at least three points to find an elbow")
    order = np.argsort(tokens)
    x = tokens[order]
    y = runtimes[order]

    # Normalise both axes to [0, 1] so the distance is scale-free.
    x_span = x[-1] - x[0]
    y_span = y.max() - y.min()
    if x_span <= 0 or y_span <= 0:
        raise FittingError("degenerate curve: no spread in tokens or runtimes")
    xn = (x - x[0]) / x_span
    yn = (y - y.min()) / y_span

    # Distance from each point to the chord between the first and last.
    x0, y0 = xn[0], yn[0]
    x1, y1 = xn[-1], yn[-1]
    numerator = np.abs((y1 - y0) * xn - (x1 - x0) * yn + x1 * y0 - y1 * x0)
    denominator = float(np.hypot(y1 - y0, x1 - x0))
    distances = numerator / denominator
    index = int(np.argmax(distances))
    return float(x[index]), float(y[index])
