"""GNN model: operator-level graphs -> PCC parameters (Figure 10).

The SimGNN-style architecture of Section 4.4: graph convolution layers
over operator-level features produce node embeddings, an attention layer
pools them into a graph embedding, and a fully connected head predicts
the two power-law parameters through the same sign-constrained head as
the NN — so the predicted PCC is monotonically non-increasing by
construction.

With the defaults (two 80-wide GCN layers, attention, a 24-wide head)
the model has ~19K parameters — matching the paper's Table 7 GNN figure
of 19,210 — and is roughly an order of magnitude slower to train than
the NN, also as reported.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.features.encoders import StandardScaler, TargetScaler
from repro.features.graph_features import GraphSample
from repro.ml.autograd import Tensor
from repro.ml.gnn import GNNEncoder, pad_graph_batch
from repro.ml.losses import CompositeLoss, LF2, LossInputs
from repro.ml.nn import Activation, Dense, PCCParameterHead, Sequential
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.models.training import TrainConfig, train_parameter_model

__all__ = ["GNNPCCModel"]


class GNNPCCModel(PCCPredictor):
    """Graph neural network trend model."""

    name = "GNN"
    guarantees_monotonic = True
    uses_graph_features = True

    def __init__(
        self,
        gcn_sizes: tuple[int, ...] = (80, 80),
        head_sizes: tuple[int, ...] = (24,),
        loss: CompositeLoss | None = None,
        train_config: TrainConfig | None = None,
        xgb_model: PCCPredictor | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not gcn_sizes:
            raise ModelError("GNN needs at least one graph convolution layer")
        self.gcn_sizes = gcn_sizes
        self.head_sizes = head_sizes
        self.loss = loss or LF2()
        self.train_config = train_config or TrainConfig(
            epochs=40, batch_size=32, learning_rate=2e-3
        )
        self.xgb_model = xgb_model
        self._seed = seed
        self._node_scaler = StandardScaler()
        self._target_scaler = TargetScaler()
        self._encoder: GNNEncoder | None = None
        self._head: Sequential | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    def _build(self, in_features: int) -> None:
        rng = np.random.default_rng(self._seed)
        self._encoder = GNNEncoder(in_features, self.gcn_sizes, rng)
        modules = []
        previous = self._encoder.output_dim
        for size in self.head_sizes:
            modules.append(Dense(previous, size, rng))
            modules.append(Activation("relu"))
            previous = size
        modules.append(PCCParameterHead(previous, rng))
        self._head = Sequential(*modules)

    def _scaled_graphs(
        self, dataset: PCCDataset, fit_scaler: bool
    ) -> list[GraphSample]:
        """Standardise node features with a scaler shared across graphs."""
        samples = dataset.graph_samples()
        stacked = np.vstack([s.node_features for s in samples])
        if fit_scaler:
            self._node_scaler.fit(stacked)
        return [
            GraphSample(
                node_features=self._node_scaler.transform(s.node_features),
                adjacency=s.adjacency,
            )
            for s in samples
        ]

    def _forward_graphs(self, graphs: list[GraphSample]) -> Tensor:
        assert self._encoder is not None and self._head is not None
        batch = pad_graph_batch(graphs)
        embedding = self._encoder.encode(batch)
        return self._head(embedding)

    # ------------------------------------------------------------------
    def fit(self, dataset: PCCDataset) -> "GNNPCCModel":
        graphs = self._scaled_graphs(dataset, fit_scaler=True)
        targets = dataset.target_matrix()
        self._target_scaler.fit(targets)

        xgb_runtime = None
        if self.loss.needs_xgb:
            if self.xgb_model is None:
                raise ModelError("LF3 requires a fitted XGBoost model")
            xgb_runtime = self.xgb_model.predict_runtime_at(
                dataset, dataset.observed_tokens()
            )

        inputs = LossInputs(
            target_params=targets,
            param_scale=self._target_scaler.scale_,
            log_tokens=np.log(dataset.observed_tokens()),
            true_runtime=dataset.observed_runtimes(),
            xgb_runtime=xgb_runtime,
        )

        in_features = graphs[0].node_features.shape[1]
        self._build(in_features)

        def forward(batch: np.ndarray) -> Tensor:
            return self._forward_graphs([graphs[i] for i in batch])

        parameters = self._encoder.parameters() + self._head.parameters()
        self.loss_history_ = train_parameter_model(
            forward,
            parameters,
            self.loss,
            inputs,
            num_examples=len(dataset),
            config=self.train_config,
            rng=np.random.default_rng(self._seed + 1),
        )
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_parameters(self, dataset: PCCDataset) -> np.ndarray:
        self._check_fitted()
        graphs = self._scaled_graphs(dataset, fit_scaler=False)
        # Predict in size-sorted chunks to keep padding waste low.
        order = np.argsort([g.num_nodes for g in graphs], kind="stable")
        outputs = np.zeros((len(graphs), 2))
        chunk = 128
        for start in range(0, len(order), chunk):
            batch_idx = order[start : start + chunk]
            predictions = self._forward_graphs(
                [graphs[i] for i in batch_idx]
            ).numpy()
            outputs[batch_idx] = predictions
        return outputs

    def predict_runtime_at(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> np.ndarray:
        parameters = self.predict_parameters(dataset)
        tokens = np.asarray(tokens, dtype=float)
        if np.any(tokens <= 0):
            raise ModelError("token counts must be positive")
        return np.exp(parameters[:, 1] + parameters[:, 0] * np.log(tokens))

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        parameters = self.predict_parameters(dataset)
        if len(grids) != parameters.shape[0]:
            raise ModelError("one grid per example is required")
        return [
            np.exp(log_b + a * np.log(np.asarray(grid, dtype=float)))
            for (a, log_b), grid in zip(parameters, grids)
        ]

    def num_parameters(self) -> int:
        if self._encoder is None or self._head is None:
            return 0
        return (
            sum(p.data.size for p in self._encoder.parameters())
            + self._head.num_parameters()
        )
