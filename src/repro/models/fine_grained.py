"""Fine-grained (per-group) models versus the global model (Section 4.2).

The paper considers two learning granularities: one *global* model for
all incoming jobs, or *fine-grained* models trained per group of similar
(recurring) jobs. It chooses the global model because fine-grained
coverage is limited to signatures seen in training, while token
allocation must be predicted for ad-hoc jobs too.

:class:`FineGrainedPCCModel` implements the alternative so the trade-off
can be measured: it partitions the training set by structural signature,
fits one base model per sufficiently large group, and reports which test
jobs it can / cannot cover.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.scope.signatures import plan_signature

__all__ = ["FineGrainedPCCModel"]


class FineGrainedPCCModel(PCCPredictor):
    """One base model per job-signature group.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh, unfitted base model
        (e.g. ``lambda: NNPCCModel(...)``).
    min_group_size:
        Groups smaller than this are not trained (too little data).

    Notes
    -----
    Prediction APIs raise :class:`ModelError` when asked about jobs whose
    signature has no model; use :meth:`coverage` / :meth:`covered_mask`
    first. This mirrors the paper's point: the fine-grained approach
    simply cannot answer for ad-hoc jobs.
    """

    name = "Fine-grained"
    guarantees_monotonic = True  # inherits from the base models used here

    def __init__(
        self,
        model_factory: Callable[[], PCCPredictor],
        min_group_size: int = 5,
    ) -> None:
        super().__init__()
        if min_group_size < 2:
            raise ModelError("min_group_size must be at least 2")
        self.model_factory = model_factory
        self.min_group_size = min_group_size
        self._models: dict[str, PCCPredictor] = {}
        self.num_uncovered_training_jobs_ = 0

    # ------------------------------------------------------------------
    def fit(
        self, dataset: PCCDataset, plans: list | None = None
    ) -> "FineGrainedPCCModel":
        """Fit one base model per signature group.

        ``plans`` must align with ``dataset`` (one plan per example).
        """
        if plans is None or len(plans) != len(dataset):
            raise ModelError("fine-grained fit needs one plan per example")
        signatures = [plan_signature(plan) for plan in plans]

        groups: dict[str, list[int]] = {}
        for index, signature in enumerate(signatures):
            groups.setdefault(signature, []).append(index)

        self._models = {}
        uncovered = 0
        for signature, indices in groups.items():
            if len(indices) < self.min_group_size:
                uncovered += len(indices)
                continue
            subset = PCCDataset(
                examples=[dataset.examples[i] for i in indices]
            )
            model = self.model_factory()
            model.fit(subset)
            self._models[signature] = model
        self.num_uncovered_training_jobs_ = uncovered
        if not self._models:
            raise ModelError(
                "no signature group reached min_group_size; "
                "use the global model instead"
            )
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        self._check_fitted()
        return len(self._models)

    def covered_mask(self, plans: list) -> np.ndarray:
        """Boolean mask of jobs whose signature has a trained model."""
        self._check_fitted()
        return np.array(
            [plan_signature(plan) in self._models for plan in plans]
        )

    def coverage(self, plans: list) -> float:
        """Fraction of the given jobs this model can answer for."""
        mask = self.covered_mask(plans)
        return float(mask.mean())

    def _route(
        self, dataset: PCCDataset, plans: list
    ) -> list[tuple[PCCPredictor, list[int]]]:
        """Group example indices by the model that owns their signature."""
        if len(plans) != len(dataset):
            raise ModelError("one plan per example is required")
        routes: dict[str, list[int]] = {}
        for index, plan in enumerate(plans):
            signature = plan_signature(plan)
            if signature not in self._models:
                raise ModelError(
                    f"job {plan.job_id} is uncovered (signature "
                    f"{signature}); fine-grained models cannot score "
                    "ad-hoc jobs"
                )
            routes.setdefault(signature, []).append(index)
        return [
            (self._models[signature], indices)
            for signature, indices in routes.items()
        ]

    # ------------------------------------------------------------------
    def predict_parameters_routed(
        self, dataset: PCCDataset, plans: list
    ) -> np.ndarray:
        """``(M, 2)`` parameters, each job scored by its group's model."""
        self._check_fitted()
        output = np.zeros((len(dataset), 2))
        for model, indices in self._route(dataset, plans):
            subset = PCCDataset(
                examples=[dataset.examples[i] for i in indices]
            )
            parameters = model.predict_parameters(subset)
            if parameters is None:
                raise ModelError("base model must be parametric")
            output[indices] = parameters
        return output

    def predict_runtime_at_routed(
        self, dataset: PCCDataset, tokens: np.ndarray, plans: list
    ) -> np.ndarray:
        parameters = self.predict_parameters_routed(dataset, plans)
        tokens = np.asarray(tokens, dtype=float)
        return np.exp(parameters[:, 1] + parameters[:, 0] * np.log(tokens))

    # The PCCPredictor interface requires plan-less methods; fine-grained
    # prediction is signature-routed, so these raise with guidance.
    def predict_runtime_at(self, dataset, tokens):  # pragma: no cover
        raise NotFittedError(
            "use predict_runtime_at_routed(dataset, tokens, plans)"
        )

    def predict_curves(self, dataset, grids):  # pragma: no cover
        raise NotFittedError("fine-grained models require routed prediction")
