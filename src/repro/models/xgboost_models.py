"""XGBoost-style point-prediction models (Section 4.4).

Both variants share one gradient-boosted run-time regressor trained on
``[job features, log(tokens)] -> runtime`` rows, where each job
contributes its observed run plus the AREPAS point augmentation (80%/60%
under-allocations, 120%/140% over-peak observations with floored run
times).

* **XGBoost SS** forms the PCC by querying the booster at multiple token
  counts and smoothing the points (a smoothing spline). No shape
  assumption, and — as the paper shows — no monotonicity guarantee.
* **XGBoost PL** fits a power law through point predictions taken within
  +/-40% of the job's reference token count. The fitted curve may end up
  *increasing* when the point predictions trend the wrong way, which is
  exactly the failure mode Tables 4-6 report (~27% of jobs).
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import UnivariateSpline

from repro.exceptions import ModelError
from repro.ml import compiled as compiled_kernels
from repro.ml.gbm import BoosterParams, GradientBoostingRegressor
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.pcc.fitting import fit_power_law

__all__ = ["XGBoostRuntimeModel", "XGBoostSS", "XGBoostPL", "reference_window"]


def reference_window(
    reference_tokens: float, num_points: int = 9, spread: float = 0.4
) -> np.ndarray:
    """Token grid spanning +/-``spread`` of the reference count."""
    if reference_tokens <= 0:
        raise ModelError("reference token count must be positive")
    grid = reference_tokens * np.linspace(1 - spread, 1 + spread, num_points)
    return np.maximum(1.0, grid)


class XGBoostRuntimeModel(PCCPredictor):
    """The shared booster: direct run-time point predictions."""

    name = "XGBoost"
    guarantees_monotonic = False

    def __init__(
        self,
        booster_params: BoosterParams | None = None,
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        super().__init__()
        self.booster_params = booster_params or BoosterParams(
            n_estimators=150, max_depth=6, learning_rate=0.1, subsample=0.9
        )
        self._seed = seed
        #: Route curve evaluation through one batched booster call (and
        #: the booster through the flattened kernel); bit-identical to
        #: the per-example loop. ``repro.ml.compiled.override(False)``
        #: or ``use_compiled=False`` restore the reference path.
        self.use_compiled = use_compiled
        self._booster: GradientBoostingRegressor | None = None

    def fit(self, dataset: PCCDataset) -> "XGBoostRuntimeModel":
        rows, targets = dataset.point_rows()
        self._booster = GradientBoostingRegressor(
            self.booster_params,
            objective="gamma",
            seed=self._seed,
            use_compiled=self.use_compiled,
        )
        self._booster.fit(rows, targets)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _query(self, dataset: PCCDataset, tokens: np.ndarray) -> np.ndarray:
        """Booster predictions for example ``i`` at ``tokens[i]``."""
        self._check_fitted()
        assert self._booster is not None
        tokens = np.asarray(tokens, dtype=float)
        if np.any(tokens <= 0):
            raise ModelError("token counts must be positive")
        features = dataset.job_feature_matrix()
        rows = np.column_stack([features, np.log(tokens)])
        return self._booster.predict(rows)

    def predict_runtime_at(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> np.ndarray:
        return self._query(dataset, tokens)

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Raw booster point predictions over each grid (no smoothing).

        With compiled inference on, all grids are evaluated with a
        *single* booster call (repeat the feature rows, concatenate the
        grids, split the predictions back). Binning, traversal and
        accumulation are all elementwise per row, so the batched call is
        bit-identical to the per-example loop it replaces.
        """
        self._check_fitted()
        assert self._booster is not None
        features = dataset.job_feature_matrix()
        if self.use_compiled and compiled_kernels.is_enabled():
            return self._predict_curves_batched(features, grids)
        curves = []
        for feature_row, grid in zip(features, grids):
            grid = np.asarray(grid, dtype=float)
            rows = np.column_stack(
                [np.tile(feature_row, (grid.size, 1)), np.log(grid)]
            )
            curves.append(self._booster.predict(rows))
        return curves

    def _predict_curves_batched(
        self, features: np.ndarray, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        # zip() semantics of the reference loop: truncate to the shorter.
        count = min(features.shape[0], len(grids))
        flat_grids = [np.asarray(grids[i], dtype=float) for i in range(count)]
        sizes = [grid.size for grid in flat_grids]
        if count == 0:
            return []
        rows = np.column_stack(
            [
                np.repeat(features[:count], sizes, axis=0),
                np.log(np.concatenate(flat_grids)),
            ]
        )
        predictions = self._booster.predict(rows)
        return np.split(predictions, np.cumsum(sizes)[:-1])


class XGBoostSS(XGBoostRuntimeModel):
    """XGBoost + smoothing spline over point predictions."""

    name = "XGBoost SS"

    def __init__(
        self,
        booster_params: BoosterParams | None = None,
        smoothing: float = 0.05,
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        super().__init__(booster_params, seed, use_compiled)
        if smoothing < 0:
            raise ModelError("smoothing must be non-negative")
        self.smoothing = smoothing

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        raw_curves = super().predict_curves(dataset, grids)
        smoothed = []
        for grid, curve in zip(grids, raw_curves):
            grid = np.asarray(grid, dtype=float)
            if grid.size < 4:
                smoothed.append(curve)
                continue
            # Smooth in log space; s scales with variance of the points.
            log_curve = np.log(curve)
            spline = UnivariateSpline(
                np.log(grid),
                log_curve,
                k=min(3, grid.size - 1),
                s=self.smoothing * grid.size * np.var(log_curve),
            )
            smoothed.append(np.exp(spline(np.log(grid))))
        return smoothed


class XGBoostPL(XGBoostRuntimeModel):
    """XGBoost + power-law refit of point predictions."""

    name = "XGBoost PL"

    def __init__(
        self,
        booster_params: BoosterParams | None = None,
        window_points: int = 9,
        window_spread: float = 0.4,
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        super().__init__(booster_params, seed, use_compiled)
        self.window_points = window_points
        self.window_spread = window_spread

    def predict_parameters(self, dataset: PCCDataset) -> np.ndarray:
        """Fit ``(a, log b)`` through predictions near each reference."""
        self._check_fitted()
        references = dataset.observed_tokens()
        grids = [
            reference_window(ref, self.window_points, self.window_spread)
            for ref in references
        ]
        point_curves = XGBoostRuntimeModel.predict_curves(self, dataset, grids)
        parameters = np.zeros((len(grids), 2))
        for i, (grid, curve) in enumerate(zip(grids, point_curves)):
            pcc = fit_power_law(grid, np.maximum(curve, 1e-9))
            parameters[i] = pcc.log_parameters()
        return parameters

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Evaluate the refit power law over each requested grid."""
        parameters = self.predict_parameters(dataset)
        return [
            np.exp(log_b + a * np.log(np.asarray(grid, dtype=float)))
            for (a, log_b), grid in zip(parameters, grids)
        ]
