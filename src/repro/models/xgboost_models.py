"""XGBoost-style point-prediction models (Section 4.4).

Both variants share one gradient-boosted run-time regressor trained on
``[job features, log(tokens)] -> runtime`` rows, where each job
contributes its observed run plus the AREPAS point augmentation (80%/60%
under-allocations, 120%/140% over-peak observations with floored run
times).

* **XGBoost SS** forms the PCC by querying the booster at multiple token
  counts and smoothing the points (a smoothing spline). No shape
  assumption, and — as the paper shows — no monotonicity guarantee.
* **XGBoost PL** fits a power law through point predictions taken within
  +/-40% of the job's reference token count. The fitted curve may end up
  *increasing* when the point predictions trend the wrong way, which is
  exactly the failure mode Tables 4-6 report (~27% of jobs).

**Quantile heads** (opt-in, ``quantile_heads=True``): alongside the
gamma point booster, two additional boosters are fitted on the *same*
rows with the pinball objective at q10 and q90
(:class:`~repro.ml.gbm.objectives.PinballLoss`), turning the model into
an interval predictor. The heads use their own, deliberately *shallower*
default hyper-parameters: the point booster's deep trees memorise the
training rows, and a memorised conditional quantile collapses onto the
point prediction — held-out coverage craters. The point booster's fit is
byte-identical with heads on or off (every booster draws from its own
seeded stream), so enabling intervals never perturbs the point
predictions. XGBoost PL
additionally refits a power law through each quantile head's point
curve and repairs crossings via
:meth:`~repro.pcc.intervals.PCCInterval.from_quantiles`
(see ``docs/uncertainty.md``).
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import UnivariateSpline

from repro.exceptions import ModelError
from repro.ml import compiled as compiled_kernels
from repro.ml.gbm import BoosterParams, GradientBoostingRegressor, PinballLoss
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.pcc.curve import PowerLawPCC
from repro.pcc.fitting import fit_power_law
from repro.pcc.intervals import PCCInterval

__all__ = ["XGBoostRuntimeModel", "XGBoostSS", "XGBoostPL", "reference_window"]

#: Default hyper-parameters for the pinball quantile heads. Quantile
#: regression overfits much faster than the gamma point objective — a
#: deep booster reproduces the training rows' empirical quantiles and
#: under-covers held-out data — so the heads default to shallow,
#: strongly regularised trees (held-out q10-q90 coverage ~0.75 on the
#: seeded workload vs ~0.44 with the point booster's parameters).
QUANTILE_HEAD_PARAMS = BoosterParams(
    n_estimators=40, max_depth=3, learning_rate=0.1, subsample=0.9
)


def reference_window(
    reference_tokens: float, num_points: int = 9, spread: float = 0.4
) -> np.ndarray:
    """Token grid spanning +/-``spread`` of the reference count."""
    if reference_tokens <= 0:
        raise ModelError("reference token count must be positive")
    grid = reference_tokens * np.linspace(1 - spread, 1 + spread, num_points)
    return np.maximum(1.0, grid)


class XGBoostRuntimeModel(PCCPredictor):
    """The shared booster: direct run-time point predictions."""

    name = "XGBoost"
    guarantees_monotonic = False

    def __init__(
        self,
        booster_params: BoosterParams | None = None,
        seed: int = 0,
        use_compiled: bool = True,
        quantile_heads: bool = False,
        quantiles: tuple[float, float] = (0.1, 0.9),
        quantile_params: BoosterParams | None = None,
    ) -> None:
        super().__init__()
        self.booster_params = booster_params or BoosterParams(
            n_estimators=150, max_depth=6, learning_rate=0.1, subsample=0.9
        )
        self.quantile_params = quantile_params or QUANTILE_HEAD_PARAMS
        self._seed = seed
        #: Route curve evaluation through one batched booster call (and
        #: the booster through the flattened kernel); bit-identical to
        #: the per-example loop. ``repro.ml.compiled.override(False)``
        #: or ``use_compiled=False`` restore the reference path.
        self.use_compiled = use_compiled
        if len(quantiles) != 2 or not 0 < quantiles[0] < 0.5 < quantiles[1] < 1:
            raise ModelError(
                "quantiles must be a (lo, hi) pair straddling the median"
            )
        self.quantile_heads = quantile_heads
        self.quantiles = (float(quantiles[0]), float(quantiles[1]))
        self._booster: GradientBoostingRegressor | None = None
        self._quantile_boosters: dict[float, GradientBoostingRegressor] = {}

    def fit(self, dataset: PCCDataset) -> "XGBoostRuntimeModel":
        rows, targets = dataset.point_rows()
        self._booster = GradientBoostingRegressor(
            self.booster_params,
            objective="gamma",
            seed=self._seed,
            use_compiled=self.use_compiled,
        )
        self._booster.fit(rows, targets)
        self._quantile_boosters = {}
        if self.quantile_heads:
            # Independent boosters with independent seeded streams: the
            # point booster above is byte-identical with heads on or off.
            for offset, quantile in enumerate(self.quantiles):
                booster = GradientBoostingRegressor(
                    self.quantile_params,
                    objective=PinballLoss(quantile),
                    seed=self._seed + 101 + offset,
                    use_compiled=self.use_compiled,
                )
                booster.fit(rows, targets)
                self._quantile_boosters[quantile] = booster
        self._fitted = True
        return self

    @property
    def supports_intervals(self) -> bool:
        return bool(self._quantile_boosters)

    # ------------------------------------------------------------------
    def _query(
        self,
        dataset: PCCDataset,
        tokens: np.ndarray,
        booster: GradientBoostingRegressor | None = None,
    ) -> np.ndarray:
        """Booster predictions for example ``i`` at ``tokens[i]``."""
        self._check_fitted()
        booster = booster if booster is not None else self._booster
        assert booster is not None
        tokens = np.asarray(tokens, dtype=float)
        if np.any(tokens <= 0):
            raise ModelError("token counts must be positive")
        features = dataset.job_feature_matrix()
        rows = np.column_stack([features, np.log(tokens)])
        return booster.predict(rows)

    def predict_runtime_at(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> np.ndarray:
        return self._query(dataset, tokens)

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Raw booster point predictions over each grid (no smoothing).

        With compiled inference on, all grids are evaluated with a
        *single* booster call (repeat the feature rows, concatenate the
        grids, split the predictions back). Binning, traversal and
        accumulation are all elementwise per row, so the batched call is
        bit-identical to the per-example loop it replaces.
        """
        return self._point_curves(dataset, grids, self._booster)

    def _point_curves(
        self,
        dataset: PCCDataset,
        grids: list[np.ndarray],
        booster: GradientBoostingRegressor | None,
    ) -> list[np.ndarray]:
        self._check_fitted()
        assert booster is not None
        features = dataset.job_feature_matrix()
        if self.use_compiled and compiled_kernels.is_enabled():
            return self._predict_curves_batched(features, grids, booster)
        curves = []
        for feature_row, grid in zip(features, grids):
            grid = np.asarray(grid, dtype=float)
            rows = np.column_stack(
                [np.tile(feature_row, (grid.size, 1)), np.log(grid)]
            )
            curves.append(booster.predict(rows))
        return curves

    def _predict_curves_batched(
        self,
        features: np.ndarray,
        grids: list[np.ndarray],
        booster: GradientBoostingRegressor,
    ) -> list[np.ndarray]:
        # zip() semantics of the reference loop: truncate to the shorter.
        count = min(features.shape[0], len(grids))
        flat_grids = [np.asarray(grids[i], dtype=float) for i in range(count)]
        sizes = [grid.size for grid in flat_grids]
        if count == 0:
            return []
        rows = np.column_stack(
            [
                np.repeat(features[:count], sizes, axis=0),
                np.log(np.concatenate(flat_grids)),
            ]
        )
        predictions = booster.predict(rows)
        return np.split(predictions, np.cumsum(sizes)[:-1])

    def predict_interval(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """q10/q50/q90 run times of example ``i`` at ``tokens[i]``.

        ``mid`` is the unchanged gamma point prediction; ``lo``/``hi``
        come from the pinball heads, crossing-fixed pointwise
        (``lo = min(lo, mid)``, ``hi = max(hi, mid)``) so the triple is
        always ordered. Without heads this is the degenerate default.
        """
        mid = self._query(dataset, tokens)
        if not self._quantile_boosters:
            return mid, mid, mid
        q_lo, q_hi = self.quantiles
        lo = self._query(dataset, tokens, self._quantile_boosters[q_lo])
        hi = self._query(dataset, tokens, self._quantile_boosters[q_hi])
        return np.minimum(lo, mid), mid, np.maximum(hi, mid)


class XGBoostSS(XGBoostRuntimeModel):
    """XGBoost + smoothing spline over point predictions."""

    name = "XGBoost SS"

    def __init__(
        self,
        booster_params: BoosterParams | None = None,
        smoothing: float = 0.05,
        seed: int = 0,
        use_compiled: bool = True,
        quantile_heads: bool = False,
        quantiles: tuple[float, float] = (0.1, 0.9),
        quantile_params: BoosterParams | None = None,
    ) -> None:
        super().__init__(
            booster_params, seed, use_compiled, quantile_heads, quantiles,
            quantile_params,
        )
        if smoothing < 0:
            raise ModelError("smoothing must be non-negative")
        self.smoothing = smoothing

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        raw_curves = super().predict_curves(dataset, grids)
        smoothed = []
        for grid, curve in zip(grids, raw_curves):
            grid = np.asarray(grid, dtype=float)
            if grid.size < 4:
                smoothed.append(curve)
                continue
            # Smooth in log space; s scales with variance of the points.
            log_curve = np.log(curve)
            spline = UnivariateSpline(
                np.log(grid),
                log_curve,
                k=min(3, grid.size - 1),
                s=self.smoothing * grid.size * np.var(log_curve),
            )
            smoothed.append(np.exp(spline(np.log(grid))))
        return smoothed


class XGBoostPL(XGBoostRuntimeModel):
    """XGBoost + power-law refit of point predictions."""

    name = "XGBoost PL"

    def __init__(
        self,
        booster_params: BoosterParams | None = None,
        window_points: int = 9,
        window_spread: float = 0.4,
        seed: int = 0,
        use_compiled: bool = True,
        quantile_heads: bool = False,
        quantiles: tuple[float, float] = (0.1, 0.9),
        quantile_params: BoosterParams | None = None,
    ) -> None:
        super().__init__(
            booster_params, seed, use_compiled, quantile_heads, quantiles,
            quantile_params,
        )
        self.window_points = window_points
        self.window_spread = window_spread

    def predict_parameters(self, dataset: PCCDataset) -> np.ndarray:
        """Fit ``(a, log b)`` through predictions near each reference."""
        self._check_fitted()
        references = dataset.observed_tokens()
        grids = [
            reference_window(ref, self.window_points, self.window_spread)
            for ref in references
        ]
        point_curves = XGBoostRuntimeModel.predict_curves(self, dataset, grids)
        parameters = np.zeros((len(grids), 2))
        for i, (grid, curve) in enumerate(zip(grids, point_curves)):
            pcc = fit_power_law(grid, np.maximum(curve, 1e-9))
            parameters[i] = pcc.log_parameters()
        return parameters

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Evaluate the refit power law over each requested grid."""
        parameters = self.predict_parameters(dataset)
        return [
            np.exp(log_b + a * np.log(np.asarray(grid, dtype=float)))
            for (a, log_b), grid in zip(parameters, grids)
        ]

    def predict_pcc_intervals(
        self, dataset: PCCDataset
    ) -> list[PCCInterval] | None:
        """Power-law interval per example from the quantile heads.

        The quantile curves share the median's exponent and differ only
        in scale: each head is queried once, at the job's reference
        token count, and the q10/q90-to-median *ratio* there shifts the
        median curve down/up in ``log b`` (a multiplicative — log-normal
        — error model, the same one :func:`~repro.pcc.intervals
        .pcc_at_risk` interpolates under). Refitting a separate power
        law through each head's curve looks more expressive but fails in
        practice: the regularised heads are nearly constant across the
        ±40% reference window, so the refit quantile curves come out
        flat (exponent ~0) and a risk-adjusted deadline search on them
        concludes no token count can ever buy down the q90 — parallel
        curves keep "more tokens help" exactly as true at q90 as at the
        median. Shifts are clamped non-negative so the triple is ordered
        by construction. Without heads, falls back to the base
        degenerate intervals.
        """
        if not self._quantile_boosters:
            return super().predict_pcc_intervals(dataset)
        self._check_fitted()
        references = dataset.observed_tokens()
        q_lo, q_hi = self.quantiles
        mid_params = self.predict_parameters(dataset)
        mid_at_ref = self._query(dataset, references)
        lo_at_ref = self._query(
            dataset, references, self._quantile_boosters[q_lo]
        )
        hi_at_ref = self._query(
            dataset, references, self._quantile_boosters[q_hi]
        )
        floor = 1e-9
        up = np.log(np.maximum(hi_at_ref, floor)) - np.log(
            np.maximum(mid_at_ref, floor)
        )
        down = np.log(np.maximum(mid_at_ref, floor)) - np.log(
            np.maximum(lo_at_ref, floor)
        )
        up = np.maximum(up, 0.0)
        down = np.maximum(down, 0.0)
        intervals = []
        for (a, log_b), shift_up, shift_down in zip(mid_params, up, down):
            intervals.append(
                PCCInterval(
                    lo=PowerLawPCC.from_log_parameters(a, log_b - shift_down),
                    mid=PowerLawPCC.from_log_parameters(a, log_b),
                    hi=PowerLawPCC.from_log_parameters(a, log_b + shift_up),
                )
            )
        return intervals
