"""Training/evaluation datasets for the PCC prediction models.

A :class:`PCCDataset` is built from a telemetry repository: for every
historical job it

* runs the AREPAS sweep and fits the power-law PCC, whose ``(a, log b)``
  parameters become the trend-model targets (Sections 3-4),
* extracts the aggregated job-level feature vector (XGBoost/NN input),
* extracts the operator-level graph sample (GNN input),
* generates the discrete point-augmented observations for the XGBoost
  run-time model (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

import numpy as np

from repro.arepas.augmentation import (
    AugmentedObservation,
    augment_point_observations,
    default_token_grid,
)
from repro.arepas.simulator import AREPAS
from repro.cache import ArtifactCache, features_cache_key, pcc_cache_key
from repro.exceptions import ModelError
from repro.features.graph_features import GraphSample, plan_to_graph_sample
from repro.features.job_features import job_vector
from repro.obs import trace
from repro.parallel import pmap
from repro.pcc.curve import PowerLawPCC
from repro.pcc.fitting import fit_from_skyline
from repro.scope.repository import JobRepository, TelemetryRecord
from repro.scope.signatures import plan_content_signature, skyline_signature

__all__ = ["PCCExample", "PCCDataset", "build_dataset"]


@dataclass(frozen=True)
class PCCExample:
    """One job's features, targets, and augmentation."""

    job_id: str
    observed_tokens: float
    observed_runtime: float
    target_pcc: PowerLawPCC
    job_features: np.ndarray
    graph: GraphSample
    point_observations: tuple[AugmentedObservation, ...]

    @property
    def target_parameters(self) -> tuple[float, float]:
        """``(a, log b)`` — the trend-model regression target."""
        return self.target_pcc.log_parameters()


@dataclass
class PCCDataset:
    """A featurized collection of :class:`PCCExample` objects."""

    examples: list[PCCExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def job_feature_matrix(self) -> np.ndarray:
        """``(M, P_J)`` aggregated job features."""
        self._require_nonempty()
        return np.vstack([e.job_features for e in self.examples])

    def target_matrix(self) -> np.ndarray:
        """``(M, 2)`` targets ``(a, log b)``."""
        self._require_nonempty()
        return np.array([e.target_parameters for e in self.examples])

    def observed_tokens(self) -> np.ndarray:
        return np.array([e.observed_tokens for e in self.examples])

    def observed_runtimes(self) -> np.ndarray:
        return np.array([e.observed_runtime for e in self.examples])

    def graph_samples(self) -> list[GraphSample]:
        return [e.graph for e in self.examples]

    def point_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Expanded (features+log tokens, runtime) rows for XGBoost.

        Each job contributes one row per augmented observation; the token
        count is appended (in log space) as an extra feature column.
        """
        self._require_nonempty()
        total = sum(len(e.point_observations) for e in self.examples)
        width = self.examples[0].job_features.shape[0] + 1
        rows = np.empty((total, width), dtype=np.float64)
        targets = np.empty(total, dtype=np.float64)
        offset = 0
        for example in self.examples:
            count = len(example.point_observations)
            block = slice(offset, offset + count)
            rows[block, :-1] = example.job_features
            rows[block, -1] = np.log(
                [obs.tokens for obs in example.point_observations]
            )
            targets[block] = [
                obs.runtime for obs in example.point_observations
            ]
            offset += count
        return rows, targets

    def _require_nonempty(self) -> None:
        if not self.examples:
            raise ModelError("dataset is empty")


def build_dataset(
    repository: JobRepository | list[TelemetryRecord],
    grid_points: int = 8,
    simulator: AREPAS | None = None,
    workers: int = 1,
    cache: ArtifactCache | str | Path | None = None,
) -> PCCDataset:
    """Featurize a repository into a :class:`PCCDataset`.

    ``grid_points`` controls the AREPAS sweep resolution used to fit each
    job's target PCC. Jobs whose reference allocation is a single token
    (no room below the observed allocation) are skipped — their PCC is
    unidentifiable.

    ``workers > 1`` builds examples across a process pool
    (:func:`repro.parallel.pmap`); per-record construction is a pure
    function of the record, so parallel output is bit-identical to the
    serial one. ``cache`` (an :class:`~repro.cache.ArtifactCache` or a
    directory path) memoizes each record's fitted target PCC + point
    augmentation (keyed on the skyline's content hash and the sweep
    parameters) and its plan-derived features (keyed on the plan's
    content hash), so warm re-builds skip the AREPAS sweeps and
    featurization entirely.
    """
    simulator = simulator or AREPAS()
    if cache is not None and not isinstance(cache, ArtifactCache):
        cache = ArtifactCache(cache)
    records = (
        repository.records()
        if isinstance(repository, JobRepository)
        else list(repository)
    )
    build_one = partial(
        _build_example,
        grid_points=grid_points,
        simulator=simulator,
        cache=cache,
    )
    with trace.span("models.build_dataset", records=len(records)) as span:
        examples = [
            example
            for example in pmap(build_one, records, workers=workers)
            if example is not None
        ]
        span.set("examples", len(examples))
    if not examples:
        raise ModelError("no usable records in the repository")
    return PCCDataset(examples=examples)


def _build_example(
    record: TelemetryRecord,
    grid_points: int,
    simulator: AREPAS,
    cache: ArtifactCache | None,
) -> PCCExample | None:
    """One record's example — a pure function, safe to run in any process."""
    if record.requested_tokens < 2:
        return None
    target, points = _fit_target(record, grid_points, simulator, cache)
    job_features, graph = _featurize_plan(record, cache)
    return PCCExample(
        job_id=record.job_id,
        observed_tokens=float(record.requested_tokens),
        observed_runtime=float(record.runtime),
        target_pcc=target,
        job_features=job_features,
        graph=graph,
        point_observations=points,
    )


def _fit_target(
    record: TelemetryRecord,
    grid_points: int,
    simulator: AREPAS,
    cache: ArtifactCache | None,
) -> tuple[PowerLawPCC, tuple[AugmentedObservation, ...]]:
    """Fitted target PCC + point augmentation, memoized on skyline content."""
    key = None
    if cache is not None:
        key = pcc_cache_key(
            skyline_signature(record.skyline),
            record.requested_tokens,
            grid_points,
            simulator.preserve_area_exactly,
        )
        cached = cache.get(key, kind="pcc")
        if cached is not None:
            return cached
    grid = default_token_grid(record.requested_tokens, num_points=grid_points)
    target = fit_from_skyline(record.skyline, record.requested_tokens, grid)
    points = tuple(
        augment_point_observations(
            record.skyline, record.requested_tokens, simulator=simulator
        )
    )
    if cache is not None:
        cache.put(key, (target, points), kind="pcc")
    return target, points


def _featurize_plan(
    record: TelemetryRecord, cache: ArtifactCache | None
) -> tuple[np.ndarray, GraphSample]:
    """Job vector + graph sample, memoized on plan content.

    Keyed purely on the plan's content signature, so recurring instances
    with identical estimates (and any byte-identical plans across jobs)
    share one entry.
    """
    key = None
    if cache is not None:
        key = features_cache_key(plan_content_signature(record.plan))
        cached = cache.get(key, kind="features")
        if cached is not None:
            return cached
    features = (job_vector(record.plan), plan_to_graph_sample(record.plan))
    if cache is not None:
        cache.put(key, features, kind="features")
    return features
