"""Training/evaluation datasets for the PCC prediction models.

A :class:`PCCDataset` is built from a telemetry repository: for every
historical job it

* runs the AREPAS sweep and fits the power-law PCC, whose ``(a, log b)``
  parameters become the trend-model targets (Sections 3-4),
* extracts the aggregated job-level feature vector (XGBoost/NN input),
* extracts the operator-level graph sample (GNN input),
* generates the discrete point-augmented observations for the XGBoost
  run-time model (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arepas.augmentation import (
    AugmentedObservation,
    augment_point_observations,
    default_token_grid,
)
from repro.arepas.simulator import AREPAS
from repro.exceptions import ModelError
from repro.features.graph_features import GraphSample, plan_to_graph_sample
from repro.features.job_features import job_vector
from repro.obs import trace
from repro.pcc.curve import PowerLawPCC
from repro.pcc.fitting import fit_from_skyline
from repro.scope.repository import JobRepository, TelemetryRecord

__all__ = ["PCCExample", "PCCDataset", "build_dataset"]


@dataclass(frozen=True)
class PCCExample:
    """One job's features, targets, and augmentation."""

    job_id: str
    observed_tokens: float
    observed_runtime: float
    target_pcc: PowerLawPCC
    job_features: np.ndarray
    graph: GraphSample
    point_observations: tuple[AugmentedObservation, ...]

    @property
    def target_parameters(self) -> tuple[float, float]:
        """``(a, log b)`` — the trend-model regression target."""
        return self.target_pcc.log_parameters()


@dataclass
class PCCDataset:
    """A featurized collection of :class:`PCCExample` objects."""

    examples: list[PCCExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def job_feature_matrix(self) -> np.ndarray:
        """``(M, P_J)`` aggregated job features."""
        self._require_nonempty()
        return np.vstack([e.job_features for e in self.examples])

    def target_matrix(self) -> np.ndarray:
        """``(M, 2)`` targets ``(a, log b)``."""
        self._require_nonempty()
        return np.array([e.target_parameters for e in self.examples])

    def observed_tokens(self) -> np.ndarray:
        return np.array([e.observed_tokens for e in self.examples])

    def observed_runtimes(self) -> np.ndarray:
        return np.array([e.observed_runtime for e in self.examples])

    def graph_samples(self) -> list[GraphSample]:
        return [e.graph for e in self.examples]

    def point_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Expanded (features+log tokens, runtime) rows for XGBoost.

        Each job contributes one row per augmented observation; the token
        count is appended (in log space) as an extra feature column.
        """
        self._require_nonempty()
        rows = []
        targets = []
        for example in self.examples:
            for obs in example.point_observations:
                rows.append(
                    np.concatenate(
                        [example.job_features, [np.log(obs.tokens)]]
                    )
                )
                targets.append(obs.runtime)
        return np.vstack(rows), np.array(targets)

    def _require_nonempty(self) -> None:
        if not self.examples:
            raise ModelError("dataset is empty")


def build_dataset(
    repository: JobRepository | list[TelemetryRecord],
    grid_points: int = 8,
    simulator: AREPAS | None = None,
) -> PCCDataset:
    """Featurize a repository into a :class:`PCCDataset`.

    ``grid_points`` controls the AREPAS sweep resolution used to fit each
    job's target PCC. Jobs whose reference allocation is a single token
    (no room below the observed allocation) are skipped — their PCC is
    unidentifiable.
    """
    simulator = simulator or AREPAS()
    records = (
        repository.records()
        if isinstance(repository, JobRepository)
        else list(repository)
    )
    with trace.span("models.build_dataset", records=len(records)):
        dataset = _build_examples(records, grid_points, simulator)
    return dataset


def _build_examples(
    records: list[TelemetryRecord], grid_points: int, simulator: AREPAS
) -> PCCDataset:
    dataset = PCCDataset()
    for record in records:
        if record.requested_tokens < 2:
            continue
        grid = default_token_grid(record.requested_tokens, num_points=grid_points)
        target = fit_from_skyline(record.skyline, record.requested_tokens, grid)
        dataset.examples.append(
            PCCExample(
                job_id=record.job_id,
                observed_tokens=float(record.requested_tokens),
                observed_runtime=float(record.runtime),
                target_pcc=target,
                job_features=job_vector(record.plan),
                graph=plan_to_graph_sample(record.plan),
                point_observations=tuple(
                    augment_point_observations(
                        record.skyline,
                        record.requested_tokens,
                        simulator=simulator,
                    )
                ),
            )
        )
    if not dataset.examples:
        raise ModelError("no usable records in the repository")
    return dataset
