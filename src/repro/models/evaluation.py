"""Model evaluation: the three Section 5 metrics.

For each model the paper reports (Tables 4-6 and 8):

1. **Pattern** — share of predicted PCCs that are monotonically
   non-increasing. For XGBoost SS this is checked point-wise within
   +/-40% of the reference token count; for the parametric models it is
   the sign test on the fitted/predicted curve parameters.
2. **MAE (curve params)** — mean absolute error of the predicted
   ``(a, log b)`` against the targets, in the scaled space where each
   parameter is normalised by its mean absolute target value.
3. **Median AE (run time)** — median absolute percentage error of the
   run-time prediction at each job's reference token count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.ml.metrics import (
    fraction_non_increasing,
    median_absolute_percentage_error,
)
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.models.xgboost_models import reference_window

__all__ = ["ModelEvaluation", "evaluate_model", "evaluation_table"]


@dataclass(frozen=True)
class ModelEvaluation:
    """One row of a Table 4-6/8 style comparison."""

    model: str
    pattern_non_increasing: float
    curve_param_mae: float | None
    runtime_median_ape: float

    def as_row(self) -> str:
        mae = "NA" if self.curve_param_mae is None else f"{self.curve_param_mae:.3f}"
        return (
            f"{self.model:<12} {self.pattern_non_increasing * 100:5.0f}% "
            f"{mae:>8} {self.runtime_median_ape:8.0f}%"
        )


def evaluate_model(
    model: PCCPredictor,
    dataset: PCCDataset,
    true_runtimes: np.ndarray | None = None,
) -> ModelEvaluation:
    """Compute the three metrics for one fitted model.

    ``true_runtimes`` overrides the dataset's observed run times as the
    point-prediction ground truth (used for flighted evaluations); by
    default the observed run time at the reference allocation is used.
    """
    if len(dataset) == 0:
        raise ModelError("cannot evaluate on an empty dataset")
    references = dataset.observed_tokens()
    if true_runtimes is None:
        true_runtimes = dataset.observed_runtimes()

    # --- metric 3: point prediction error at the reference tokens -------
    predicted_runtime = model.predict_runtime_at(dataset, references)
    runtime_ape = median_absolute_percentage_error(
        true_runtimes, predicted_runtime
    )

    # --- metrics 1-2: trend prediction ----------------------------------
    predicted_params = model.predict_parameters(dataset)
    if predicted_params is not None:
        # Parametric model: pattern is the sign test, MAE in scaled space.
        pattern = float(np.mean(predicted_params[:, 0] <= 0))
        targets = dataset.target_matrix()
        scale = np.abs(targets).mean(axis=0)
        scale[scale == 0] = 1.0
        curve_mae = float(
            np.abs((predicted_params - targets) / scale).mean()
        )
    else:
        # Non-parametric (XGBoost SS): point-wise check near the reference.
        grids = [reference_window(ref) for ref in references]
        curves = model.predict_curves(dataset, grids)
        pattern = fraction_non_increasing(curves)
        curve_mae = None

    return ModelEvaluation(
        model=model.name,
        pattern_non_increasing=pattern,
        curve_param_mae=curve_mae,
        runtime_median_ape=runtime_ape,
    )


def evaluation_table(evaluations: list[ModelEvaluation]) -> str:
    """Render evaluations as a Table 4-6 style text table."""
    header = (
        f"{'Model':<12} {'Pattern':>6} {'MAE(prm)':>8} {'MedAE(rt)':>9}"
    )
    lines = [header, "-" * len(header)]
    lines.extend(e.as_row() for e in evaluations)
    return "\n".join(lines)
