"""Shared training loop for the parameter-predicting networks (NN/GNN)."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.ml.autograd import Tensor
from repro.ml.losses import CompositeLoss, LossInputs
from repro.ml.optim import Adam

__all__ = ["TrainConfig", "train_parameter_model"]


@dataclass(frozen=True)
class TrainConfig:
    """Optimisation hyper-parameters for NN/GNN training."""

    epochs: int = 60
    batch_size: int = 64
    learning_rate: float = 3e-3
    shuffle: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ModelError("epochs and batch_size must be positive")


def train_parameter_model(
    forward: Callable[[np.ndarray], Tensor],
    parameters: list[Tensor],
    loss_fn: CompositeLoss,
    inputs: LossInputs,
    num_examples: int,
    config: TrainConfig,
    rng: np.random.Generator,
) -> list[float]:
    """Mini-batch Adam training of a ``(a, log b)`` prediction model.

    Parameters
    ----------
    forward:
        Maps an index array (into the training set) to a ``(batch, 2)``
        prediction tensor. Index-based so the same loop drives both the
        dense NN (slicing a feature matrix) and the GNN (building padded
        graph batches).
    parameters:
        The trainable tensors.
    loss_fn, inputs:
        The composite loss and its per-example constants.
    num_examples:
        Size of the training set.
    config:
        Optimisation schedule.
    rng:
        Source of shuffling randomness.

    Returns
    -------
    list of float
        Mean epoch losses, for convergence diagnostics.
    """
    optimizer = Adam(parameters, learning_rate=config.learning_rate)
    history: list[float] = []
    indices = np.arange(num_examples)

    for epoch in range(config.epochs):
        if config.shuffle:
            rng.shuffle(indices)
        epoch_losses: list[float] = []
        for start in range(0, num_examples, config.batch_size):
            batch = indices[start : start + config.batch_size]
            optimizer.zero_grad()
            predictions = forward(batch)
            loss = loss_fn(predictions, inputs.subset(batch))
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        mean_loss = float(np.mean(epoch_losses))
        history.append(mean_loss)
        if config.verbose:
            print(f"epoch {epoch + 1:3d}/{config.epochs}: loss={mean_loss:.5f}")
    return history
