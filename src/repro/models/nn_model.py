"""Feed-forward NN model: aggregated job features -> PCC parameters.

Table 2's "NN" row: a multi-layer fully connected network over the
aggregated job-level features, predicting the two power-law parameters
with a sign-constrained head so the predicted PCC is monotonically
non-increasing by construction (Section 4.4/4.5).

With the default hidden sizes ``(32, 16)`` and the 51-wide job feature
vector, the network has ~2.2K parameters — matching the paper's Table 7
NN figure of 2,216.

**Ensemble intervals** (opt-in, ``ensemble_size > 1``): the model trains
``ensemble_size - 1`` additional members identical in architecture,
loss, and data but seeded differently, and reads prediction uncertainty
off the member spread — the standard deep-ensemble recipe. The primary
member's training is byte-identical with or without the ensemble (each
member draws from its own seeded streams), so point predictions and
PCC parameters never change when intervals are enabled; see
``docs/uncertainty.md``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.features.encoders import StandardScaler, TargetScaler
from repro.ml import compiled as compiled_kernels
from repro.ml.autograd import Tensor
from repro.ml.compiled import FusedMLP, compile_network
from repro.ml.losses import CompositeLoss, LF2, LossInputs
from repro.ml.nn import Activation, Dense, PCCParameterHead, Sequential
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.models.training import TrainConfig, train_parameter_model
from repro.pcc.curve import PowerLawPCC
from repro.pcc.intervals import _Z_HI, PCCInterval

__all__ = ["NNPCCModel"]

#: Seed stride between ensemble members (prime, to keep the per-member
#: network-init and minibatch streams disjoint from the primary's).
_MEMBER_SEED_STRIDE = 7919


class NNPCCModel(PCCPredictor):
    """MLP trend model with guaranteed non-increasing PCCs."""

    name = "NN"
    guarantees_monotonic = True

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (32, 16),
        loss: CompositeLoss | None = None,
        train_config: TrainConfig | None = None,
        xgb_model: PCCPredictor | None = None,
        seed: int = 0,
        use_compiled: bool = True,
        ensemble_size: int = 1,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise ModelError("NN needs at least one hidden layer")
        if ensemble_size < 1:
            raise ModelError("ensemble_size must be at least 1")
        self.hidden_sizes = hidden_sizes
        self.loss = loss or LF2()
        self.train_config = train_config or TrainConfig()
        self.xgb_model = xgb_model
        self._seed = seed
        self._scaler = StandardScaler()
        self._target_scaler = TargetScaler()
        self._network: Sequential | None = None
        #: Route inference through the fused float32 forward pass
        #: (:class:`~repro.ml.compiled.FusedMLP`); results agree with the
        #: autograd reference to float32 round-off. Flip to False — or
        #: use ``repro.ml.compiled.override(False)`` — to fall back.
        self.use_compiled = use_compiled
        self._compiled: FusedMLP | None = None
        self.ensemble_size = ensemble_size
        self._members: list[Sequential] = []
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    def _build_network(self, in_features: int, seed: int) -> Sequential:
        rng = np.random.default_rng(seed)
        modules = []
        previous = in_features
        for size in self.hidden_sizes:
            modules.append(Dense(previous, size, rng))
            modules.append(Activation("relu"))
            previous = size
        modules.append(PCCParameterHead(previous, rng))
        return Sequential(*modules)

    def fit(self, dataset: PCCDataset) -> "NNPCCModel":
        features = self._scaler.fit_transform(dataset.job_feature_matrix())
        targets = dataset.target_matrix()
        self._target_scaler.fit(targets)

        xgb_runtime = None
        if self.loss.needs_xgb:
            if self.xgb_model is None:
                raise ModelError("LF3 requires a fitted XGBoost model")
            xgb_runtime = self.xgb_model.predict_runtime_at(
                dataset, dataset.observed_tokens()
            )

        inputs = LossInputs(
            target_params=targets,
            param_scale=self._target_scaler.scale_,
            log_tokens=np.log(dataset.observed_tokens()),
            true_runtime=dataset.observed_runtimes(),
            xgb_runtime=xgb_runtime,
        )

        self._network = self._build_network(features.shape[1], self._seed)
        self._compiled = None  # refit invalidates the fused forward pass

        def forward(batch: np.ndarray) -> Tensor:
            return self._network(Tensor(features[batch]))

        self.loss_history_ = train_parameter_model(
            forward,
            self._network.parameters(),
            self.loss,
            inputs,
            num_examples=len(dataset),
            config=self.train_config,
            rng=np.random.default_rng(self._seed + 1),
        )

        # Extra ensemble members train after (and independently of) the
        # primary, so its fit is byte-identical with or without them.
        self._members = []
        for k in range(1, self.ensemble_size):
            member_seed = self._seed + _MEMBER_SEED_STRIDE * k
            member = self._build_network(features.shape[1], member_seed)

            def member_forward(batch: np.ndarray, net=member) -> Tensor:
                return net(Tensor(features[batch]))

            train_parameter_model(
                member_forward,
                member.parameters(),
                self.loss,
                inputs,
                num_examples=len(dataset),
                config=self.train_config,
                rng=np.random.default_rng(member_seed + 1),
            )
            self._members.append(member)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_parameters(self, dataset: PCCDataset) -> np.ndarray:
        """Predicted ``(a, log b)`` per example.

        Served by the fused float32 forward pass (compiled lazily on
        first predict, dropped on refit) unless compiled inference is
        disabled; the sign guarantee ``a <= 0`` holds on both paths.
        """
        self._check_fitted()
        assert self._network is not None
        features = self._scaler.transform(dataset.job_feature_matrix())
        if self.use_compiled and compiled_kernels.is_enabled():
            try:
                return self.fused_network().predict(features)
            except ModelError:
                # Network contains modules the fuser does not understand
                # (e.g. a subclass override): stay on autograd for good.
                self.use_compiled = False
        return self._network(Tensor(features)).numpy()

    def predict_parameters_reference(self, dataset: PCCDataset) -> np.ndarray:
        """``(a, log b)`` via the float64 autograd stack (pre-kernel
        semantics, kept as the unit under the differential tests)."""
        self._check_fitted()
        assert self._network is not None
        features = self._scaler.transform(dataset.job_feature_matrix())
        return self._network(Tensor(features)).numpy()

    def fused_network(self) -> FusedMLP:
        """The lazily compiled forward pass (compiles on first use)."""
        self._check_fitted()
        assert self._network is not None
        if self._compiled is None:
            self._compiled = compile_network(self._network)
        return self._compiled

    def predict_runtime_at(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> np.ndarray:
        parameters = self.predict_parameters(dataset)
        tokens = np.asarray(tokens, dtype=float)
        if np.any(tokens <= 0):
            raise ModelError("token counts must be positive")
        return np.exp(parameters[:, 1] + parameters[:, 0] * np.log(tokens))

    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        parameters = self.predict_parameters(dataset)
        if len(grids) != parameters.shape[0]:
            raise ModelError("one grid per example is required")
        return [
            np.exp(log_b + a * np.log(np.asarray(grid, dtype=float)))
            for (a, log_b), grid in zip(parameters, grids)
        ]

    # ------------------------------------------------------------------
    @property
    def supports_intervals(self) -> bool:
        return bool(self._members)

    def _member_parameters(self, dataset: PCCDataset) -> np.ndarray:
        """``(ensemble_size, M, 2)`` per-member ``(a, log b)``.

        Members are evaluated on the autograd path (they are few and
        small); the primary member keeps its usual compiled route.
        """
        self._check_fitted()
        assert self._network is not None
        features = self._scaler.transform(dataset.job_feature_matrix())
        stacks = [self.predict_parameters(dataset)]
        stacks += [net(Tensor(features)).numpy() for net in self._members]
        return np.stack(stacks)

    def predict_interval(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """q10/q50/q90 run times at ``tokens[i]`` from the member spread.

        ``mid`` is the primary member's (unchanged) point prediction;
        ``lo``/``hi`` offset its log run time by ``ndtri(0.9)`` times
        the cross-member standard deviation of the log run time — a
        Gaussian read-out of the ensemble spread at the q10/q90 levels.
        """
        tokens = np.asarray(tokens, dtype=float)
        if np.any(tokens <= 0):
            raise ModelError("token counts must be positive")
        mid = self.predict_runtime_at(dataset, tokens)
        if not self._members:
            return mid, mid, mid
        stacked = self._member_parameters(dataset)
        log_tokens = np.log(tokens)
        log_runtimes = stacked[:, :, 1] + stacked[:, :, 0] * log_tokens
        spread = _Z_HI * log_runtimes.std(axis=0)
        log_mid = np.log(mid)
        return np.exp(log_mid - spread), mid, np.exp(log_mid + spread)

    def predict_pcc_intervals(
        self, dataset: PCCDataset
    ) -> list[PCCInterval] | None:
        """Per-example parameter intervals from the ensemble spread.

        Each log parameter is offset by ``ndtri(0.9)`` times its
        cross-member standard deviation around the primary member's
        value; the resulting curves are elementwise ordered in
        ``(a, log b)`` by construction, so they form a valid
        :class:`PCCInterval` directly. Without extra members, falls
        back to the base degenerate intervals.
        """
        if not self._members:
            return super().predict_pcc_intervals(dataset)
        stacked = self._member_parameters(dataset)
        mid_params = stacked[0]
        spread = _Z_HI * stacked.std(axis=0)
        intervals = []
        for (a_mid, lb_mid), (a_sd, lb_sd) in zip(mid_params, spread):
            # Larger a and larger log b both mean slower: hi adds both.
            hi_a = min(a_mid + a_sd, 0.0)  # keep the monotone guarantee
            lo_a = a_mid - a_sd
            intervals.append(
                PCCInterval(
                    lo=PowerLawPCC.from_log_parameters(lo_a, lb_mid - lb_sd),
                    mid=PowerLawPCC.from_log_parameters(a_mid, lb_mid),
                    hi=PowerLawPCC.from_log_parameters(hi_a, lb_mid + lb_sd),
                )
            )
        return intervals

    def num_parameters(self) -> int:
        if self._network is None:
            return 0
        return self._network.num_parameters()
