"""TASQ prediction models: XGBoost SS/PL, NN, GNN, and evaluation."""

from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset, PCCExample, build_dataset
from repro.models.evaluation import (
    ModelEvaluation,
    evaluate_model,
    evaluation_table,
)
from repro.models.fine_grained import FineGrainedPCCModel
from repro.models.gnn_model import GNNPCCModel
from repro.models.nn_model import NNPCCModel
from repro.models.training import TrainConfig, train_parameter_model
from repro.models.tuning import WeightTuningResult, tune_runtime_weight
from repro.models.xgboost_models import (
    QUANTILE_HEAD_PARAMS,
    XGBoostPL,
    XGBoostRuntimeModel,
    XGBoostSS,
    reference_window,
)

__all__ = [
    "PCCPredictor",
    "PCCDataset",
    "PCCExample",
    "build_dataset",
    "TrainConfig",
    "train_parameter_model",
    "NNPCCModel",
    "GNNPCCModel",
    "FineGrainedPCCModel",
    "XGBoostRuntimeModel",
    "XGBoostSS",
    "XGBoostPL",
    "QUANTILE_HEAD_PARAMS",
    "reference_window",
    "ModelEvaluation",
    "evaluate_model",
    "evaluation_table",
    "WeightTuningResult",
    "tune_runtime_weight",
]
