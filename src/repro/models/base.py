"""Common interface of the TASQ prediction models (Section 4.4).

All models answer the same two questions for an unseen job:

* **point prediction** — expected run time at a specific token count,
* **trend prediction** — the run-time curve over a token range.

Trend models (NN, GNN, XGBoost PL) expose the fitted/predicted power-law
parameters; XGBoost SS is non-parametric and only produces curves.

Models additionally share an *uncertainty* surface —
:meth:`PCCPredictor.predict_interval` (q10/q50/q90 run times at a token
count) and :meth:`PCCPredictor.predict_pcc_intervals` (whole
:class:`~repro.pcc.intervals.PCCInterval` curves). The base
implementations return degenerate intervals collapsed onto the point
prediction, so every model participates in interval-consuming paths;
models that actually quantify uncertainty (quantile-head XGBoost,
ensembled NN) override them and report ``supports_intervals = True``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotFittedError
from repro.models.dataset import PCCDataset
from repro.pcc.curve import PowerLawPCC
from repro.pcc.intervals import PCCInterval

__all__ = ["PCCPredictor"]


class PCCPredictor(ABC):
    """Base class for the four Section 5 models."""

    #: Model label used in evaluation tables.
    name: str = "model"
    #: True when the model guarantees non-increasing predicted PCCs.
    guarantees_monotonic: bool = False
    #: True when prediction reads ``PCCExample.graph`` (GNN). Serving
    #: layers that ship only job vectors across process boundaries (the
    #: sharded front end's shared-memory path) must refuse such models.
    uses_graph_features: bool = False

    def __init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------
    @abstractmethod
    def fit(self, dataset: PCCDataset) -> "PCCPredictor":
        """Train on a featurized dataset; returns self."""

    @abstractmethod
    def predict_runtime_at(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> np.ndarray:
        """Point prediction: run time of example ``i`` at ``tokens[i]``."""

    @abstractmethod
    def predict_curves(
        self, dataset: PCCDataset, grids: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Trend prediction: run times of example ``i`` over ``grids[i]``."""

    def predict_parameters(self, dataset: PCCDataset) -> np.ndarray | None:
        """``(M, 2)`` predicted ``(a, log b)``, or None if non-parametric."""
        return None

    def predict_pccs(self, dataset: PCCDataset) -> list[PowerLawPCC] | None:
        """Predicted power-law PCC per example (None if non-parametric)."""
        parameters = self.predict_parameters(dataset)
        if parameters is None:
            return None
        return [
            PowerLawPCC.from_log_parameters(a, log_b) for a, log_b in parameters
        ]

    # ------------------------------------------------------------------
    @property
    def supports_intervals(self) -> bool:
        """True when the model produces real (non-degenerate) intervals."""
        return False

    def predict_interval(
        self, dataset: PCCDataset, tokens: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lo, mid, hi)`` predicted run times of example ``i`` at
        ``tokens[i]`` — the q10/q50/q90 of the run-time distribution.

        The default collapses onto the point prediction (zero-width
        intervals), so point-only models remain drop-in everywhere
        intervals are consumed.
        """
        point = self.predict_runtime_at(dataset, tokens)
        return point, point, point

    def predict_pcc_intervals(
        self, dataset: PCCDataset
    ) -> list[PCCInterval] | None:
        """Predicted :class:`~repro.pcc.intervals.PCCInterval` per
        example (None if non-parametric); degenerate by default."""
        pccs = self.predict_pccs(dataset)
        if pccs is None:
            return None
        return [PCCInterval.degenerate(pcc) for pcc in pccs]

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{self.name} used before fit")

    def num_parameters(self) -> int:
        """Trainable scalar parameter count (Table 7); 0 if inapplicable."""
        return 0
