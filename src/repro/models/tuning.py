"""Loss-weight tuning (Section 4.5).

The paper treats the component weights of LF2/LF3 as hyper-parameters and
"tuned the penalization weights so that the MAE of the curve parameters in
LF2 is close to that of LF1" — i.e. pick the largest run-time penalty that
does not degrade the trend fit. :func:`tune_runtime_weight` implements
exactly that procedure as a validation-set grid search.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.ml.losses import LF1, LF2
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset
from repro.models.evaluation import evaluate_model

__all__ = ["WeightTuningResult", "tune_runtime_weight"]


@dataclass(frozen=True)
class WeightTuningResult:
    """Outcome of the LF2 run-time weight search."""

    best_weight: float
    lf1_param_mae: float
    trials: tuple[tuple[float, float, float], ...]
    # each trial: (weight, curve_param_mae, runtime_median_ape)

    def best_trial(self) -> tuple[float, float, float]:
        for trial in self.trials:
            if trial[0] == self.best_weight:
                return trial
        raise ModelError("best weight missing from trials")


def tune_runtime_weight(
    model_factory: Callable[[object], PCCPredictor],
    train: PCCDataset,
    validation: PCCDataset,
    weights: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0, 2.0),
    tolerance: float = 1.25,
) -> WeightTuningResult:
    """Pick LF2's run-time weight per the paper's tuning rule.

    Parameters
    ----------
    model_factory:
        Maps a loss object to a fresh unfitted model, e.g.
        ``lambda loss: NNPCCModel(loss=loss, train_config=...)``.
    train, validation:
        Featurized datasets; the rule is evaluated on ``validation``.
    weights:
        Candidate run-time-component weights.
    tolerance:
        A weight is *admissible* when its curve-parameter MAE is at most
        ``tolerance`` times the LF1 reference ("close to LF1"). Among
        admissible weights the one with the lowest run-time median APE
        wins; if none is admissible, the weight with the lowest parameter
        MAE wins.
    """
    if not weights:
        raise ModelError("no candidate weights given")
    if tolerance < 1.0:
        raise ModelError("tolerance must be at least 1.0")

    reference = model_factory(LF1()).fit(train)
    lf1_eval = evaluate_model(reference, validation)
    if lf1_eval.curve_param_mae is None:
        raise ModelError("weight tuning needs a parametric model")
    lf1_mae = lf1_eval.curve_param_mae

    trials = []
    for weight in weights:
        model = model_factory(LF2(runtime_weight=weight)).fit(train)
        evaluation = evaluate_model(model, validation)
        trials.append(
            (
                float(weight),
                float(evaluation.curve_param_mae),
                float(evaluation.runtime_median_ape),
            )
        )

    admissible = [t for t in trials if t[1] <= tolerance * lf1_mae]
    if admissible:
        best = min(admissible, key=lambda t: t[2])
    else:
        best = min(trials, key=lambda t: t[1])

    return WeightTuningResult(
        best_weight=best[0],
        lf1_param_mae=float(lf1_mae),
        trials=tuple(trials),
    )
