"""Human-readable PCC explanations (Section 2.2).

TASQ can either apply its recommendation automatically or "display the
PCC to the users for them to understand the performance-resource
trade-off and to make an informed decision about the token count". This
module renders that display for terminals: a text chart of the predicted
curve, the marked operating points, and a plain-language summary of the
trade-off — made possible by the PCC's guaranteed monotone, two-parameter
form (one of the paper's §4.1 motivations).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PipelineError
from repro.pcc.curve import PowerLawPCC
from repro.tasq.pipeline import TokenRecommendation

__all__ = ["render_pcc_chart", "explain_recommendation"]


def render_pcc_chart(
    pcc: PowerLawPCC,
    max_tokens: float,
    min_tokens: float = 1.0,
    width: int = 48,
    height: int = 12,
    marks: dict[str, float] | None = None,
) -> str:
    """ASCII chart of a PCC over ``[min_tokens, max_tokens]``.

    ``marks`` maps single-character labels to token counts highlighted on
    the curve (e.g. ``{"O": optimal, "R": requested}``).
    """
    if max_tokens <= min_tokens:
        raise PipelineError("max_tokens must exceed min_tokens")
    if width < 10 or height < 4:
        raise PipelineError("chart must be at least 10x4 characters")

    tokens = np.geomspace(min_tokens, max_tokens, width)
    runtimes = np.asarray(pcc.runtime(tokens), dtype=float)
    low, high = runtimes.min(), runtimes.max()
    span = max(high - low, 1e-9)
    rows = np.clip(
        ((high - runtimes) / span * (height - 1)).round().astype(int),
        0,
        height - 1,
    )

    grid = [[" "] * width for _ in range(height)]
    for column, row in enumerate(rows):
        grid[row][column] = "*"

    for label, mark_tokens in (marks or {}).items():
        mark_tokens = float(np.clip(mark_tokens, min_tokens, max_tokens))
        column = int(
            np.argmin(np.abs(np.log(tokens) - np.log(mark_tokens)))
        )
        grid[rows[column]][column] = label[0]

    lines = []
    for index, row in enumerate(grid):
        if index == 0:
            axis = f"{high:>8.0f}s |"
        elif index == height - 1:
            axis = f"{low:>8.0f}s |"
        else:
            axis = " " * 10 + "|"
        lines.append(axis + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 11
        + f"{min_tokens:<10.0f}"
        + f"{'tokens (log scale)':^{max(0, width - 20)}}"
        + f"{max_tokens:>10.0f}"
    )
    return "\n".join(lines)


def explain_recommendation(recommendation: TokenRecommendation) -> str:
    """Plain-language explanation of one token recommendation."""
    pcc = recommendation.pcc
    requested = recommendation.requested_tokens
    optimal = recommendation.optimal_tokens

    chart = render_pcc_chart(
        pcc,
        max_tokens=float(requested),
        marks={"O": float(optimal), "R": float(requested)},
    )

    steepness = (
        "highly parallel: it speeds up almost linearly with tokens"
        if pcc.a < -0.8
        else "moderately parallel: extra tokens help, with diminishing returns"
        if pcc.a < -0.3
        else "mostly serial: extra tokens barely change its run time"
    )
    at_half = pcc.speedup(max(1, requested // 2), requested)
    parts = [
        f"Job {recommendation.job_id}: predicted PCC "
        f"runtime = {pcc.b:.1f} x tokens^{pcc.a:.3f}",
        "",
        chart,
        "",
        f"This job looks {steepness} (exponent a = {pcc.a:.2f}).",
        f"Halving the requested {requested} tokens would slow it by an "
        f"estimated {at_half - 1:.0%}.",
        f"Recommended allocation: {optimal} tokens "
        f"({recommendation.token_savings:.0%} below the request, "
        f"predicted slowdown {recommendation.predicted_slowdown:.1%}).",
        "The curve is monotonically non-increasing by construction, so "
        "more tokens never hurt — they just stop helping.",
    ]
    return "\n".join(parts)
