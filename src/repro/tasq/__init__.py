"""TASQ end-to-end pipelines, model store, and what-if analysis."""

from repro.tasq.explain import explain_recommendation, render_pcc_chart
from repro.tasq.model_store import ModelRecord, ModelStore
from repro.tasq.monitoring import MonitorSnapshot, PredictionMonitor
from repro.tasq.price_performance import (
    PricePoint,
    cheapest_within_deadline,
    job_cost,
    pareto_frontier,
)
from repro.tasq.pipeline import (
    PlanFeatures,
    ScoringPipeline,
    TasqConfig,
    TokenRecommendation,
    TrainedModels,
    TrainingPipeline,
    featurize,
)
from repro.tasq.whatif import (
    REDUCTION_BUCKETS,
    TokenReductionReport,
    minimum_tokens_within_budget,
    token_reduction_report,
)

__all__ = [
    "explain_recommendation",
    "render_pcc_chart",
    "ModelStore",
    "ModelRecord",
    "PredictionMonitor",
    "MonitorSnapshot",
    "TasqConfig",
    "TrainingPipeline",
    "TrainedModels",
    "ScoringPipeline",
    "TokenRecommendation",
    "PlanFeatures",
    "featurize",
    "PricePoint",
    "job_cost",
    "cheapest_within_deadline",
    "pareto_frontier",
    "REDUCTION_BUCKETS",
    "TokenReductionReport",
    "minimum_tokens_within_budget",
    "token_reduction_report",
]
