"""Workload-level what-if analysis: potential token-request reduction.

Reproduces Figure 2: for each historical job, find the smallest token
allocation whose (AREPAS-estimated) run time stays within a performance
budget of the observed run, and report how the resulting token-request
reductions distribute over the workload at several budgets (no loss /
5% loss / 10% loss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arepas.simulator import AREPAS
from repro.exceptions import PipelineError
from repro.scope.repository import JobRepository, TelemetryRecord

__all__ = [
    "REDUCTION_BUCKETS",
    "minimum_tokens_within_budget",
    "TokenReductionReport",
    "token_reduction_report",
]

#: Figure 2's x-axis buckets: (label, inclusive-lower, exclusive-upper)
#: over the fractional token-request reduction.
REDUCTION_BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("0%", -np.inf, 1e-9),
    ("0-25%", 1e-9, 0.25),
    ("25-50%", 0.25, 0.50),
    (">50%", 0.50, np.inf),
)


def minimum_tokens_within_budget(
    record: TelemetryRecord,
    slowdown_budget: float,
    simulator: AREPAS | None = None,
) -> int:
    """Smallest allocation keeping estimated run time within the budget.

    Binary-searches integer allocations in ``[1, requested]`` using the
    AREPAS estimate, exploiting that the simulated run time is
    non-increasing in the allocation.
    """
    if slowdown_budget < 0:
        raise PipelineError("slowdown budget must be non-negative")
    simulator = simulator or AREPAS()
    requested = int(record.requested_tokens)
    limit = record.runtime * (1.0 + slowdown_budget)

    low, high = 1, requested
    while low < high:
        mid = (low + high) // 2
        if simulator.runtime(record.skyline, mid) <= limit:
            high = mid
        else:
            low = mid + 1
    return low


@dataclass(frozen=True)
class TokenReductionReport:
    """Figure 2's bar heights for one performance budget."""

    slowdown_budget: float
    bucket_fractions: dict[str, float]
    mean_reduction: float

    def fraction_reducible(self) -> float:
        """Share of jobs that could request fewer tokens at all."""
        return 1.0 - self.bucket_fractions["0%"]

    def fraction_halvable(self) -> float:
        """Share of jobs needing less than half the requested tokens."""
        return self.bucket_fractions[">50%"]


def token_reduction_report(
    repository: JobRepository | list[TelemetryRecord],
    slowdown_budget: float = 0.0,
    simulator: AREPAS | None = None,
) -> TokenReductionReport:
    """Distribution of potential token-request reductions (Figure 2).

    ``slowdown_budget`` of 0.0/0.05/0.10 corresponds to the paper's
    "default performance" / "95% default" / "90% default" scenarios.
    """
    records = (
        repository.records()
        if isinstance(repository, JobRepository)
        else list(repository)
    )
    if not records:
        raise PipelineError("no records to analyse")
    simulator = simulator or AREPAS()

    reductions = []
    for record in records:
        minimum = minimum_tokens_within_budget(record, slowdown_budget, simulator)
        reductions.append(1.0 - minimum / record.requested_tokens)
    reductions_arr = np.array(reductions)

    fractions = {}
    for label, low, high in REDUCTION_BUCKETS:
        mask = (reductions_arr > low) & (reductions_arr <= high)
        if label == "0%":
            mask = reductions_arr <= 1e-9
        fractions[label] = float(mask.mean())

    return TokenReductionReport(
        slowdown_budget=slowdown_budget,
        bucket_fractions=fractions,
        mean_reduction=float(reductions_arr.mean()),
    )
