"""Price-performance optimization on top of a PCC (Section 2.3).

The paper's companion work ("Predictive Price-Performance Optimization
for Serverless Query Processing", cited as [35]) chooses allocations that
trade *money* against run time, not just tokens. Once a PCC exists, that
optimization is closed-form:

* **cost** of running at allocation ``A`` is
  ``A x runtime(A) x rate = rate * b * A^(1+a)`` for a power-law PCC, so
  cost is *increasing* in ``A`` when ``a > -1`` (imperfect scaling:
  parallelism wastes money) and *decreasing* when ``a < -1``
  (super-linear scaling: more tokens are a free lunch — rare and usually
  an artefact);
* the **cheapest allocation meeting a deadline** solves
  ``runtime(A) <= D`` at the boundary: ``A* = (b / D)^(-1/a)``;
* the **Pareto frontier** of (cost, run time) over an allocation range is
  where users pick their own trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PipelineError
from repro.pcc.curve import PowerLawPCC
from repro.pcc.intervals import PCCInterval, pcc_at_risk

__all__ = [
    "PricePoint",
    "job_cost",
    "cheapest_within_deadline",
    "pareto_frontier",
]


@dataclass(frozen=True)
class PricePoint:
    """One allocation's position in the price-performance plane."""

    tokens: int
    runtime: float
    cost: float


def job_cost(
    pcc: PowerLawPCC, tokens: float, rate_per_token_second: float = 1.0
) -> float:
    """Monetary cost of one run: tokens x predicted seconds x rate."""
    if tokens <= 0:
        raise PipelineError("token count must be positive")
    if rate_per_token_second <= 0:
        raise PipelineError("price rate must be positive")
    return float(tokens * pcc.runtime(tokens) * rate_per_token_second)


def cheapest_within_deadline(
    pcc: PowerLawPCC,
    deadline_seconds: float,
    min_tokens: int = 1,
    max_tokens: int | None = None,
    *,
    interval: PCCInterval | None = None,
    risk: float | None = None,
) -> int | None:
    """Smallest allocation whose predicted run time meets the deadline.

    For a non-increasing power law, cost rises with tokens whenever
    ``a > -1``, so the deadline-feasible *minimum* is also the cheapest
    choice. Returns None when even ``max_tokens`` misses the deadline
    (the deadline is infeasible under the predicted PCC).

    With ``risk`` and ``interval`` given, the search runs on the
    interval's risk-quantile curve (:func:`~repro.pcc.intervals
    .pcc_at_risk`) instead of the point estimate — ``risk=0.9`` buys the
    allocation at which the q90 run time (not the median) meets the
    deadline, i.e. the deadline holds with probability 0.9 under the
    model's uncertainty (see ``docs/uncertainty.md``).
    """
    if risk is not None:
        if interval is None:
            raise PipelineError(
                "risk-adjusted deadline search needs a PCCInterval"
            )
        pcc = pcc_at_risk(interval, risk)
    if deadline_seconds <= 0:
        raise PipelineError("deadline must be positive")
    if not pcc.is_non_increasing:
        raise PipelineError("deadline search needs a non-increasing PCC")

    if pcc.a == 0:
        feasible = pcc.b <= deadline_seconds
        if not feasible:
            return None
        return max(1, min_tokens)

    # runtime(A) <= D  <=>  A >= (b / D)^(-1/a)   (a < 0). Computed in
    # log space: for near-flat curves (|a| tiny) the direct power can
    # exceed float range and raise OverflowError.
    log_boundary = (np.log(pcc.b) - np.log(deadline_seconds)) / (-pcc.a)
    if log_boundary > 700.0:  # exp() overflows: no finite allocation fits
        return None
    boundary = float(np.exp(log_boundary))
    tokens = max(min_tokens, int(np.ceil(boundary - 1e-9)))
    if max_tokens is not None and tokens > max_tokens:
        return None
    return tokens


def pareto_frontier(
    pcc: PowerLawPCC,
    min_tokens: int = 1,
    max_tokens: int = 256,
    num_points: int = 12,
    rate_per_token_second: float = 1.0,
) -> list[PricePoint]:
    """Pareto-efficient (cost, run time) points over a token range.

    Evaluates a geometric token grid and keeps the points no other point
    dominates (cheaper *and* faster). With a power-law PCC and ``a > -1``
    every grid point is Pareto-efficient (cost strictly trades against
    time); flat curves collapse to the single cheapest point.
    """
    if min_tokens < 1 or max_tokens < min_tokens:
        raise PipelineError("invalid token range")
    if num_points < 2:
        raise PipelineError("need at least two frontier points")

    grid = np.unique(
        np.round(np.geomspace(min_tokens, max_tokens, num_points)).astype(int)
    )
    candidates = [
        PricePoint(
            tokens=int(tokens),
            runtime=float(pcc.runtime(int(tokens))),
            cost=job_cost(pcc, int(tokens), rate_per_token_second),
        )
        for tokens in grid
    ]

    frontier = []
    for point in candidates:
        dominated = any(
            other.cost <= point.cost + 1e-12
            and other.runtime <= point.runtime + 1e-12
            and (other.cost < point.cost - 1e-12
                 or other.runtime < point.runtime - 1e-12)
            for other in candidates
        )
        if not dominated:
            frontier.append(point)
    return frontier
