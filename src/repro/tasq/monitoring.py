"""Prediction monitoring and retraining signals.

The production TASQ deployment (Figure 4) feeds completed jobs back into
the job repository; a serving system additionally needs to know *when the
deployed model has drifted* — workloads change (new business units, input
growth) and a model trained months ago degrades silently.

:class:`PredictionMonitor` accumulates (predicted, actual) run-time pairs
as jobs finish, tracks a rolling median absolute percentage error, and
raises a retraining signal once the rolling error exceeds a threshold for
long enough. It is deliberately model-agnostic: anything that predicted a
run time can be monitored.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PipelineError

__all__ = ["MonitorSnapshot", "PredictionMonitor"]


@dataclass(frozen=True)
class MonitorSnapshot:
    """State of the monitor at one point in time."""

    observations: int
    rolling_median_ape: float | None
    consecutive_breaches: int
    needs_retraining: bool


class PredictionMonitor:
    """Rolling-error monitor with a debounced retraining signal.

    Parameters
    ----------
    window:
        Number of most recent jobs in the rolling error window.
    error_threshold:
        Rolling median APE (percent) above which the window *breaches*.
    patience:
        Number of consecutive breaching observations required before the
        retraining signal fires — a debounce against noisy bursts.
    min_observations:
        No signal is raised before this many jobs have been observed.
    """

    def __init__(
        self,
        window: int = 200,
        error_threshold: float = 50.0,
        patience: int = 20,
        min_observations: int = 50,
    ) -> None:
        if window < 2:
            raise PipelineError("window must hold at least two jobs")
        if error_threshold <= 0:
            raise PipelineError("error threshold must be positive")
        if patience < 1:
            raise PipelineError("patience must be at least 1")
        if min_observations < 2:
            raise PipelineError("min_observations must be at least 2")
        self.window = window
        self.error_threshold = error_threshold
        self.patience = patience
        self.min_observations = min_observations
        self._errors: deque[float] = deque(maxlen=window)
        self._total = 0
        self._consecutive_breaches = 0

    # ------------------------------------------------------------------
    def observe(self, predicted_runtime: float, actual_runtime: float) -> None:
        """Record one completed job's prediction outcome."""
        if predicted_runtime <= 0 or actual_runtime <= 0:
            raise PipelineError("run times must be positive")
        ape = abs(predicted_runtime - actual_runtime) / actual_runtime * 100.0
        self._errors.append(ape)
        self._total += 1
        if (
            self._total >= self.min_observations
            and self.rolling_median_ape is not None
            and self.rolling_median_ape > self.error_threshold
        ):
            self._consecutive_breaches += 1
        else:
            self._consecutive_breaches = 0

    def observe_batch(
        self, predicted: np.ndarray, actual: np.ndarray
    ) -> None:
        predicted = np.asarray(predicted, dtype=float)
        actual = np.asarray(actual, dtype=float)
        if predicted.shape != actual.shape:
            raise PipelineError("predicted/actual shapes differ")
        for p, a in zip(predicted, actual):
            self.observe(float(p), float(a))

    # ------------------------------------------------------------------
    @property
    def rolling_median_ape(self) -> float | None:
        """Median APE over the window (None before any observation)."""
        if not self._errors:
            return None
        return float(np.median(self._errors))

    @property
    def needs_retraining(self) -> bool:
        """True once the error has breached for ``patience`` jobs."""
        return self._consecutive_breaches >= self.patience

    def snapshot(self) -> MonitorSnapshot:
        return MonitorSnapshot(
            observations=self._total,
            rolling_median_ape=self.rolling_median_ape,
            consecutive_breaches=self._consecutive_breaches,
            needs_retraining=self.needs_retraining,
        )

    def reset(self) -> None:
        """Clear state (call after retraining + redeployment)."""
        self._errors.clear()
        self._total = 0
        self._consecutive_breaches = 0
