"""Prediction monitoring and retraining signals.

The production TASQ deployment (Figure 4) feeds completed jobs back into
the job repository; a serving system additionally needs to know *when the
deployed model has drifted* — workloads change (new business units, input
growth) and a model trained months ago degrades silently.

:class:`PredictionMonitor` accumulates (predicted, actual) run-time pairs
as jobs finish, tracks a rolling median absolute percentage error, and
raises a retraining signal once the rolling error exceeds a threshold for
long enough. It is deliberately model-agnostic: anything that predicted a
run time can be monitored.

**Point-estimate assumption, made explicit.** The APE rule watches only
the *median* of the error distribution: a model whose point predictions
stay centred while its error spread explodes (or whose claimed
uncertainty is mis-calibrated) never trips it. Monitors therefore also
accept the predicted ``(lo, hi)`` interval with each observation and
track rolling *coverage* — the fraction of actual run times landing
inside their predicted q10–q90 interval. Well-calibrated intervals cover
a ``coverage_target`` (default 0.8) fraction; sustained coverage below
``coverage_target - coverage_tolerance`` (default 0.8 - 0.15 = 0.65) is
a second, independent breach condition feeding the same debounced
retraining signal. Interval observations are optional per call, so
point-only models keep the exact legacy behaviour (see
``docs/uncertainty.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PipelineError

__all__ = ["MonitorSnapshot", "PredictionMonitor"]


@dataclass(frozen=True)
class MonitorSnapshot:
    """State of the monitor at one point in time."""

    observations: int
    rolling_median_ape: float | None
    consecutive_breaches: int
    needs_retraining: bool
    #: Rolling q10-q90 coverage (None with no interval observations).
    rolling_coverage: float | None = None
    #: Which rule the current breach streak is riding ("ape",
    #: "coverage", or None when not breaching).
    breach_reason: str | None = None


class PredictionMonitor:
    """Rolling-error monitor with a debounced retraining signal.

    Parameters
    ----------
    window:
        Number of most recent jobs in the rolling error window.
    error_threshold:
        Rolling median APE (percent) above which the window *breaches*.
    patience:
        Number of consecutive breaching observations required before the
        retraining signal fires — a debounce against noisy bursts.
    min_observations:
        No signal is raised before this many jobs have been observed.
        Applies per rule: the coverage rule needs this many *interval*
        observations before it can breach.
    coverage_target:
        Nominal interval coverage (0.8 for q10-q90 intervals).
    coverage_tolerance:
        Slack below the target before the coverage rule breaches: the
        rolling coverage must fall below ``coverage_target -
        coverage_tolerance`` (default 0.65).
    """

    def __init__(
        self,
        window: int = 200,
        error_threshold: float = 50.0,
        patience: int = 20,
        min_observations: int = 50,
        coverage_target: float = 0.8,
        coverage_tolerance: float = 0.15,
    ) -> None:
        if window < 2:
            raise PipelineError("window must hold at least two jobs")
        if error_threshold <= 0:
            raise PipelineError("error threshold must be positive")
        if patience < 1:
            raise PipelineError("patience must be at least 1")
        if min_observations < 2:
            raise PipelineError("min_observations must be at least 2")
        if not 0.0 < coverage_target < 1.0:
            raise PipelineError("coverage target must be inside (0, 1)")
        if not 0.0 < coverage_tolerance < coverage_target:
            raise PipelineError(
                "coverage tolerance must be in (0, coverage_target)"
            )
        self.window = window
        self.error_threshold = error_threshold
        self.patience = patience
        self.min_observations = min_observations
        self.coverage_target = coverage_target
        self.coverage_tolerance = coverage_tolerance
        self._errors: deque[float] = deque(maxlen=window)
        self._covered: deque[bool] = deque(maxlen=window)
        self._total = 0
        self._interval_total = 0
        self._consecutive_breaches = 0
        self._breach_reason: str | None = None

    # ------------------------------------------------------------------
    def observe(
        self,
        predicted_runtime: float,
        actual_runtime: float,
        interval: tuple[float, float] | None = None,
    ) -> None:
        """Record one completed job's prediction outcome.

        ``interval`` optionally carries the predicted ``(lo, hi)`` run
        times (the q10/q90) at the granted allocation; when given, the
        coverage drift rule sees whether the actual run time landed
        inside it.
        """
        if predicted_runtime <= 0 or actual_runtime <= 0:
            raise PipelineError("run times must be positive")
        ape = abs(predicted_runtime - actual_runtime) / actual_runtime * 100.0
        self._errors.append(ape)
        self._total += 1
        if interval is not None:
            lo, hi = float(interval[0]), float(interval[1])
            if not 0.0 < lo <= hi:
                raise PipelineError(
                    "interval must satisfy 0 < lo <= hi"
                )
            self._covered.append(lo <= actual_runtime <= hi)
            self._interval_total += 1

        ape_breach = (
            self._total >= self.min_observations
            and self.rolling_median_ape is not None
            and self.rolling_median_ape > self.error_threshold
        )
        coverage = self.rolling_coverage
        coverage_breach = (
            self._interval_total >= self.min_observations
            and coverage is not None
            and coverage < self.coverage_target - self.coverage_tolerance
        )
        if ape_breach or coverage_breach:
            self._consecutive_breaches += 1
            self._breach_reason = "ape" if ape_breach else "coverage"
        else:
            self._consecutive_breaches = 0
            self._breach_reason = None

    def observe_batch(
        self, predicted: np.ndarray, actual: np.ndarray
    ) -> None:
        predicted = np.asarray(predicted, dtype=float)
        actual = np.asarray(actual, dtype=float)
        if predicted.shape != actual.shape:
            raise PipelineError("predicted/actual shapes differ")
        for p, a in zip(predicted, actual):
            self.observe(float(p), float(a))

    # ------------------------------------------------------------------
    @property
    def rolling_median_ape(self) -> float | None:
        """Median APE over the window (None before any observation)."""
        if not self._errors:
            return None
        return float(np.median(self._errors))

    @property
    def rolling_coverage(self) -> float | None:
        """Fraction of actuals inside their predicted q10-q90 interval
        over the window (None with no interval observations)."""
        if not self._covered:
            return None
        return float(np.mean(self._covered))

    @property
    def needs_retraining(self) -> bool:
        """True once the error has breached for ``patience`` jobs."""
        return self._consecutive_breaches >= self.patience

    def snapshot(self) -> MonitorSnapshot:
        return MonitorSnapshot(
            observations=self._total,
            rolling_median_ape=self.rolling_median_ape,
            consecutive_breaches=self._consecutive_breaches,
            needs_retraining=self.needs_retraining,
            rolling_coverage=self.rolling_coverage,
            breach_reason=self._breach_reason,
        )

    def reset(self) -> None:
        """Clear state (call after retraining + redeployment)."""
        self._errors.clear()
        self._covered.clear()
        self._total = 0
        self._interval_total = 0
        self._consecutive_breaches = 0
        self._breach_reason = None
