"""Model registry (the AML model store of Figure 4).

An in-process registry of fitted models with metadata and optional
pickle-backed persistence, standing in for the Azure ML model store +
AKS deployment plumbing of the production system.

The store is thread-safe: the serving layer reads models from worker
threads while a training pipeline may concurrently register a newer
version, and :meth:`ModelStore.latest` lets a long-running
:class:`~repro.serving.server.AllocationServer` hot-swap to the newest
deployment without restarting.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import PipelineError
from repro.models.base import PCCPredictor

__all__ = ["ModelRecord", "ModelStore"]


@dataclass(frozen=True)
class ModelRecord:
    """One registered model plus its training metadata."""

    name: str
    model: PCCPredictor
    version: int
    metadata: dict = field(default_factory=dict)


class ModelStore:
    """Versioned, thread-safe in-memory model registry.

    Optionally persists records to disk (``root``). All mutating and
    reading operations hold one re-entrant lock; registration and lookup
    may therefore race freely across threads, with lookups always seeing
    a consistent version list.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self._records: dict[str, list[ModelRecord]] = {}
        self._lock = threading.RLock()
        self._last_registered: ModelRecord | None = None
        self._root = Path(root) if root is not None else None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def register(
        self, name: str, model: PCCPredictor, metadata: dict | None = None
    ) -> ModelRecord:
        """Register a fitted model under ``name``; versions auto-increment."""
        with self._lock:
            versions = self._records.setdefault(name, [])
            record = ModelRecord(
                name=name,
                model=model,
                version=len(versions) + 1,
                metadata=dict(metadata or {}),
            )
            versions.append(record)
            self._last_registered = record
        if self._root is not None:
            path = self._root / f"{name}-v{record.version}.pkl"
            with open(path, "wb") as handle:
                pickle.dump(record, handle)
        return record

    def get(self, name: str, version: int | None = None) -> ModelRecord:
        """Fetch a model by name (latest version by default)."""
        with self._lock:
            versions = self._records.get(name)
            if not versions:
                raise PipelineError(f"no model registered under {name!r}")
            if version is None:
                return versions[-1]
            for record in versions:
                if record.version == version:
                    return record
            raise PipelineError(f"model {name!r} has no version {version}")

    def latest(self, name: str | None = None) -> ModelRecord:
        """Newest version of ``name``, or the most recently registered
        record across all names when ``name`` is omitted.

        This is the hot-swap hook: a serving worker polls ``latest`` and
        switches models whenever the returned version advances.
        """
        with self._lock:
            if name is not None:
                return self.get(name)
            if self._last_registered is None:
                raise PipelineError("the model store is empty")
            return self._last_registered

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._records

    # ------------------------------------------------------------------
    def load_from_disk(self, name: str, version: int) -> ModelRecord:
        """Load a previously persisted model record."""
        if self._root is None:
            raise PipelineError("this store has no persistence root")
        path = self._root / f"{name}-v{version}.pkl"
        if not path.exists():
            raise PipelineError(f"no persisted model at {path}")
        with open(path, "rb") as handle:
            record = pickle.load(handle)
        with self._lock:
            self._records.setdefault(name, []).append(record)
            self._last_registered = record
        return record
