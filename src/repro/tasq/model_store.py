"""Model registry (the AML model store of Figure 4).

An in-process registry of fitted models with metadata and optional
pickle-backed persistence, standing in for the Azure ML model store +
AKS deployment plumbing of the production system.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import PipelineError
from repro.models.base import PCCPredictor

__all__ = ["ModelRecord", "ModelStore"]


@dataclass(frozen=True)
class ModelRecord:
    """One registered model plus its training metadata."""

    name: str
    model: PCCPredictor
    version: int
    metadata: dict = field(default_factory=dict)


class ModelStore:
    """Versioned in-memory model registry with optional disk persistence."""

    def __init__(self, root: Path | str | None = None) -> None:
        self._records: dict[str, list[ModelRecord]] = {}
        self._root = Path(root) if root is not None else None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def register(
        self, name: str, model: PCCPredictor, metadata: dict | None = None
    ) -> ModelRecord:
        """Register a fitted model under ``name``; versions auto-increment."""
        versions = self._records.setdefault(name, [])
        record = ModelRecord(
            name=name,
            model=model,
            version=len(versions) + 1,
            metadata=dict(metadata or {}),
        )
        versions.append(record)
        if self._root is not None:
            path = self._root / f"{name}-v{record.version}.pkl"
            with open(path, "wb") as handle:
                pickle.dump(record, handle)
        return record

    def get(self, name: str, version: int | None = None) -> ModelRecord:
        """Fetch a model by name (latest version by default)."""
        versions = self._records.get(name)
        if not versions:
            raise PipelineError(f"no model registered under {name!r}")
        if version is None:
            return versions[-1]
        for record in versions:
            if record.version == version:
                return record
        raise PipelineError(f"model {name!r} has no version {version}")

    def names(self) -> list[str]:
        return sorted(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    # ------------------------------------------------------------------
    def load_from_disk(self, name: str, version: int) -> ModelRecord:
        """Load a previously persisted model record."""
        if self._root is None:
            raise PipelineError("this store has no persistence root")
        path = self._root / f"{name}-v{version}.pkl"
        if not path.exists():
            raise PipelineError(f"no persisted model at {path}")
        with open(path, "rb") as handle:
            record = pickle.load(handle)
        self._records.setdefault(name, []).append(record)
        return record
