"""End-to-end TASQ training and scoring pipelines (Figure 4).

The production system ingests historical telemetry, featurizes it, trains
PCC prediction models, registers them, and serves predictions for
incoming jobs at compile time. This module reproduces that flow
in-process:

* :class:`TrainingPipeline` — repository -> AREPAS augmentation ->
  featurization -> model training -> registration in a
  :class:`~repro.tasq.model_store.ModelStore`.
* :class:`ScoringPipeline` — compile-time plan -> features -> predicted
  PCC -> token recommendation (optimal tokens + expected trade-off).

With ``risk=`` set, scoring consumes the model's predicted
:class:`~repro.pcc.intervals.PCCInterval` instead of the point curve
alone: the marginal-improvement optimum still comes from the median
curve, but the ``max_slowdown`` SLO floor is strengthened to hold at the
risk quantile of the run-time distribution (see ``docs/uncertainty.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.exceptions import FittingError, PipelineError
from repro.features.graph_features import GraphSample, graph_sample_from_matrix
from repro.features.job_features import job_vector_from_matrix
from repro.features.operator_features import plan_feature_matrix
from repro.features.schema import OPERATOR_SCHEMA, FeatureSchema
from repro.ml import compiled as compiled_kernels
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset, PCCExample, build_dataset
from repro.models.gnn_model import GNNPCCModel
from repro.models.nn_model import NNPCCModel
from repro.models.training import TrainConfig
from repro.models.xgboost_models import XGBoostPL, XGBoostSS
from repro.obs import get_registry, trace
from repro.parallel import pmap
from repro.pcc.curve import PowerLawPCC
from repro.pcc.intervals import PCCInterval, tokens_within_slowdown_at_risk
from repro.scope.plan import QueryPlan
from repro.scope.repository import JobRepository
from repro.tasq.model_store import ModelStore

__all__ = [
    "TasqConfig",
    "TrainedModels",
    "TrainingPipeline",
    "TokenRecommendation",
    "PlanFeatures",
    "featurize",
    "ScoringPipeline",
]


@dataclass(frozen=True)
class TasqConfig:
    """Which models the training pipeline fits, and how."""

    train_xgboost: bool = True
    train_nn: bool = True
    train_gnn: bool = True
    nn_train_config: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=60)
    )
    gnn_train_config: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=30, batch_size=32,
                                            learning_rate=2e-3)
    )
    seed: int = 0


@dataclass
class TrainedModels:
    """Output of one training run."""

    dataset: PCCDataset
    models: dict[str, PCCPredictor]

    def get(self, name: str) -> PCCPredictor:
        try:
            return self.models[name]
        except KeyError:
            raise PipelineError(f"pipeline did not train a model named {name!r}")


class TrainingPipeline:
    """Repository -> featurized dataset -> fitted models -> model store."""

    def __init__(
        self,
        config: TasqConfig | None = None,
        store: ModelStore | None = None,
    ) -> None:
        self.config = config or TasqConfig()
        self.store = store or ModelStore()

    def run(
        self,
        repository: JobRepository,
        workers: int = 1,
        cache=None,
    ) -> TrainedModels:
        """Train every configured model on the repository's telemetry.

        ``workers > 1`` parallelizes both dataset construction (per
        record) and the model fits (the four families are independent
        given the dataset, so they run concurrently across the pool).
        Every model is seeded, so parallel training produces bit-identical
        models. ``cache`` (an :class:`~repro.cache.ArtifactCache` or a
        directory path) memoizes per-record dataset artifacts across runs.
        """
        config = self.config
        with trace.span("tasq.train_pipeline", jobs=len(repository)):
            dataset = build_dataset(repository, workers=workers, cache=cache)

            names: list[str] = []
            if config.train_xgboost:
                names.extend(["xgboost_ss", "xgboost_pl"])
            if config.train_nn:
                names.append("nn")
            if config.train_gnn:
                names.append("gnn")
            if not names:
                raise PipelineError("configuration enables no models")

            fitted = pmap(
                partial(_fit_named_model, dataset=dataset, config=config),
                names,
                workers=workers,
            )
            models: dict[str, PCCPredictor] = dict(zip(names, fitted))

        for name, model in models.items():
            self.store.register(
                name, model, metadata={"train_jobs": len(dataset)}
            )
        return TrainedModels(dataset=dataset, models=models)


def _fit_named_model(
    name: str, dataset: PCCDataset, config: TasqConfig
) -> PCCPredictor:
    """Top-level (hence picklable) pmap task: fit one model family."""
    with trace.span("tasq.fit", model=name):
        if name == "xgboost_ss":
            return XGBoostSS(seed=config.seed).fit(dataset)
        if name == "xgboost_pl":
            return XGBoostPL(seed=config.seed).fit(dataset)
        if name == "nn":
            return NNPCCModel(
                train_config=config.nn_train_config, seed=config.seed
            ).fit(dataset)
        if name == "gnn":
            return GNNPCCModel(
                train_config=config.gnn_train_config, seed=config.seed
            ).fit(dataset)
    raise PipelineError(f"unknown model family: {name!r}")


@dataclass(frozen=True)
class TokenRecommendation:
    """The scoring pipeline's answer for one incoming job."""

    job_id: str
    pcc: PowerLawPCC
    requested_tokens: int
    optimal_tokens: int
    predicted_runtime_at_requested: float
    predicted_runtime_at_optimal: float
    #: Predicted q10/q50/q90 curves (None for risk-unaware scoring, and
    #: degenerate when the model has no uncertainty heads).
    pcc_interval: PCCInterval | None = None
    #: The risk level the recommendation was made at (None = point).
    risk: float | None = None

    def runtime_interval_at(self, tokens: float) -> tuple[float, float, float]:
        """``(lo, mid, hi)`` predicted run times at one allocation."""
        if self.pcc_interval is not None:
            return self.pcc_interval.runtime_interval(tokens)
        point = float(self.pcc.runtime(tokens))
        return point, point, point

    @property
    def token_savings(self) -> float:
        """Fraction of the requested tokens the recommendation saves."""
        return 1.0 - self.optimal_tokens / self.requested_tokens

    @property
    def predicted_slowdown(self) -> float:
        """Expected fractional run-time increase at the recommendation."""
        return (
            self.predicted_runtime_at_optimal
            / self.predicted_runtime_at_requested
            - 1.0
        )


@dataclass(frozen=True)
class PlanFeatures:
    """Both model-facing representations of one compile-time plan.

    Produced by :func:`featurize`; pure (depends only on the plan), so
    serving layers can cache it and hand it back to
    :meth:`ScoringPipeline.score_batch` to skip re-featurization.
    """

    job_vector: np.ndarray
    graph: GraphSample


def featurize(
    plan: QueryPlan, schema: FeatureSchema = OPERATOR_SCHEMA
) -> PlanFeatures:
    """Featurize a plan once for every model family.

    Runs the per-operator featurization (the expensive step) a single
    time and derives both the aggregated job vector (XGBoost/NN input)
    and the graph sample (GNN input) from the same matrix — previously
    each representation recomputed the matrix independently.
    """
    with trace.span("tasq.featurize", job=plan.job_id):
        matrix = plan_feature_matrix(plan, schema)
        features = PlanFeatures(
            job_vector=job_vector_from_matrix(matrix, plan, schema),
            graph=graph_sample_from_matrix(matrix, plan),
        )
    if trace.enabled:
        get_registry().counter("tasq_plans_featurized").increment()
    return features


def _scoring_dataset(
    job_ids: list[str],
    tokens: np.ndarray,
    features: list[PlanFeatures],
) -> PCCDataset:
    """Wrap featurized compile-time jobs into the dataset shape models eat.

    Scoring has no ground truth, so targets/observations are inert
    placeholders — prediction paths only read features and the reference
    token counts. Only identifiers and :class:`PlanFeatures` are needed,
    so callers holding precomputed features (a serving feature cache, or
    a shard worker reading vectors out of shared memory) never touch a
    :class:`~repro.scope.plan.QueryPlan` here.
    """
    placeholder = PowerLawPCC(a=-1.0, b=1.0)
    dataset = PCCDataset()
    for job_id, requested, feats in zip(job_ids, tokens, features):
        dataset.examples.append(
            PCCExample(
                job_id=job_id,
                observed_tokens=float(requested),
                observed_runtime=1.0,
                target_pcc=placeholder,
                job_features=feats.job_vector,
                graph=feats.graph,
                point_observations=(),
            )
        )
    return dataset


class ScoringPipeline:
    """Compile-time scoring: plan -> PCC -> token recommendation.

    Parameters
    ----------
    model:
        A fitted *parametric* PCC predictor (NN, GNN, or XGBoost PL).
    improvement_threshold:
        Marginal-gain cutoff for the optimal allocation (Section 2.1),
        e.g. 0.01 = require >= 1% run-time improvement per extra token.
    max_slowdown:
        Optional SLO: when set, the recommendation is additionally capped
        so predicted slowdown versus the requested allocation stays
        within this budget.
    use_compiled:
        When False, every model prediction inside this pipeline runs
        with :func:`repro.ml.compiled.override` forcing the reference
        (pre-kernel) inference paths — the escape hatch the golden
        regression tests pin recommendations against.
    risk:
        When set (a probability in (0, 1)), recommendations carry the
        model's predicted interval and the ``max_slowdown`` SLO floor is
        enforced at this quantile of the run-time distribution via
        :func:`~repro.pcc.intervals.tokens_within_slowdown_at_risk` —
        ``risk=0.9`` means "the slowdown budget holds with probability
        0.9", not merely in expectation. None (the default) preserves
        the point-estimate behaviour bit-for-bit.
    """

    def __init__(
        self,
        model: PCCPredictor,
        improvement_threshold: float = 0.01,
        max_slowdown: float | None = None,
        use_compiled: bool = True,
        risk: float | None = None,
    ) -> None:
        if improvement_threshold <= 0:
            raise PipelineError("improvement threshold must be positive")
        if risk is not None and not 0.0 < risk < 1.0:
            raise PipelineError("risk must be inside (0, 1)")
        self.model = model
        self.improvement_threshold = improvement_threshold
        self.max_slowdown = max_slowdown
        self.use_compiled = use_compiled
        self.risk = risk

    def score(
        self,
        plan: QueryPlan,
        requested_tokens: int,
        features: PlanFeatures | None = None,
    ) -> TokenRecommendation:
        """Recommendation for a single incoming job."""
        feature_list = None if features is None else [features]
        return self.score_batch([plan], [requested_tokens], feature_list)[0]

    def score_batch(
        self,
        plans: list[QueryPlan],
        requested_tokens: list[int],
        features: list[PlanFeatures] | None = None,
    ) -> list[TokenRecommendation]:
        """Recommendations for a batch of incoming jobs.

        ``features`` optionally carries precomputed :class:`PlanFeatures`
        (one per plan, e.g. from a serving feature cache) so plans are
        not re-featurized on every call.
        """
        if len(plans) != len(requested_tokens):
            raise PipelineError("plans and token requests must align")
        if features is not None and len(features) != len(plans):
            raise PipelineError("plans and precomputed features must align")
        if features is not None:
            return self.score_features(
                [plan.job_id for plan in plans], requested_tokens, features
            )
        if any(t < 1 for t in requested_tokens):
            raise PipelineError("requested tokens must be positive")

        job_ids = [plan.job_id for plan in plans]
        tokens_arr = np.asarray(requested_tokens, float)
        with trace.span("tasq.score_batch", batch=len(plans)):
            dataset = _scoring_dataset(
                job_ids, tokens_arr, [featurize(plan) for plan in plans]
            )
            pccs, intervals = self._predict_pccs(dataset)
        return self._finalize(
            job_ids, requested_tokens, tokens_arr, pccs, intervals
        )

    def score_features(
        self,
        job_ids: list[str],
        requested_tokens: list[int],
        features: list[PlanFeatures],
    ) -> list[TokenRecommendation]:
        """Recommendations from identifiers plus precomputed features.

        The plan-free scoring entry point: callers that already hold a
        :class:`PlanFeatures` per job (the serving feature cache, or a
        shard worker whose feature vectors arrive through shared memory)
        score without materializing plans. :meth:`score_batch` with
        ``features`` delegates here, so both paths are bit-identical.
        """
        if not len(job_ids) == len(requested_tokens) == len(features):
            raise PipelineError(
                "job ids, token requests, and features must align"
            )
        if any(t < 1 for t in requested_tokens):
            raise PipelineError("requested tokens must be positive")

        tokens_arr = np.asarray(requested_tokens, float)
        # Features precomputed: wrapping them into the dataset shape
        # is cheap bookkeeping — keep it out of the traced span so
        # `tasq.score_batch` measures actual scoring work.
        dataset = _scoring_dataset(job_ids, tokens_arr, features)
        with trace.span("tasq.score_batch", batch=len(job_ids)):
            pccs, intervals = self._predict_pccs(dataset)
        return self._finalize(
            job_ids, requested_tokens, tokens_arr, pccs, intervals
        )

    def _predict_pccs(
        self, dataset: PCCDataset
    ) -> tuple[list[PowerLawPCC] | None, list[PCCInterval] | None]:
        """Model inference for one scoring dataset (shared by both entries)."""
        batch = len(dataset.examples)
        with trace.span("tasq.predict_pccs", batch=batch):
            intervals: list[PCCInterval] | None = None
            if self.use_compiled:
                if self.risk is not None:
                    intervals = self.model.predict_pcc_intervals(dataset)
                    pccs = (
                        None
                        if intervals is None
                        else [iv.mid for iv in intervals]
                    )
                else:
                    pccs = self.model.predict_pccs(dataset)
            else:
                with compiled_kernels.override(False):
                    if self.risk is not None:
                        intervals = self.model.predict_pcc_intervals(
                            dataset
                        )
                        pccs = (
                            None
                            if intervals is None
                            else [iv.mid for iv in intervals]
                        )
                    else:
                        pccs = self.model.predict_pccs(dataset)
        if trace.enabled:
            get_registry().counter("tasq_jobs_scored").increment(batch)
        return pccs, intervals

    def _finalize(
        self,
        job_ids: list[str],
        requested_tokens: list[int],
        tokens_arr: np.ndarray,
        pccs: list[PowerLawPCC] | None,
        intervals: list[PCCInterval] | None,
    ) -> list[TokenRecommendation]:
        if pccs is None:
            raise PipelineError(
                f"{self.model.name} is non-parametric; scoring needs a "
                "parametric PCC model (NN, GNN, or XGBoost PL)"
            )

        best, run_requested, run_best = self._recommend_vectorized(
            pccs, tokens_arr, intervals
        )
        if intervals is None:
            intervals = [None] * len(pccs)
        return [
            TokenRecommendation(
                job_id=job_id,
                pcc=pcc,
                requested_tokens=int(requested),
                optimal_tokens=int(chosen),
                predicted_runtime_at_requested=float(at_requested),
                predicted_runtime_at_optimal=float(at_best),
                pcc_interval=interval,
                risk=self.risk,
            )
            for job_id, requested, pcc, chosen, at_requested, at_best,
            interval
            in zip(
                job_ids, requested_tokens, pccs, best, run_requested,
                run_best, intervals,
            )
        ]

    def _recommend_vectorized(
        self,
        pccs: list[PowerLawPCC],
        requested: np.ndarray,
        intervals: list[PCCInterval] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch closed forms for the whole recommendation loop.

        Evaluates :func:`~repro.pcc.optimal.optimal_tokens`,
        :func:`~repro.pcc.optimal.tokens_for_slowdown`, and
        ``pcc.runtime`` over the batch with one array expression each —
        the scalar helpers remain the reference semantics (and the unit
        under property tests), but scoring no longer pays a Python loop
        of scalar power evaluations per batch.
        """
        a = np.array([pcc.a for pcc in pccs], dtype=float)
        b = np.array([pcc.b for pcc in pccs], dtype=float)
        if np.any(a > 0):
            raise FittingError(
                "optimal allocation is undefined for an increasing PCC"
            )

        # optimal_tokens: A* = floor(-a / threshold), clamped to
        # [1, requested] (min applied after the max, as in the scalar).
        ideal = np.floor(-a / self.improvement_threshold)
        best = np.minimum(
            np.maximum(1, ideal.astype(np.int64)), requested.astype(np.int64)
        )

        if self.max_slowdown is not None:
            # tokens_for_slowdown: A >= ref * (1 + s)^(1/a) for a < 0;
            # flat curves (a == 0) accept any allocation.
            flat = a == 0
            safe_a = np.where(flat, -1.0, a)
            bound = requested * np.power(
                1.0 + self.max_slowdown, 1.0 / safe_a
            )
            floor_tokens = np.maximum(
                1,
                np.minimum(
                    np.ceil(bound - 1e-9).astype(np.int64),
                    np.ceil(requested).astype(np.int64),
                ),
            )
            floor_tokens = np.where(flat, 1, floor_tokens)
            best = np.maximum(best, floor_tokens)

            if self.risk is not None and intervals is not None:
                # Strengthen the SLO floor to the risk quantile; the
                # risk floor dominates the expectation floor for
                # risk >= 0.5 and is capped at the request (never
                # recommend more than asked, matching the point rule).
                risk_floor = np.array(
                    [
                        min(
                            tokens_within_slowdown_at_risk(
                                interval, self.risk, ref, self.max_slowdown
                            )
                            or np.inf,
                            np.ceil(ref),
                        )
                        for interval, ref in zip(intervals, requested)
                    ],
                    dtype=np.int64,
                )
                best = np.maximum(best, risk_floor)

        run_requested = b * np.power(requested, a)
        run_best = b * np.power(best.astype(float), a)
        return best, run_requested, run_best
