"""End-to-end TASQ training and scoring pipelines (Figure 4).

The production system ingests historical telemetry, featurizes it, trains
PCC prediction models, registers them, and serves predictions for
incoming jobs at compile time. This module reproduces that flow
in-process:

* :class:`TrainingPipeline` — repository -> AREPAS augmentation ->
  featurization -> model training -> registration in a
  :class:`~repro.tasq.model_store.ModelStore`.
* :class:`ScoringPipeline` — compile-time plan -> features -> predicted
  PCC -> token recommendation (optimal tokens + expected trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PipelineError
from repro.features.graph_features import GraphSample, graph_sample_from_matrix
from repro.features.job_features import job_vector_from_matrix
from repro.features.operator_features import plan_feature_matrix
from repro.features.schema import OPERATOR_SCHEMA, FeatureSchema
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset, PCCExample, build_dataset
from repro.models.gnn_model import GNNPCCModel
from repro.models.nn_model import NNPCCModel
from repro.models.training import TrainConfig
from repro.models.xgboost_models import XGBoostPL, XGBoostSS
from repro.obs import get_registry, trace
from repro.pcc.curve import PowerLawPCC
from repro.pcc.optimal import optimal_tokens, tokens_for_slowdown
from repro.scope.plan import QueryPlan
from repro.scope.repository import JobRepository
from repro.tasq.model_store import ModelStore

__all__ = [
    "TasqConfig",
    "TrainedModels",
    "TrainingPipeline",
    "TokenRecommendation",
    "PlanFeatures",
    "featurize",
    "ScoringPipeline",
]


@dataclass(frozen=True)
class TasqConfig:
    """Which models the training pipeline fits, and how."""

    train_xgboost: bool = True
    train_nn: bool = True
    train_gnn: bool = True
    nn_train_config: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=60)
    )
    gnn_train_config: TrainConfig = field(
        default_factory=lambda: TrainConfig(epochs=30, batch_size=32,
                                            learning_rate=2e-3)
    )
    seed: int = 0


@dataclass
class TrainedModels:
    """Output of one training run."""

    dataset: PCCDataset
    models: dict[str, PCCPredictor]

    def get(self, name: str) -> PCCPredictor:
        try:
            return self.models[name]
        except KeyError:
            raise PipelineError(f"pipeline did not train a model named {name!r}")


class TrainingPipeline:
    """Repository -> featurized dataset -> fitted models -> model store."""

    def __init__(
        self,
        config: TasqConfig | None = None,
        store: ModelStore | None = None,
    ) -> None:
        self.config = config or TasqConfig()
        self.store = store or ModelStore()

    def run(self, repository: JobRepository) -> TrainedModels:
        """Train every configured model on the repository's telemetry."""
        config = self.config
        with trace.span("tasq.train_pipeline", jobs=len(repository)):
            dataset = build_dataset(repository)
            models: dict[str, PCCPredictor] = {}

            if config.train_xgboost:
                with trace.span("tasq.fit", model="xgboost_ss"):
                    models["xgboost_ss"] = XGBoostSS(seed=config.seed).fit(
                        dataset
                    )
                with trace.span("tasq.fit", model="xgboost_pl"):
                    models["xgboost_pl"] = XGBoostPL(seed=config.seed).fit(
                        dataset
                    )
            if config.train_nn:
                with trace.span("tasq.fit", model="nn"):
                    models["nn"] = NNPCCModel(
                        train_config=config.nn_train_config, seed=config.seed
                    ).fit(dataset)
            if config.train_gnn:
                with trace.span("tasq.fit", model="gnn"):
                    models["gnn"] = GNNPCCModel(
                        train_config=config.gnn_train_config, seed=config.seed
                    ).fit(dataset)
            if not models:
                raise PipelineError("configuration enables no models")

        for name, model in models.items():
            self.store.register(
                name, model, metadata={"train_jobs": len(dataset)}
            )
        return TrainedModels(dataset=dataset, models=models)


@dataclass(frozen=True)
class TokenRecommendation:
    """The scoring pipeline's answer for one incoming job."""

    job_id: str
    pcc: PowerLawPCC
    requested_tokens: int
    optimal_tokens: int
    predicted_runtime_at_requested: float
    predicted_runtime_at_optimal: float

    @property
    def token_savings(self) -> float:
        """Fraction of the requested tokens the recommendation saves."""
        return 1.0 - self.optimal_tokens / self.requested_tokens

    @property
    def predicted_slowdown(self) -> float:
        """Expected fractional run-time increase at the recommendation."""
        return (
            self.predicted_runtime_at_optimal
            / self.predicted_runtime_at_requested
            - 1.0
        )


@dataclass(frozen=True)
class PlanFeatures:
    """Both model-facing representations of one compile-time plan.

    Produced by :func:`featurize`; pure (depends only on the plan), so
    serving layers can cache it and hand it back to
    :meth:`ScoringPipeline.score_batch` to skip re-featurization.
    """

    job_vector: np.ndarray
    graph: GraphSample


def featurize(
    plan: QueryPlan, schema: FeatureSchema = OPERATOR_SCHEMA
) -> PlanFeatures:
    """Featurize a plan once for every model family.

    Runs the per-operator featurization (the expensive step) a single
    time and derives both the aggregated job vector (XGBoost/NN input)
    and the graph sample (GNN input) from the same matrix — previously
    each representation recomputed the matrix independently.
    """
    with trace.span("tasq.featurize", job=plan.job_id):
        matrix = plan_feature_matrix(plan, schema)
        features = PlanFeatures(
            job_vector=job_vector_from_matrix(matrix, plan, schema),
            graph=graph_sample_from_matrix(matrix, plan),
        )
    if trace.enabled:
        get_registry().counter("tasq_plans_featurized").increment()
    return features


def _scoring_dataset(
    plans: list[QueryPlan],
    tokens: np.ndarray,
    features: list[PlanFeatures] | None = None,
) -> PCCDataset:
    """Wrap compile-time plans into the dataset shape models consume.

    Scoring has no ground truth, so targets/observations are inert
    placeholders — prediction paths only read features and the reference
    token counts. Pass precomputed ``features`` (from :func:`featurize`)
    to skip featurization, e.g. when a serving cache already holds them.
    """
    placeholder = PowerLawPCC(a=-1.0, b=1.0)
    if features is None:
        features = [featurize(plan) for plan in plans]
    dataset = PCCDataset()
    for plan, requested, feats in zip(plans, tokens, features):
        dataset.examples.append(
            PCCExample(
                job_id=plan.job_id,
                observed_tokens=float(requested),
                observed_runtime=1.0,
                target_pcc=placeholder,
                job_features=feats.job_vector,
                graph=feats.graph,
                point_observations=(),
            )
        )
    return dataset


class ScoringPipeline:
    """Compile-time scoring: plan -> PCC -> token recommendation.

    Parameters
    ----------
    model:
        A fitted *parametric* PCC predictor (NN, GNN, or XGBoost PL).
    improvement_threshold:
        Marginal-gain cutoff for the optimal allocation (Section 2.1),
        e.g. 0.01 = require >= 1% run-time improvement per extra token.
    max_slowdown:
        Optional SLO: when set, the recommendation is additionally capped
        so predicted slowdown versus the requested allocation stays
        within this budget.
    """

    def __init__(
        self,
        model: PCCPredictor,
        improvement_threshold: float = 0.01,
        max_slowdown: float | None = None,
    ) -> None:
        if improvement_threshold <= 0:
            raise PipelineError("improvement threshold must be positive")
        self.model = model
        self.improvement_threshold = improvement_threshold
        self.max_slowdown = max_slowdown

    def score(
        self,
        plan: QueryPlan,
        requested_tokens: int,
        features: PlanFeatures | None = None,
    ) -> TokenRecommendation:
        """Recommendation for a single incoming job."""
        feature_list = None if features is None else [features]
        return self.score_batch([plan], [requested_tokens], feature_list)[0]

    def score_batch(
        self,
        plans: list[QueryPlan],
        requested_tokens: list[int],
        features: list[PlanFeatures] | None = None,
    ) -> list[TokenRecommendation]:
        """Recommendations for a batch of incoming jobs.

        ``features`` optionally carries precomputed :class:`PlanFeatures`
        (one per plan, e.g. from a serving feature cache) so plans are
        not re-featurized on every call.
        """
        if len(plans) != len(requested_tokens):
            raise PipelineError("plans and token requests must align")
        if features is not None and len(features) != len(plans):
            raise PipelineError("plans and precomputed features must align")
        if any(t < 1 for t in requested_tokens):
            raise PipelineError("requested tokens must be positive")

        with trace.span("tasq.score_batch", batch=len(plans)):
            dataset = _scoring_dataset(
                plans, np.asarray(requested_tokens, float), features
            )
            with trace.span("tasq.predict_pccs", batch=len(plans)):
                pccs = self.model.predict_pccs(dataset)
            if trace.enabled:
                get_registry().counter("tasq_jobs_scored").increment(
                    len(plans)
                )
        if pccs is None:
            raise PipelineError(
                f"{self.model.name} is non-parametric; scoring needs a "
                "parametric PCC model (NN, GNN, or XGBoost PL)"
            )

        recommendations = []
        for plan, requested, pcc in zip(plans, requested_tokens, pccs):
            best = optimal_tokens(
                pcc,
                improvement_threshold=self.improvement_threshold,
                max_tokens=requested,
            )
            if self.max_slowdown is not None:
                floor = tokens_for_slowdown(
                    pcc, requested, self.max_slowdown
                )
                best = max(best, floor)
            recommendations.append(
                TokenRecommendation(
                    job_id=plan.job_id,
                    pcc=pcc,
                    requested_tokens=int(requested),
                    optimal_tokens=int(best),
                    predicted_runtime_at_requested=float(pcc.runtime(requested)),
                    predicted_runtime_at_optimal=float(pcc.runtime(best)),
                )
            )
        return recommendations
