"""Unit tests for the job repository and telemetry records."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.scope import JobRepository, TelemetryRecord, run_workload
from repro.skyline import Skyline


def _record(job_id="j1", day=0, repository_fixture=None):
    from repro.scope import OperatorNode, QueryPlan

    plan = QueryPlan(
        job_id=job_id,
        nodes={0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=1)},
    )
    return TelemetryRecord(
        job_id=job_id,
        plan=plan,
        requested_tokens=10,
        skyline=Skyline([5, 8, 3]),
        submit_day=day,
        recurring=False,
    )


class TestTelemetryRecord:
    def test_derived_properties(self):
        record = _record()
        assert record.runtime == 3
        assert record.peak_tokens == 8.0
        assert record.template_id == "adhoc"


class TestJobRepository:
    def test_add_and_get(self):
        repo = JobRepository()
        record = _record()
        repo.add(record)
        assert repo.get("j1") is record
        assert "j1" in repo
        assert len(repo) == 1

    def test_rejects_duplicates(self):
        repo = JobRepository()
        repo.add(_record())
        with pytest.raises(ExecutionError):
            repo.add(_record())

    def test_get_unknown_raises(self):
        with pytest.raises(ExecutionError):
            JobRepository().get("missing")

    def test_filtering(self):
        repo = JobRepository()
        repo.add(_record("a", day=0))
        repo.add(_record("b", day=1))
        repo.add(_record("c", day=2))
        assert [r.job_id for r in repo.by_day(1, 2)] == ["b", "c"]
        assert len(repo.records(lambda r: r.submit_day == 0)) == 1

    def test_statistics_require_records(self):
        with pytest.raises(ExecutionError):
            JobRepository().runtime_statistics()


class TestRunWorkload:
    def test_one_record_per_job(self, workload_jobs, repository):
        assert len(repository) == len(workload_jobs)

    def test_records_carry_plans(self, repository, workload_jobs):
        by_id = {j.job_id: j for j in workload_jobs}
        for record in repository:
            assert record.plan is by_id[record.job_id].plan
            assert record.requested_tokens == by_id[record.job_id].requested_tokens

    def test_peak_never_exceeds_allocation(self, repository):
        for record in repository:
            assert record.peak_tokens <= record.requested_tokens * 1.001

    def test_statistics_right_skewed(self, repository):
        stats = repository.runtime_statistics()
        assert stats["runtime_mean"] > stats["runtime_median"]
        assert stats["peak_tokens_mean"] > stats["peak_tokens_median"]

    def test_deterministic(self, workload_jobs):
        a = run_workload(workload_jobs[:5], seed=42)
        b = run_workload(workload_jobs[:5], seed=42)
        for record_a, record_b in zip(a, b):
            assert record_a.skyline == record_b.skyline
