"""Unit tests for the cluster admission queue."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.scope.cluster import ClusterQueue, QueuedJob


def _job(job_id, arrival, tokens, runtime):
    return QueuedJob(
        job_id=job_id, arrival_time=arrival, tokens=tokens, runtime=runtime
    )


class TestQueuedJob:
    def test_validation(self):
        with pytest.raises(ExecutionError):
            _job("a", 0, 0, 10)
        with pytest.raises(ExecutionError):
            _job("a", 0, 1, 0)
        with pytest.raises(ExecutionError):
            _job("a", -1, 1, 10)


class TestClusterQueue:
    def test_no_contention_no_wait(self):
        queue = ClusterQueue(capacity=100)
        report = queue.run(
            [_job("a", 0, 30, 10), _job("b", 0, 30, 10), _job("c", 0, 30, 10)]
        )
        assert report.mean_wait == 0.0
        assert report.makespan == 10.0

    def test_contention_serialises(self):
        queue = ClusterQueue(capacity=50)
        report = queue.run([_job("a", 0, 50, 10), _job("b", 0, 50, 10)])
        waits = {o.job_id: o.wait_time for o in report.outcomes}
        assert waits["a"] == 0.0
        assert waits["b"] == 10.0
        assert report.makespan == 20.0

    def test_partial_overlap(self):
        queue = ClusterQueue(capacity=100)
        report = queue.run(
            [_job("a", 0, 60, 10), _job("b", 0, 60, 10), _job("c", 0, 40, 10)]
        )
        by_id = {o.job_id: o for o in report.outcomes}
        assert by_id["a"].start_time == 0.0
        # FCFS: b must wait for a even though c would fit — and c waits
        # behind b (no backfilling).
        assert by_id["b"].start_time == 10.0
        assert by_id["c"].start_time == 10.0

    def test_arrivals_respected(self):
        queue = ClusterQueue(capacity=10)
        report = queue.run([_job("a", 5.0, 10, 2)])
        assert report.outcomes[0].start_time == 5.0
        assert report.outcomes[0].wait_time == 0.0

    def test_smaller_requests_reduce_wait(self):
        """The paper's motivating claim, in miniature."""
        arrivals = [(f"j{i}", float(i), 5.0) for i in range(20)]
        fat = [_job(j, t, 50, d) for j, t, d in arrivals]
        slim = [_job(j, t, 25, d * 1.1) for j, t, d in arrivals]  # 10% slower
        queue = ClusterQueue(capacity=100)
        assert queue.run(slim).mean_wait < queue.run(fat).mean_wait

    def test_rejects_oversized_job(self):
        with pytest.raises(ExecutionError):
            ClusterQueue(capacity=10).run([_job("a", 0, 11, 5)])

    def test_rejects_empty_stream(self):
        with pytest.raises(ExecutionError):
            ClusterQueue(capacity=10).run([])

    def test_rejects_bad_capacity(self):
        with pytest.raises(ExecutionError):
            ClusterQueue(capacity=0)

    def test_report_statistics(self):
        queue = ClusterQueue(capacity=10)
        report = queue.run(
            [_job("a", 0, 10, 4), _job("b", 0, 10, 4), _job("c", 0, 10, 4)]
        )
        assert report.mean_wait == pytest.approx((0 + 4 + 8) / 3)
        assert report.median_wait == 4.0
        # Linear-interpolated 95th percentile of [0, 4, 8].
        assert report.p95_wait == pytest.approx(7.6)
        assert report.mean_turnaround == pytest.approx((4 + 8 + 12) / 3)

    def test_conservation(self):
        """Token-time used never exceeds capacity * makespan."""
        rng = np.random.default_rng(1)
        jobs = [
            _job(f"j{i}", float(rng.uniform(0, 50)),
                 int(rng.integers(1, 40)), float(rng.uniform(1, 30)))
            for i in range(40)
        ]
        queue = ClusterQueue(capacity=40)
        report = queue.run(jobs)
        used = sum(
            j.tokens * j.runtime for j in jobs
        )
        assert used <= queue.capacity * report.makespan + 1e-6
        # Starts never precede arrivals, finishes follow starts.
        for outcome, job in zip(
            sorted(report.outcomes, key=lambda o: o.job_id),
            sorted(jobs, key=lambda j: j.job_id),
        ):
            assert outcome.start_time >= job.arrival_time - 1e-12
            assert outcome.finish_time > outcome.start_time


class TestReportPercentiles:
    """p50/p95 wait and slowdown surfaces added for replay reporting."""

    def report(self):
        # Serial pool: waits 0/4/8/12, runtimes all 4 → turnarounds
        # 4/8/12/16 and slowdowns 1/2/3/4.
        return ClusterQueue(capacity=10).run(
            [_job(f"j{i}", 0, 10, 4) for i in range(4)]
        )

    def test_outcome_runtime_and_slowdown(self):
        outcomes = sorted(
            self.report().outcomes, key=lambda o: o.start_time
        )
        assert [o.runtime for o in outcomes] == [4.0] * 4
        assert [o.slowdown for o in outcomes] == [1.0, 2.0, 3.0, 4.0]

    def test_wait_percentiles(self):
        report = self.report()
        assert report.p50_wait == pytest.approx(6.0)
        assert report.p95_wait == pytest.approx(
            np.percentile([0.0, 4.0, 8.0, 12.0], 95)
        )
        assert report.wait_percentile(0) == 0.0
        assert report.wait_percentile(100) == 12.0

    def test_slowdown_percentiles(self):
        report = self.report()
        assert report.p50_slowdown == pytest.approx(2.5)
        assert report.p95_slowdown == pytest.approx(
            np.percentile([1.0, 2.0, 3.0, 4.0], 95)
        )

    def test_immediate_job_has_unit_slowdown(self):
        report = ClusterQueue(capacity=10).run([_job("solo", 0, 10, 5)])
        assert report.p50_slowdown == 1.0
        assert report.p95_slowdown == 1.0
        assert report.p95_wait == 0.0
