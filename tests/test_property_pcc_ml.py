"""Property-based tests: PCC fitting, autograd, and model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.autograd import Tensor
from repro.ml.gbm import BinMapper
from repro.pcc import PowerLawPCC, fit_power_law, optimal_tokens

finite_floats = st.floats(min_value=-50, max_value=50,
                          allow_nan=False, allow_infinity=False)


class TestPowerLawProperties:
    @given(st.floats(min_value=-2.0, max_value=-0.01),
           st.floats(min_value=0.1, max_value=1e5))
    def test_fit_recovers_exact_parameters(self, a, b):
        pcc = PowerLawPCC(a=a, b=b)
        tokens = np.array([2.0, 5.0, 17.0, 60.0, 200.0])
        fitted = fit_power_law(tokens, np.asarray(pcc.runtime(tokens)))
        assert np.isclose(fitted.a, a, rtol=1e-6, atol=1e-9)
        assert np.isclose(fitted.b, b, rtol=1e-6)

    @given(st.floats(min_value=-2.0, max_value=0.0),
           st.floats(min_value=0.1, max_value=1e5),
           st.floats(min_value=1.0, max_value=1e4),
           st.floats(min_value=1.0, max_value=1e4))
    def test_non_increasing_curves_are_non_increasing(self, a, b, t1, t2):
        pcc = PowerLawPCC(a=a, b=b)
        low, high = sorted([t1, t2])
        assert pcc.runtime(low) >= pcc.runtime(high) - 1e-9

    @given(st.floats(min_value=-2.0, max_value=-0.01),
           st.floats(min_value=0.001, max_value=0.2))
    def test_optimal_tokens_matches_threshold(self, a, threshold):
        pcc = PowerLawPCC(a=a, b=100.0)
        tokens = optimal_tokens(pcc, improvement_threshold=threshold)
        # At the chosen allocation the marginal gain is still >= threshold
        # (up to the integer floor).
        assert pcc.relative_improvement(tokens) >= threshold or tokens == 1

    @given(st.floats(min_value=-2.0, max_value=-0.01),
           st.floats(min_value=0.1, max_value=1e4))
    def test_log_parameter_roundtrip(self, a, b):
        pcc = PowerLawPCC(a=a, b=b)
        restored = PowerLawPCC.from_log_parameters(*pcc.log_parameters())
        assert np.isclose(restored.a, pcc.a)
        assert np.isclose(restored.b, pcc.b, rtol=1e-12)


class TestAutogradProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=20))
    def test_sum_gradient_is_ones(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @given(st.lists(finite_floats, min_size=1, max_size=20))
    def test_linear_gradient_is_coefficient(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        (t * 3.5).sum().backward()
        assert np.allclose(t.grad, 3.5)

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=1, max_size=10))
    def test_exp_log_inverse(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        out = t.log().exp()
        assert np.allclose(out.data, t.data)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0, atol=1e-9)

    @given(st.lists(finite_floats, min_size=2, max_size=12))
    def test_softplus_always_positive_and_above_relu(self, values):
        t = Tensor(np.array(values))
        softplus = t.softplus().data
        relu = t.relu().data
        assert np.all(softplus > 0)
        assert np.all(softplus >= relu - 1e-12)


class TestBinMapperProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=3, max_size=200))
    @settings(max_examples=50)
    def test_binning_preserves_order(self, values):
        column = np.array(values).reshape(-1, 1)
        binned = BinMapper(max_bins=16).fit_transform(column)
        order = np.argsort(column[:, 0], kind="stable")
        sorted_bins = binned[order, 0].astype(int)
        assert np.all(np.diff(sorted_bins) >= 0)
