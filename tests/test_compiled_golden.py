"""Golden end-to-end regressions: compiled inference changes nothing.

Routing the scoring stack through ``repro.ml.compiled`` must be
invisible downstream. The strongest statement of that is made at the two
outermost surfaces:

* :class:`~repro.tasq.pipeline.ScoringPipeline` over an XGBoost PL
  model — every recommendation field exactly equal with kernels on and
  off (the GBM path is bit-identical, so no tolerance is needed);
* a full ``repro.replay`` run (the ``python -m repro replay --tiny``
  scale) — the report's content-hash ``signature()`` identical with
  kernels forced off, because the replay loop bootstraps an XGBoost PL
  model and every prediction it makes is bit-identical.
"""

import numpy as np
import pytest

from repro.ml import compiled
from repro.ml.gbm import BoosterParams
from repro.models.xgboost_models import XGBoostPL
from repro.replay import ReplayConfig, run_replay
from repro.tasq import ScoringPipeline

TINY = dict(duration_s=120.0, bootstrap_jobs=15, seed=11)


@pytest.fixture(scope="module")
def pl_model(dataset):
    return XGBoostPL(BoosterParams(n_estimators=30, max_depth=4)).fit(dataset)


class TestScoringGolden:
    def test_recommendations_identical_with_and_without_kernels(
        self, pl_model, workload_jobs
    ):
        jobs = workload_jobs[:12]
        plans = [job.plan for job in jobs]
        tokens = [job.requested_tokens for job in jobs]

        fast = ScoringPipeline(pl_model).score_batch(plans, tokens)
        slow = ScoringPipeline(pl_model, use_compiled=False).score_batch(
            plans, tokens
        )

        assert len(fast) == len(slow) == len(jobs)
        for got, want in zip(fast, slow):
            assert got.job_id == want.job_id
            assert got.optimal_tokens == want.optimal_tokens
            assert got.requested_tokens == want.requested_tokens
            assert got.pcc.a == want.pcc.a
            assert got.pcc.b == want.pcc.b
            assert (
                got.predicted_runtime_at_requested
                == want.predicted_runtime_at_requested
            )
            assert (
                got.predicted_runtime_at_optimal
                == want.predicted_runtime_at_optimal
            )

    def test_escape_hatch_really_disables_kernels(self, pl_model, workload_jobs):
        plan = workload_jobs[0].plan
        tokens = workload_jobs[0].requested_tokens
        booster = pl_model._booster
        booster._compiled = None
        ScoringPipeline(pl_model, use_compiled=False).score(plan, tokens)
        assert booster._compiled is None  # reference path never compiles
        ScoringPipeline(pl_model).score(plan, tokens)
        assert booster._compiled is not None


class TestReplayGolden:
    def test_replay_signature_unchanged_by_kernels(self):
        enabled = run_replay(ReplayConfig(**TINY))
        with compiled.override(False):
            reference = run_replay(ReplayConfig(**TINY))
        assert enabled.signature() == reference.signature()
        assert enabled.to_json() == reference.to_json()

    def test_replay_signature_golden_pin(self):
        # Pinned content hash of the tiny replay: fails if *anything*
        # observable about the closed loop shifts — arrival sampling,
        # model fitting, recommendations, admission, or execution. Update
        # deliberately when the replay semantics themselves change.
        report = run_replay(ReplayConfig(**TINY))
        assert report.signature() == (
            "1f53ed995090bfebad7ac8a75fbdab2afedd0536d50ae85de2d6ee66b38370c5"
        )


class TestCliTinyFlag:
    def test_tiny_flag_parses_and_overrides(self, capsys, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            [
                "replay",
                "--tiny",
                "--seed",
                "11",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["duration_s"] == 120.0
