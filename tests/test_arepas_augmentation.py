"""Unit tests for AREPAS-based training data augmentation."""

import numpy as np
import pytest

from repro.arepas import (
    AugmentedObservation,
    augment_point_observations,
    default_token_grid,
    sweep_token_grid,
)
from repro.exceptions import SimulationError
from repro.skyline import Skyline


@pytest.fixture()
def over_allocated_skyline():
    """Peak usage 40 while observed allocation is 100 (over-allocated)."""
    usage = np.full(100, 20.0)
    usage[30:50] = 40.0
    return Skyline(usage)


class TestAugmentedObservation:
    def test_valid(self):
        obs = AugmentedObservation(tokens=10, runtime=100)
        assert obs.source == "simulated"

    def test_rejects_bad_tokens(self):
        with pytest.raises(SimulationError):
            AugmentedObservation(tokens=0, runtime=10)

    def test_rejects_bad_runtime(self):
        with pytest.raises(SimulationError):
            AugmentedObservation(tokens=5, runtime=0)


class TestPointAugmentation:
    def test_observed_sample_first(self, over_allocated_skyline):
        obs = augment_point_observations(over_allocated_skyline, 100)
        assert obs[0].source == "observed"
        assert obs[0].tokens == 100
        assert obs[0].runtime == over_allocated_skyline.duration

    def test_under_allocations_at_80_and_60_percent(self, over_allocated_skyline):
        obs = augment_point_observations(over_allocated_skyline, 100)
        simulated_tokens = [o.tokens for o in obs if o.source == "simulated"]
        assert 80.0 in simulated_tokens
        assert 60.0 in simulated_tokens

    def test_over_peak_observations_floored(self, over_allocated_skyline):
        """120%/140% of the peak exist with run time floored at the peak's."""
        obs = augment_point_observations(over_allocated_skyline, 100)
        peak = over_allocated_skyline.peak
        over = [o for o in obs if o.tokens in (1.2 * peak, 1.4 * peak)]
        assert len(over) == 2
        runtimes = {o.runtime for o in over}
        assert len(runtimes) == 1  # floored at the peak-allocation run time
        # At/beyond the peak the job runs unthrottled: the original duration.
        assert runtimes == {float(over_allocated_skyline.duration)}

    def test_no_over_observations_when_not_over_allocated(self):
        sky = Skyline(np.full(50, 100.0))
        obs = augment_point_observations(sky, 100)
        # Peak equals the allocation: only the observed + under samples.
        assert len(obs) == 3
        assert all(o.tokens <= 100 for o in obs)

    def test_under_allocation_runtimes_increase(self, over_allocated_skyline):
        obs = augment_point_observations(over_allocated_skyline, 40)
        by_tokens = {o.tokens: o.runtime for o in obs}
        assert by_tokens[24.0] >= by_tokens[32.0] >= by_tokens[40.0]

    def test_rejects_nonpositive_tokens(self, over_allocated_skyline):
        with pytest.raises(SimulationError):
            augment_point_observations(over_allocated_skyline, 0)

    def test_token_floor_of_one(self):
        sky = Skyline([2, 2, 2])
        obs = augment_point_observations(sky, 1.2)
        assert all(o.tokens >= 1.0 for o in obs)


class TestTokenGrid:
    def test_grid_spans_fractions(self):
        grid = default_token_grid(100, num_points=5)
        assert grid[0] == pytest.approx(20.0)
        assert grid[-1] == pytest.approx(100.0)
        assert np.all(np.diff(grid) > 0)

    def test_grid_floor_of_one_token(self):
        grid = default_token_grid(2, num_points=4)
        assert np.all(grid >= 1.0)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(SimulationError):
            default_token_grid(0)
        with pytest.raises(SimulationError):
            default_token_grid(10, num_points=1)
        with pytest.raises(SimulationError):
            default_token_grid(10, low_fraction=0.9, high_fraction=0.5)


class TestSweep:
    def test_sweep_marks_observed_point(self, over_allocated_skyline):
        grid = np.array([50.0, 100.0])
        obs = sweep_token_grid(over_allocated_skyline, grid, observed_tokens=100)
        assert obs[1].source == "observed"
        assert obs[0].source == "simulated"

    def test_sweep_without_observed(self, over_allocated_skyline):
        grid = np.array([50.0, 100.0])
        obs = sweep_token_grid(over_allocated_skyline, grid)
        assert all(o.source == "simulated" for o in obs)

    def test_sweep_monotone_runtimes(self, peaky_skyline):
        grid = default_token_grid(peaky_skyline.peak, num_points=6)
        obs = sweep_token_grid(peaky_skyline, grid)
        runtimes = [o.runtime for o in obs]
        assert all(a >= b for a, b in zip(runtimes, runtimes[1:]))
