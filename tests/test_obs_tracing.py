"""Tests for the tracing half of the observability layer."""

import json
import threading

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import trace as global_trace
from repro.obs.tracing import Tracer
from repro.scope import WorkloadGenerator


class TestSpanRecording:
    def test_disabled_by_default_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work", key=1) as span:
            span.set("more", 2)  # no-op on the null span
        assert tracer.spans() == []
        assert not tracer.enabled

    def test_enabled_records_span_with_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", job="j1") as span:
            span.set("points", 5)
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.attrs == {"job": "j1", "points": 5}
        assert span.end_s >= span.start_s
        assert span.duration_s >= 0.0

    def test_nested_spans_link_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        inner, middle, outer = tracer.spans()  # finish order: innermost first
        assert outer.name == "outer" and outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"
        assert span.end_s is not None

    def test_current_span_tracks_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None


class TestConcurrency:
    def test_concurrent_spans_from_many_threads(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(8)  # OS thread ids are reused otherwise

        def work(i: int) -> None:
            barrier.wait()
            for _ in range(50):
                with tracer.span("thread_work", worker=i):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 400
        assert len({s.thread_id for s in spans}) == 8
        # Per-thread stacks: spans from different threads never nest.
        assert all(s.parent_id is None for s in spans)


class TestRingBuffer:
    def test_overflow_keeps_most_recent(self):
        tracer = Tracer(capacity=10, enabled=True)
        for i in range(25):
            with tracer.span("s", i=i):
                pass
        spans = tracer.spans()
        assert len(spans) == 10
        assert [s.attrs["i"] for s in spans] == list(range(15, 25))
        assert tracer.dropped == 15

    def test_reset_clears(self):
        tracer = Tracer(capacity=2, enabled=True)
        for _ in range(5):
            with tracer.span("s"):
                pass
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer(capacity=0)
        with pytest.raises(ObservabilityError):
            Tracer().enable(capacity=-1)


class TestRecordSpan:
    def test_virtual_span(self):
        tracer = Tracer(enabled=True)
        span = tracer.record_span("scope.stage", 10.0, 35.0, virtual=True,
                                  stage=3)
        assert span.virtual
        assert span.duration_s == 25.0
        assert tracer.spans() == [span]

    def test_disabled_returns_none(self):
        tracer = Tracer()
        assert tracer.record_span("x", 0.0, 1.0) is None

    def test_rejects_backwards_interval(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ObservabilityError):
            tracer.record_span("x", 2.0, 1.0)


class TestChromeExport:
    def test_schema_and_json_validity(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", job="j"):
            with tracer.span("inner"):
                pass
        tracer.record_span("scope.stage", 0.0, 5.0, virtual=True)
        payload = json.loads(json.dumps(tracer.chrome_trace()))
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner", "scope.stage"}
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "pid", "tid", "ts", "dur"}
            assert event["dur"] >= 0
        # Virtual spans get their own pid track.
        pids = {e["name"]: e["pid"] for e in complete}
        assert pids["scope.stage"] != pids["outer"]
        assert pids["inner"] == pids["outer"]

    def test_attrs_are_json_safe(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", obj=object(), n=3):
            pass
        payload = json.dumps(tracer.chrome_trace())
        assert "object object" in payload  # repr()-coerced
        assert json.loads(payload)


class TestLatencyTable:
    def test_self_time_subtracts_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        table = tracer.latency_table()
        assert table["outer"]["count"] == 1
        assert table["inner"]["count"] == 1
        inner_total = table["inner"]["total_s"]
        assert table["outer"]["self_s"] == pytest.approx(
            table["outer"]["total_s"] - inner_total
        )
        assert table["outer"]["mean_s"] == table["outer"]["total_s"]

    def test_aggregates_by_name(self):
        tracer = Tracer(enabled=True)
        for _ in range(4):
            with tracer.span("repeat"):
                pass
        table = tracer.latency_table()
        assert table["repeat"]["count"] == 4
        assert table["repeat"]["max_s"] <= table["repeat"]["total_s"]


class TestInstrumentationDefaultOff:
    def test_instrumented_code_adds_no_spans_when_disabled(self):
        assert not global_trace.enabled  # the process default
        before = len(global_trace.spans())
        WorkloadGenerator(seed=0).generate(3)  # instrumented call site
        assert len(global_trace.spans()) == before

    def test_global_enable_disable_roundtrip(self):
        assert not global_trace.enabled
        try:
            global_trace.enable()
            WorkloadGenerator(seed=1).generate(2)
            names = {s.name for s in global_trace.spans()}
            assert "scope.generate_workload" in names
        finally:
            global_trace.disable()
            global_trace.reset()
        assert not global_trace.enabled
