"""Unit tests for admission control: rate limiting + circuit breaking.

Both components take an injectable clock, so these tests drive time
explicitly and are fully deterministic.
"""

import pytest

from repro.exceptions import ServingError
from repro.serving import BreakerState, CircuitBreaker, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_shed(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)  # 2 permits back
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ServingError):
            TokenBucket(rate=0.0, capacity=1)
        with pytest.raises(ServingError):
            TokenBucket(rate=1.0, capacity=0)
        with pytest.raises(ServingError):
            TokenBucket(rate=1.0, capacity=1).try_acquire(0)


class TestCircuitBreaker:
    def make(self, clock, threshold=3, recovery=10.0, probes=1):
        return CircuitBreaker(
            failure_threshold=threshold,
            recovery_time=recovery,
            half_open_probes=probes,
            clock=clock,
        )

    def test_trips_after_consecutive_failures(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trip_count == 1

    def test_success_resets_failure_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_recovery_time(self):
        clock = FakeClock()
        breaker = self.make(clock, recovery=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_limits_probes(self):
        clock = FakeClock()
        breaker = self.make(clock, probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # only two probes in flight

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock, probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN  # one probe to go
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 2
        # the recovery clock restarted at the re-trip
        clock.advance(9.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_reset_forces_closed(self):
        breaker = self.make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
